#!/usr/bin/env python3
"""Running BA over the *real* cryptographic backend.

Everything else in the examples uses the idealized signature registry —
the abstraction the paper itself analyses (§2.2).  This example swaps in
the real backend: RSA-FDH plain signatures plus Shoup unique threshold
RSA for the quorum certificates and the common coin, dealt by a local
trusted setup.  The protocol code is untouched; only key material changes.

Key generation (safe primes) dominates the runtime — the protocol itself
is as fast as with ideal keys, which is the point: the paper's round and
communication complexity are independent of the signature instantiation.

Run:  python examples/real_crypto_backend.py
"""

import random
import time

from repro import CryptoSuite, ba_one_half_program
from repro.network.simulator import SyncSimulator

N, T = 5, 2
KAPPA = 4
BITS = 256


def main() -> None:
    print(f"dealing Shoup threshold-RSA keys (n={N}, modulus {BITS} bits)...")
    start = time.perf_counter()
    crypto = CryptoSuite.real(N, T, random.Random(2026), bits=BITS)
    keygen_seconds = time.perf_counter() - start
    print(f"  setup took {keygen_seconds:.1f}s "
          f"(quorum threshold {crypto.quorum.threshold}-of-{N}, "
          f"coin threshold {crypto.coin.threshold}-of-{N})")

    simulator = SyncSimulator(
        num_parties=N, max_faulty=T, crypto=crypto, seed=3, session="real"
    )
    start = time.perf_counter()
    result = simulator.run(
        lambda ctx, bit: ba_one_half_program(ctx, bit, kappa=KAPPA),
        [1, 0, 1, 0, 1],
    )
    run_seconds = time.perf_counter() - start

    print(f"\nBA (t < n/2, kappa={KAPPA}) over real threshold RSA:")
    print(f"  outputs    : {result.outputs}")
    print(f"  agreement  : {result.honest_agree()}")
    print(f"  rounds     : {result.metrics.rounds} (theory: 3*ceil(kappa/2))")
    print(f"  signatures : {result.metrics.total_signatures}")
    print(f"  wall time  : {run_seconds:.2f}s")
    assert result.honest_agree()


if __name__ == "__main__":
    main()
