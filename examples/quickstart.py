#!/usr/bin/env python3
"""Quickstart: fixed-round Byzantine Agreement in κ + 1 rounds.

Runs the paper's headline protocol (t < n/3, Corollary 2) on a small
simulated network: 4 parties, 1 Byzantine, split inputs, target error
2^-16 — reached in 17 communication rounds where fixed-round
Feldman–Micali would need 32.

Run:  python examples/quickstart.py
"""

from repro import ba_one_third_program, run_protocol
from repro.core.ba import rounds_one_third
from repro.core.feldman_micali import rounds_feldman_micali

KAPPA = 16  # target error 2^-16


def main() -> None:
    inputs = [1, 0, 1, 0]
    result = run_protocol(
        lambda ctx, bit: ba_one_third_program(ctx, bit, kappa=KAPPA),
        inputs=inputs,
        max_faulty=1,
        seed=7,
    )

    print(f"inputs            : {inputs}")
    print(f"outputs           : {result.outputs}")
    print(f"agreement reached : {result.honest_agree()}")
    print(f"rounds used       : {result.metrics.rounds} "
          f"(theory: kappa + 1 = {rounds_one_third(KAPPA)})")
    print(f"FM baseline needs : {rounds_feldman_micali(KAPPA)} rounds "
          f"for the same 2^-{KAPPA} error")
    print(f"messages sent     : {result.metrics.total_messages}")
    print(f"signatures sent   : {result.metrics.total_signatures} "
          "(the Proxcensus itself is signature-free; these are coin shares)")

    assert result.honest_agree()
    assert result.metrics.rounds == rounds_one_third(KAPPA)


if __name__ == "__main__":
    main()
