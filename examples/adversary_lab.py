#!/usr/bin/env python3
"""Adversary lab: every attack in the repository vs both BA protocols.

Measures agreement/validity outcomes of the paper's two protocols against
the full strategy zoo — passive, crash, malformed flooding, generic
equivocation, adaptive mid-round corruption, coin eavesdropping, and the
worst-case straddle attacks that realize Theorem 1's 1/(s-1) bound.

Run:  python examples/adversary_lab.py
"""

from repro import (
    CrashAdversary,
    EavesdropCoinAdversary,
    LastRoundCorruptionAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
    ba_one_half_program,
    ba_one_third_program,
)
from repro.adversary.straddle import (
    LinearHalfStraddleAdversary,
    OneThirdStraddleAdversary,
)
from repro.analysis.experiments import (
    ExperimentSetup,
    disagreement_rate,
    run_trials,
)
from repro.analysis.report import format_table

KAPPA = 4
TRIALS = 120


def measure(setup, factory, inputs, adversary_factory):
    results = run_trials(
        setup, factory, inputs, trials=TRIALS,
        adversary_factory=adversary_factory, seed=11,
    )
    return disagreement_rate(results)


def main() -> None:
    bound = 2.0 ** -KAPPA
    rows = []

    # --- t < n/3: n = 4, one corruption --------------------------------
    setup13 = ExperimentSetup(num_parties=4, max_faulty=1)
    ba13 = lambda c, b: ba_one_third_program(c, b, kappa=KAPPA)
    split13 = [0, 0, 1, 1]
    for name, adversary_factory in (
        ("passive", lambda: None),
        ("crash@r2", lambda: CrashAdversary([3], crash_round=2)),
        ("malformed flood", lambda: MalformedAdversary([3])),
        ("two-face equivocation", lambda: TwoFaceAdversary([3], factory=ba13)),
        ("adaptive strike@r3", lambda: LastRoundCorruptionAdversary(3, 3)),
        ("straddle (worst case)", lambda: OneThirdStraddleAdversary([3])),
    ):
        rate = measure(setup13, ba13, split13, adversary_factory)
        rows.append(["t<n/3", name, f"{rate:.4f}", f"{bound:.4f}"])

    # --- t < n/2: n = 5, two corruptions --------------------------------
    setup12 = ExperimentSetup(num_parties=5, max_faulty=2)
    ba12 = lambda c, b: ba_one_half_program(c, b, kappa=KAPPA)
    split12 = [0, 0, 1, 1, 1]
    for name, adversary_factory in (
        ("passive", lambda: None),
        ("crash@r1 x2", lambda: CrashAdversary([3, 4], crash_round=1)),
        ("malformed flood", lambda: MalformedAdversary([3, 4])),
        ("two-face equivocation", lambda: TwoFaceAdversary([3, 4], factory=ba12)),
        ("coin eavesdropper", lambda: EavesdropCoinAdversary([4], 1, 4)),
        ("straddle (worst case)", lambda: LinearHalfStraddleAdversary([3, 4])),
    ):
        rate = measure(setup12, ba12, split12, adversary_factory)
        rows.append(["t<n/2", name, f"{rate:.4f}", f"{bound:.4f}"])

    print(f"disagreement rates over {TRIALS} trials, kappa={KAPPA} "
          f"(bound 2^-{KAPPA} = {bound:.4f})\n")
    print(format_table(["protocol", "adversary", "measured", "bound"], rows))
    print(
        "\nreading: only the protocol-aware straddle attacks approach the "
        "bound; everything else does strictly worse, and none exceeds it."
    )

    for row in rows:
        assert float(row[2]) <= bound + 0.08, row  # 4-sigma-ish slack


if __name__ == "__main__":
    main()
