#!/usr/bin/env python3
"""Committee block agreement — the workload that motivates fixed rounds.

The paper's intro singles out Algorand as the prominent adopter of
fixed-round ("Monte Carlo") BA: committees must terminate *simultaneously*
so the next committee can start from a clean slate.  This example plays a
round of such a system:

* a 7-member committee receives competing block proposals,
* two members are Byzantine — one crashes, one equivocates,
* the committee runs multivalued BA (binary core: the paper's t < n/3
  protocol; lift: +2 rounds via a 2-round 5-slot Proxcensus),
* everyone terminates in the same round with the same block (or the
  designated empty block if no proposal wins).

Run:  python examples/blockchain_committee.py
"""

import random

from repro import (
    CrashAdversary,
    ba_one_third_program,
    multivalued_ba_program,
    run_protocol,
)
from repro.adversary.base import Adversary, RoundDecision
from repro.adversary.strategies import TwoFaceAdversary

KAPPA = 12
EMPTY_BLOCK = "EMPTY"


class CrashPlusEquivocate(Adversary):
    """Member 5 crashes after round 1; member 6 equivocates proposals."""

    def __init__(self, factory):
        self._crash = CrashAdversary(victims=[5], crash_round=2)
        self._two_face = TwoFaceAdversary(
            victims=[6], factory=factory, low_input="blk_A", high_input="blk_B"
        )

    def setup(self, env):
        super().setup(env)
        self._crash.setup(env)
        self._two_face.setup(env)

    def initial_corruptions(self):
        return {5, 6}

    def decide(self, view):
        crash = self._crash.decide(view)
        faces = self._two_face.decide(view)
        return RoundDecision(replace={**crash.replace, **faces.replace})

    def observe(self, round_index, inboxes):
        self._two_face.observe(round_index, inboxes)


def committee_program(ctx, proposal):
    return multivalued_ba_program(
        ctx,
        proposal,
        lambda c, b: ba_one_third_program(c, b, kappa=KAPPA),
        regime="one_third",
        default=EMPTY_BLOCK,
    )


def main() -> None:
    proposals = ["blk_A", "blk_A", "blk_A", "blk_A", "blk_A", "blk_B", "blk_B"]
    result = run_protocol(
        committee_program,
        inputs=proposals,
        max_faulty=2,
        adversary=CrashPlusEquivocate(committee_program),
        seed=random.Random(2026).getrandbits(32),
        session="committee",
    )

    decided = set(result.honest_outputs.values())
    print(f"proposals         : {proposals}")
    print(f"corrupted members : {sorted(result.corrupted)} (crash + equivocate)")
    print(f"honest decisions  : {result.honest_outputs}")
    print(f"rounds used       : {result.metrics.rounds} "
          f"(= 2 lift + {KAPPA + 1} binary BA)")
    assert len(decided) == 1, "committee must agree on one block"
    block = decided.pop()
    print(f"committed block   : {block}")
    assert block in {"blk_A", "blk_B", EMPTY_BLOCK}
    print("simultaneous termination: all honest members finished in round "
          f"{result.metrics.rounds} together — the property Algorand-style "
          "chains need")


if __name__ == "__main__":
    main()
