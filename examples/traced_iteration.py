#!/usr/bin/env python3
"""A guided, fully-traced walk through one generalized FM iteration.

Runs a single Π_iter^5 (3-round Prox_5 with the coin in round 3, t < n/2)
with the message transcript recorder attached, then prints the complete
round-by-round timeline: input shares in round 1, quorum signatures and
ω-shares in round 2, the parallel prox ∥ coin envelope in round 3 — the
paper's §3.2 "expansion / coin-flip / extraction" pipeline made visible.

Run:  python examples/traced_iteration.py
"""

from repro.core.extraction import extract
from repro.core.iteration import pi_iter_program, threshold_coin_factory
from repro.crypto.keys import CryptoSuite
from repro.network.simulator import SyncSimulator
from repro.network.trace import Tracer
from repro.proxcensus.linear_half import prox_linear_half_program

import random


def iteration_program(ctx, bit):
    result = yield from pi_iter_program(
        ctx,
        bit,
        slots=5,
        prox_factory=lambda c, b: prox_linear_half_program(c, b, rounds=3),
        prox_rounds=3,
        coin_factory=threshold_coin_factory(),
        coin_index=("demo", 0),
        overlap_coin=True,
    )
    return result


def main() -> None:
    inputs = [0, 1, 0, 1, 1]
    tracer = Tracer()
    simulator = SyncSimulator(
        num_parties=5,
        max_faulty=2,
        crypto=CryptoSuite.ideal(5, 2, random.Random(42)),
        seed=4,
        session="traced",
        tracer=tracer,
    )
    result = simulator.run(iteration_program, inputs)

    print("one generalized iteration: Prox_5 (3 rounds) + coin ∥ round 3\n")
    print(f"inputs : {inputs}")
    print(f"outputs: {result.outputs}  (agreement: {result.honest_agree()})")
    print(f"rounds : {result.metrics.rounds}\n")
    print(tracer.render())
    print(
        "\nhow to read round 3: every payload is the parallel envelope "
        "∥{coin: …, prox: …} — the coin share travels in the same round as "
        "the final Proxcensus flood, which is why the iteration costs 3 "
        "rounds, not 4."
    )
    print(
        "\nextraction refresher (s=5, coin ∈ [1,4]): "
        + ", ".join(
            f"f(b=1,g=2,c={c})={extract(1, 2, c, 5)}" for c in range(1, 5)
        )
    )


if __name__ == "__main__":
    main()
