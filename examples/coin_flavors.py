#!/usr/bin/env python3
"""Three common coins, one attack: why the paper picks threshold signatures.

Runs the repository's three 1-round coin constructions —

* the **threshold-signature coin** (paper §2.2: hash of the unique
  (t+1)-of-n signature on the coin index),
* the **ideal coin** (the abstraction the round-complexity statements
  assume), and
* the **VRF minimum coin** (Chen–Micali style; paper §1 notes it is only
  secure against adversaries that are *not* strongly rushing)

— and then mounts the strongly-rushing withholding attack on the last
one, reporting the measured bias next to the theoretical ``1/2 + t/4n``.

Run:  python examples/coin_flavors.py
"""

import random
from collections import Counter

from repro.adversary.coin_bias import WithholdingCoinAdversary
from repro.analysis.report import format_table
from repro.crypto.coin import IdealCoin, ideal_coin_program, threshold_coin_program
from repro.crypto.vrf_coin import vrf_coin_program
from repro.network.simulator import run_protocol

TRIALS = 200
N, T = 4, 1


def flip(kind, trial, adversary=None):
    session = f"coins-{kind}-{trial}"
    if kind == "threshold":
        def factory(ctx, _):
            value = yield from threshold_coin_program(ctx, trial, 0, 1)
            return value
    elif kind == "ideal":
        coin = IdealCoin(random.Random(trial))

        def factory(ctx, _):
            value = yield from ideal_coin_program(ctx, coin, trial, 0, 1)
            return value
    else:
        def factory(ctx, _):
            value = yield from vrf_coin_program(ctx, trial, 0, 1)
            return value

    result = run_protocol(
        factory, [None] * N, T, adversary=adversary, seed=trial, session=session
    )
    values = set(result.honest_outputs.values())
    assert len(values) == 1, "coins must be common"
    return values.pop()


def main() -> None:
    rows = []
    for kind in ("threshold", "ideal", "vrf"):
        ones = sum(flip(kind, trial) for trial in range(TRIALS))
        rows.append([kind, "passive", f"{ones / TRIALS:.3f}"])
    steered_total = 0
    ones = 0
    for trial in range(TRIALS):
        adversary = WithholdingCoinAdversary(
            [3], index=trial, low=0, high=1, preferred=1,
            session=f"coins-vrf-{trial}",
        )
        ones += flip("vrf", trial, adversary)
        steered_total += adversary.steered
    rows.append(["vrf", "withholding (rushing)", f"{ones / TRIALS:.3f}"])

    print(f"P(coin = 1) over {TRIALS} flips, n={N}, t={T}\n")
    print(format_table(["coin", "adversary", "rate"], rows))
    print(
        f"\nwithholding steered {steered_total}/{TRIALS} flips "
        f"(theory t/4n = {T / (4 * N):.4f}); the threshold coin cannot be "
        "steered at all — its value is fixed by the key material."
    )


if __name__ == "__main__":
    main()
