#!/usr/bin/env python3
"""The paper's efficiency comparison (§3.5), measured live.

Prints rounds-to-target-error for the paper's two protocols against the
best prior fixed-round protocols (Feldman–Micali for t < n/3,
Micali–Vaikuntanathan for t < n/2) — every number measured by actually
executing the protocol in the simulator — plus the inverse view: how much
error exponent each protocol buys within a fixed round budget.

Run:  python examples/round_complexity_comparison.py
"""

from repro.analysis.report import format_table
from repro.analysis.theory import error_for_rounds, rounds_for_error
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.core.feldman_micali import feldman_micali_program
from repro.core.micali_vaikuntanathan import micali_vaikuntanathan_program
from repro.network.simulator import run_protocol


def measured_rounds(factory, inputs, max_faulty, session):
    result = run_protocol(factory, inputs, max_faulty, session=session)
    assert result.honest_agree()
    return result.metrics.rounds


def main() -> None:
    rows = []
    for kappa in (4, 8, 16, 32):
        ours13 = measured_rounds(
            lambda c, b: ba_one_third_program(c, b, kappa),
            [1, 0, 1, 0], 1, f"r13-{kappa}",
        )
        fm = measured_rounds(
            lambda c, b: feldman_micali_program(c, b, kappa),
            [1, 0, 1, 0], 1, f"rfm-{kappa}",
        )
        ours12 = measured_rounds(
            lambda c, b: ba_one_half_program(c, b, kappa),
            [1, 0, 1, 0, 1], 2, f"r12-{kappa}",
        )
        mv = measured_rounds(
            lambda c, b: micali_vaikuntanathan_program(c, b, kappa),
            [1, 0, 1, 0, 1], 2, f"rmv-{kappa}",
        )
        rows.append(
            [kappa, ours13, fm, f"{fm/ours13:.2f}x", ours12, mv, f"{mv/ours12:.2f}x"]
        )

    print("rounds to reach error 2^-kappa (measured in the simulator)\n")
    print(
        format_table(
            ["kappa", "ours 1/3", "FM", "speedup", "ours 1/2", "MV", "speedup"],
            rows,
        )
    )

    print("\nerror exponent (bits) achievable within a round budget\n")
    budget_rows = []
    for budget in (9, 17, 33, 65):
        budget_rows.append(
            [
                budget,
                error_for_rounds("ours_one_third", budget),
                error_for_rounds("feldman_micali", budget),
                error_for_rounds("ours_one_half", budget),
                error_for_rounds("micali_vaikuntanathan", budget),
            ]
        )
    print(
        format_table(
            ["rounds", "ours 1/3", "FM", "ours 1/2", "MV"], budget_rows
        )
    )
    print(
        "\nasymptotics (paper §1): ours-1/3 halves FM's rounds; ours-1/2 "
        "saves a quarter of MV's."
    )


if __name__ == "__main__":
    main()
