#!/usr/bin/env python3
"""State-machine replication: a totally-ordered log from sequential BA.

The paper's §1 argues fixed-round BA is the right building block for
larger protocols because all parties finish each instance in the same
round — so instances compose back to back with zero glue.  This example
runs a 4-slot replicated command log over five replicas (one crashed, one
equivocating) and shows (a) identical logs everywhere and (b) perfectly
aligned per-replica finish rounds.

Run:  python examples/replicated_ledger.py
"""

from repro.adversary.base import Adversary, RoundDecision
from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.applications.ledger import NO_OP, replicated_log_program, rounds_per_slot
from repro.network.simulator import run_protocol

SLOTS = 4
KAPPA = 8


class CrashPlusEquivocate(Adversary):
    def __init__(self, factory):
        self._crash = CrashAdversary(victims=[5], crash_round=4)
        self._two_face = TwoFaceAdversary(
            victims=[6], factory=factory,
            low_input=["evil_1"], high_input=["evil_2"],
        )

    def setup(self, env):
        super().setup(env)
        self._crash.setup(env)
        self._two_face.setup(env)

    def initial_corruptions(self):
        return {5, 6}

    def decide(self, view):
        merged = RoundDecision()
        merged.replace.update(self._crash.decide(view).replace)
        merged.replace.update(self._two_face.decide(view).replace)
        return merged

    def observe(self, round_index, inboxes):
        self._two_face.observe(round_index, inboxes)


def main() -> None:
    program = lambda ctx, cmds: replicated_log_program(
        ctx, cmds, num_slots=SLOTS, kappa=KAPPA, regime="one_third",
        proposer="rotating",
    )
    queues = [
        ["deposit:42", "withdraw:7"],
        ["deposit:42", "transfer:3"],
        ["deposit:42", "withdraw:7"],
        ["deposit:42", "transfer:3"],
        ["deposit:42", "withdraw:7"],
        ["evil_1"],
        ["evil_2"],
    ]
    result = run_protocol(
        program, queues, max_faulty=2,
        adversary=CrashPlusEquivocate(program), seed=5, session="ledger",
    )

    print(f"replicas          : 7 (replica 5 crashes, replica 6 equivocates)")
    print(f"slots             : {SLOTS}, rotating leaders "
          f"({rounds_per_slot(KAPPA, 'one_third', 'rotating')} rounds each)")
    reference = None
    for pid in result.honest_parties:
        log = [c if c != NO_OP else "<no-op>" for c in result.outputs[pid]]
        print(f"replica {pid} log     : {log}")
        reference = reference or log
        assert log == reference, "fork detected!"
    spreads = {result.finish_rounds[p] for p in result.honest_parties}
    print(f"finish rounds     : {sorted(spreads)} "
          "(all equal -> slots composed with zero resynchronization)")
    assert len(spreads) == 1
    print("no forks; the log is total-ordered and identical at every "
          "honest replica")


if __name__ == "__main__":
    main()
