#!/usr/bin/env python3
"""Graded broadcast: proxcast (Appendix A) next to Dolev–Strong.

A software-update authority broadcasts a release hash to n mirrors, up to
t of which (possibly including the authority itself) are Byzantine.
Proxcast gives every mirror a *graded* answer — the grade says how sure
the mirror may be that everyone else got the same hash — in s - 1 rounds
for s grades, tolerating any t < n.  Dolev–Strong gives the all-or-nothing
answer in t + 1 rounds.

Shown here: an honest authority (everyone reaches the top grade), then an
equivocating authority (grades degrade but never contradict), and the
player-replaceable variant for t < n/2.

Run:  python examples/proxcast_demo.py
"""

from repro import (
    TwoFaceAdversary,
    dolev_strong_broadcast_program,
    proxcast_player_replaceable_program,
    proxcast_program,
    run_protocol,
)
from repro.analysis.report import format_table

SLOTS = 7  # grades 0..3 in 6 rounds
N = 5


def proxcast_factory(ctx, value):
    return proxcast_program(ctx, value, slots=SLOTS, dealer=0, default="∅")


def main() -> None:
    # --- honest authority ------------------------------------------------
    result = run_protocol(
        proxcast_factory, ["sha256:7be4..."] + ["?"] * (N - 1),
        max_faulty=N - 1, session="px-honest",
    )
    rows = [
        [pid, out.value, out.grade] for pid, out in sorted(result.outputs.items())
    ]
    print(f"honest authority (s={SLOTS}, {result.metrics.rounds} rounds, "
          f"t<n tolerated)\n")
    print(format_table(["mirror", "value", "grade"], rows))
    assert all(out.grade == 3 for out in result.outputs.values())

    # --- equivocating authority ------------------------------------------
    adversary = TwoFaceAdversary(
        victims=[0], factory=proxcast_factory,
        low_input="sha256:7be4...", high_input="sha256:EVIL...",
    )
    result = run_protocol(
        proxcast_factory, ["sha256:7be4..."] + ["?"] * (N - 1),
        max_faulty=1, adversary=adversary, session="px-evil",
    )
    rows = [
        [pid, out.value, out.grade]
        for pid, out in sorted(result.outputs.items())
        if pid != 0
    ]
    print("\nequivocating authority — graded outputs degrade, stay consistent\n")
    print(format_table(["mirror", "value", "grade"], rows))
    graded = [o for o in result.honest_outputs.values() if o.grade >= 1]
    assert len({o.value for o in graded}) <= 1

    # --- player-replaceable variant, t < n/2 ------------------------------
    result = run_protocol(
        lambda c, v: proxcast_player_replaceable_program(
            c, v, slots=5, dealer=0, default="∅"
        ),
        ["sha256:7be4..."] + ["?"] * (N - 1),
        max_faulty=2, session="px-pr",
    )
    print("\nplayer-replaceable variant (t < n/2): grades "
          f"{sorted(o.grade for o in result.outputs.values())}")

    # --- Dolev–Strong for contrast ----------------------------------------
    result = run_protocol(
        lambda c, v: dolev_strong_broadcast_program(c, v, dealer=0, default="∅"),
        ["sha256:7be4..."] + ["?"] * (N - 1),
        max_faulty=2, session="ds",
    )
    print(f"\nDolev–Strong: all-or-nothing in t+1 = {result.metrics.rounds} "
          f"rounds -> {set(result.outputs.values())}")


if __name__ == "__main__":
    main()
