"""Proxcensus definitions: outputs, slot geometry, invariant checkers.

Paper, Definition 2: an *s-slot Proxcensus* protocol has every party output
a value ``y ∈ D`` and a grade ``g ∈ [0, G]`` with ``G = ⌊(s-1)/2⌋`` such
that

* **validity** — pre-agreement on ``x`` forces every honest output to
  ``(x, G)``;
* **consistency** — honest grades differ by at most 1; two honest grades
  ``≥ 1`` imply equal values; for even ``s`` a single grade ``> 0`` already
  implies equal values.

Slots visualize the output space as one row (paper Fig. 1): for a binary
domain the ``s`` slots are, left to right,
``(0, G), …, (0, 1), [center], (1, 1), …, (1, G)`` where the center is a
single valueless slot for odd ``s`` and the pair ``(0, 0), (1, 0)`` for
even ``s``.  Honest parties always land on two *adjacent* slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

__all__ = [
    "ProxOutput",
    "max_grade",
    "slot_count_with_grades",
    "slot_index",
    "slot_label",
    "check_proxcensus_consistency",
    "check_proxcensus_validity",
    "ProxcensusViolation",
]


class ProxcensusViolation(AssertionError):
    """Raised by the invariant checkers when a paper property is violated."""


@dataclass(frozen=True)
class ProxOutput:
    """One party's Proxcensus output: a value and a grade."""

    value: Any
    grade: int

    def __iter__(self):
        return iter((self.value, self.grade))


def max_grade(slots: int) -> int:
    """``G = ⌊(s-1)/2⌋`` for an ``s``-slot Proxcensus."""
    if slots < 2:
        raise ValueError(f"Proxcensus needs at least 2 slots, got {slots}")
    return (slots - 1) // 2


def slot_count_with_grades(grades: int, parity_even: bool) -> int:
    """Inverse of :func:`max_grade` for binary domains."""
    return 2 * grades + (2 if parity_even else 1)


def slot_index(value: int, grade: int, slots: int) -> int:
    """Position (0-based, left to right) of a binary-domain output slot.

    Value 0 occupies the left half (higher grade further left), value 1 the
    right half.  For odd ``s`` the central grade-0 slot is shared between
    the two values.
    """
    grades = max_grade(slots)
    if not (0 <= grade <= grades):
        raise ValueError(f"grade {grade} outside [0, {grades}] for s={slots}")
    if value not in (0, 1):
        raise ValueError("slot_index is defined for the binary domain")
    if slots % 2 == 1:
        return grades - grade if value == 0 else grades + grade
    return grades - grade if value == 0 else grades + 1 + grade


def slot_label(position: int, slots: int) -> Tuple[Optional[int], int]:
    """Inverse of :func:`slot_index`: slot position → ``(value, grade)``.

    The central slot of an odd-``s`` Proxcensus has no meaningful value and
    maps to ``(None, 0)``.
    """
    grades = max_grade(slots)
    if not (0 <= position < slots):
        raise ValueError(f"position {position} outside [0, {slots})")
    if slots % 2 == 1:
        if position == grades:
            return (None, 0)
        if position < grades:
            return (0, grades - position)
        return (1, position - grades)
    if position <= grades:
        return (0, grades - position)
    return (1, position - grades - 1)


def check_proxcensus_consistency(
    outputs: Iterable[ProxOutput], slots: int
) -> None:
    """Assert Definition 2's consistency over a set of honest outputs."""
    outputs = [o if isinstance(o, ProxOutput) else ProxOutput(*o) for o in outputs]
    grades = max_grade(slots)
    for o in outputs:
        if not (0 <= o.grade <= grades):
            raise ProxcensusViolation(
                f"grade {o.grade} outside [0, {grades}] for s={slots}"
            )
    for a in outputs:
        for b in outputs:
            if abs(a.grade - b.grade) > 1:
                raise ProxcensusViolation(
                    f"grades {a.grade} and {b.grade} differ by more than 1"
                )
            if min(a.grade, b.grade) >= 1 and a.value != b.value:
                raise ProxcensusViolation(
                    f"grades >= 1 with different values: {a} vs {b}"
                )
            if slots % 2 == 0 and a.grade > 0 and a.value != b.value:
                raise ProxcensusViolation(
                    f"even s={slots}: grade {a.grade} > 0 but values differ: "
                    f"{a} vs {b}"
                )


def check_proxcensus_validity(
    outputs: Iterable[ProxOutput], slots: int, common_input: Any
) -> None:
    """Assert Definition 2's validity given honest pre-agreement."""
    grades = max_grade(slots)
    for o in outputs:
        o = o if isinstance(o, ProxOutput) else ProxOutput(*o)
        if o.value != common_input or o.grade != grades:
            raise ProxcensusViolation(
                f"pre-agreement on {common_input!r} must yield "
                f"({common_input!r}, {grades}), got {o}"
            )
