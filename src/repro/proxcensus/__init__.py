"""The Proxcensus protocol family (paper §3.3 and Appendices A–B)."""

from .base import (
    ProxOutput,
    ProxcensusViolation,
    check_proxcensus_consistency,
    check_proxcensus_validity,
    max_grade,
    slot_count_with_grades,
    slot_index,
    slot_label,
)
from .gradecast_cert import certificate_gradecast_program
from .linear_half import grade_conditions, prox_linear_half_program
from .one_third import prox_expand_once_program, prox_one_third_program
from .proxcast import (
    proxcast_player_replaceable_program,
    proxcast_program,
    rounds_for_slots,
)
from .quadratic_half import (
    condition_table,
    prox_quadratic_half_program,
    top_grade,
)
from .registry import FAMILIES, ProxFamily, family

__all__ = [
    "FAMILIES",
    "ProxFamily",
    "ProxOutput",
    "ProxcensusViolation",
    "certificate_gradecast_program",
    "check_proxcensus_consistency",
    "check_proxcensus_validity",
    "condition_table",
    "family",
    "grade_conditions",
    "max_grade",
    "prox_expand_once_program",
    "prox_linear_half_program",
    "prox_one_third_program",
    "prox_quadratic_half_program",
    "proxcast_player_replaceable_program",
    "proxcast_program",
    "rounds_for_slots",
    "slot_count_with_grades",
    "slot_index",
    "slot_label",
    "top_grade",
]
