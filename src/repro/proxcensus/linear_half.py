"""Proxcensus for t < n/2: ``2r - 1`` slots in ``r`` rounds (paper §3.3).

Construction (Lemma 3): parties threshold-sign their input and flood
reconstructed quorum signatures ``Σ`` for ``r`` rounds.  In round 2 each
party that reconstructed exactly one ``Σ`` additionally releases an
``ω``-share; ``n - t`` of these combine into a proof ``Ω`` that *some
honest party* saw a unique ``Σ`` after round 1 — propagating ``Ω`` is what
pushes the slot count from round-count-many to ``2r - 1``.

Output determination (Table 1 shows the r = 3 instance): party ``P_i``
outputs ``(y, g)`` with ``g ≥ 1`` iff

* ``Σ`` on ``y`` was known by the end of round ``r - g``;
* no ``Σ`` on any ``y' ≠ y`` was known by the end of round ``g + 1``; and
* ``Ω`` on ``y`` was known by the end of round ``r - g + 1``;

taking the largest such ``g`` (the value is then unique), else ``(0, 0)``.

Signatures are ``(n - t)``-of-``n`` unique threshold signatures; messages
are domain-separated per session and per role (``sigma`` vs ``omega``), so
an ``Ω`` can never masquerade as a ``Σ``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..network.messages import get_field
from ..network.party import Context
from .base import ProxOutput

__all__ = ["prox_linear_half_program", "slots_after_rounds", "grade_conditions"]

_KEY = "plh"


def slots_after_rounds(rounds: int) -> int:
    """Lemma 3: ``r`` rounds yield ``2r - 1`` slots."""
    if rounds < 2:
        raise ValueError("the linear t<n/2 Proxcensus needs at least 2 rounds")
    return 2 * rounds - 1


def grade_conditions(rounds: int) -> Dict[int, Dict[str, int]]:
    """The per-grade deadlines, as printed in the paper's Table 1.

    Maps grade ``g >= 1`` to the three round deadlines:
    ``sigma_by`` (Σ on y), ``no_other_by`` (no Σ on y'), ``omega_by`` (Ω).
    """
    return {
        g: {
            "sigma_by": rounds - g,
            "no_other_by": g + 1,
            "omega_by": rounds - g + 1,
        }
        for g in range(1, rounds)
    }


def _sigma_message(ctx: Context, value: Any):
    return (_KEY, ctx.session, "sigma", value)


def _omega_message(ctx: Context, value: Any):
    return (_KEY, ctx.session, "omega", value)


def prox_linear_half_program(ctx: Context, value: Any, rounds: int, default: Any = 0):
    """Party program for ``Prox_{2·rounds - 1}``, t < n/2.

    Returns a :class:`ProxOutput`; ``default`` is the value reported with
    grade 0 (the ``⊥`` slot of Table 1 — the paper uses 0).
    """
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"prox_linear_half requires t < n/2, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    if rounds < 2:
        raise ValueError("need at least 2 rounds")
    scheme = ctx.crypto.quorum

    # sigma_first[v] = earliest round (1-based) a quorum signature Σ on v
    # was known; omega_first[v] likewise for the proof Ω.
    sigma_first: Dict[Any, int] = {}
    omega_first: Dict[Any, int] = {}
    sigma_sigs: Dict[Any, Any] = {}
    omega_sigs: Dict[Any, Any] = {}

    # --- Round 1: release a signature share on the input value. ----------
    share = scheme.sign_share(ctx.party_id, _sigma_message(ctx, value))
    inbox = yield ctx.broadcast({_KEY: {"value": value, "share": share}})
    shares_by_value: Dict[Any, List[Tuple[int, Any]]] = {}
    for sender, payload in inbox.items():
        body = get_field(payload, _KEY)
        if not isinstance(body, dict):
            continue
        v = body.get("value")
        try:
            hash(v)
        except TypeError:
            continue
        shares_by_value.setdefault(v, []).append((sender, body.get("share")))
    for v, indexed in shares_by_value.items():
        signature = scheme.try_combine(indexed, _sigma_message(ctx, v))
        if signature is not None:
            sigma_first[v] = 1
            sigma_sigs[v] = signature

    # --- Rounds 2..r: flood Σ's; round 2 additionally releases ω. --------
    for round_index in range(2, rounds + 1):
        outgoing: Dict[str, Any] = {
            "sigmas": [(v, sigma_sigs[v]) for v in sigma_sigs],
            "omegas": [(v, omega_sigs[v]) for v in omega_sigs],
        }
        if round_index == 2 and len(sigma_first) == 1:
            only_value = next(iter(sigma_first))
            outgoing["omega_share"] = (
                only_value,
                scheme.sign_share(ctx.party_id, _omega_message(ctx, only_value)),
            )
        inbox = yield ctx.broadcast({_KEY: outgoing})

        omega_shares: Dict[Any, List[Tuple[int, Any]]] = {}
        for sender, payload in inbox.items():
            body = get_field(payload, _KEY)
            if not isinstance(body, dict):
                continue
            for item in _pairs(body.get("sigmas")):
                v, signature = item
                if v not in sigma_first and scheme.verify(
                    signature, _sigma_message(ctx, v)
                ):
                    sigma_first[v] = round_index
                    sigma_sigs[v] = signature
            for item in _pairs(body.get("omegas")):
                v, signature = item
                if v not in omega_first and scheme.verify(
                    signature, _omega_message(ctx, v)
                ):
                    omega_first[v] = round_index
                    omega_sigs[v] = signature
            if round_index == 2:
                pair = body.get("omega_share")
                if isinstance(pair, tuple) and len(pair) == 2:
                    v, omega_share = pair
                    try:
                        hash(v)
                    except TypeError:
                        continue
                    omega_shares.setdefault(v, []).append((sender, omega_share))
        if round_index == 2:
            for v, indexed in omega_shares.items():
                signature = scheme.try_combine(indexed, _omega_message(ctx, v))
                if signature is not None and v not in omega_first:
                    omega_first[v] = 2
                    omega_sigs[v] = signature

    # --- Output determination. -------------------------------------------
    for grade in range(rounds - 1, 0, -1):
        deadline = grade_conditions(rounds)[grade]
        for v in sorted(sigma_first, key=repr):
            if sigma_first[v] > deadline["sigma_by"]:
                continue
            if omega_first.get(v, rounds + 1) > deadline["omega_by"]:
                continue
            others = [
                v2
                for v2 in sigma_first
                if v2 != v and sigma_first[v2] <= deadline["no_other_by"]
            ]
            if others:
                continue
            return ProxOutput(v, grade)
    return ProxOutput(default, 0)


def _pairs(obj: Any):
    """Yield well-formed ``(value, signature)`` pairs from a Byzantine list."""
    if not isinstance(obj, (list, tuple)):
        return
    for item in obj:
        if isinstance(item, (list, tuple)) and len(item) == 2:
            v = item[0]
            try:
                hash(v)
            except TypeError:
                continue
            yield (v, item[1])
