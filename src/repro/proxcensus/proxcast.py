"""s-slot Proxcast for t < n (paper Appendix A, Lemma 6).

Single-sender graded broadcast: a dealer signs its input, and for ``s - 1``
rounds parties relay every *new* valid (message, signature) pair that
originates from the dealer — but at most two distinct pairs, since two
contradicting dealer signatures already prove dealer misbehaviour.  This is
Dolev–Strong without accumulating signatures, and it extends the
M-gradecast of Garay et al. [13] from odd ``s`` to every ``s ≥ 2``.

A party's grade is determined by the longest run of rounds in which its
cumulative pair set was a stable singleton ``{(z, σ)}``: a run of
``2g + 1 - b`` consecutive end-of-round snapshots (``s = 2k + b``) yields
grade ``g``, value ``z``.

The *player-replaceable* variant (paper Appendix A, t < n/2) additionally
requires every in-window snapshot after round 1 to have been forwarded by
at least ``n - t`` distinct senders in that round, which compensates for
the fact that with player replacement a relayed signature is not otherwise
guaranteed to become public.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..network.messages import get_field
from ..network.party import Context
from .base import ProxOutput

__all__ = [
    "proxcast_program",
    "proxcast_player_replaceable_program",
    "rounds_for_slots",
]

_KEY = "pxc"


def rounds_for_slots(slots: int) -> int:
    """Lemma 6: ``s`` slots in ``s - 1`` rounds."""
    if slots < 2:
        raise ValueError("proxcast needs at least 2 slots")
    return slots - 1


def _dealer_message(ctx: Context, value: Any):
    return (_KEY, ctx.session, value)


def proxcast_program(
    ctx: Context, value: Any, slots: int, dealer: int, default: Any = 0
):
    """Party program for ``s``-slot proxcast, secure for any t < n.

    ``value`` is only read by the dealer; other parties may pass anything.
    Returns a :class:`ProxOutput`.
    """
    result = yield from _proxcast_common(
        ctx, value, slots, dealer, default, require_quorum=False
    )
    return result


def proxcast_player_replaceable_program(
    ctx: Context, value: Any, slots: int, dealer: int, default: Any = 0
):
    """Player-replaceable proxcast variant, secure for t < n/2."""
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            "the player-replaceable proxcast requires t < n/2, got "
            f"t={ctx.max_faulty}, n={ctx.num_parties}"
        )
    result = yield from _proxcast_common(
        ctx, value, slots, dealer, default, require_quorum=True
    )
    return result


def _proxcast_common(
    ctx: Context,
    value: Any,
    slots: int,
    dealer: int,
    default: Any,
    require_quorum: bool,
):
    if not (0 <= dealer < ctx.num_parties):
        raise ValueError(f"dealer {dealer} out of range")
    rounds = rounds_for_slots(slots)
    scheme = ctx.crypto.plain
    n, t = ctx.num_parties, ctx.max_faulty

    # known: value -> dealer signature (at most 2 entries relayed onward).
    known: Dict[Any, Any] = {}
    # snapshots[r] = sorted tuple of known values at the end of round r + 1.
    snapshots: List[Tuple[Any, ...]] = []
    # quorum_ok[r] = for singleton snapshots after round 1: was the pair
    # forwarded by >= n - t distinct senders during that round?
    quorum_ok: List[bool] = []

    def absorb(payload: Any, senders_for: Dict[Any, Set[int]], sender: int) -> None:
        body = get_field(payload, _KEY)
        if not isinstance(body, (list, tuple)):
            return
        for item in body:
            if not (isinstance(item, (list, tuple)) and len(item) == 2):
                continue
            z, signature = item
            try:
                hash(z)
            except TypeError:
                continue
            if scheme.verify(dealer, signature, _dealer_message(ctx, z)):
                senders_for.setdefault(z, set()).add(sender)
                if z not in known and len(known) < 2:
                    known[z] = signature

    # --- Round 1: only the dealer speaks. ---------------------------------
    if ctx.party_id == dealer:
        signature = scheme.sign(dealer, _dealer_message(ctx, value))
        outbox = ctx.broadcast({_KEY: [(value, signature)]})
    else:
        outbox = None  # silence: send nothing this round
    inbox = yield outbox
    senders_for: Dict[Any, Set[int]] = {}
    if dealer in inbox:
        absorb(inbox[dealer], senders_for, dealer)
    snapshots.append(tuple(sorted(known, key=repr)))
    quorum_ok.append(True)  # round 1 is the dealer's round; quorum exempt

    # --- Rounds 2..s-1: relay (at most two) known pairs. ------------------
    for _ in range(2, rounds + 1):
        inbox = yield ctx.broadcast({_KEY: [(z, known[z]) for z in known]})
        senders_for = {}
        for sender, payload in inbox.items():
            absorb(payload, senders_for, sender)
        snapshots.append(tuple(sorted(known, key=repr)))
        singleton = len(known) == 1
        if singleton:
            (z,) = known
            quorum_ok.append(len(senders_for.get(z, ())) >= n - t)
        else:
            quorum_ok.append(False)

    # --- Grade: longest stable-singleton window of snapshots. -------------
    parity = slots % 2
    grades = (slots - 1) // 2
    best_value: Any = default
    best_grade = 0
    for grade in range(1 if parity else 0, grades + 1):
        window = 2 * grade + 1 - parity
        if window <= 0:
            continue
        for start in range(0, rounds - window + 1):
            segment = snapshots[start : start + window]
            first = segment[0]
            if len(first) != 1 or any(s != first for s in segment):
                continue
            if require_quorum and not all(
                quorum_ok[start + offset] for offset in range(window)
            ):
                continue
            if grade >= best_grade:
                best_value, best_grade = first[0], grade
            break
    return ProxOutput(best_value, best_grade)
