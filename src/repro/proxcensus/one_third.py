"""Proxcensus for t < n/3 with perfect security (paper §3.3, Corollary 1).

The paper's expansion technique: given an ``s``-slot Proxcensus, one extra
round of echoing the ``(value, grade)`` output yields a ``(2s-1)``-slot
Proxcensus.  Interpreting the input configuration as the trivial
``Prox_2`` (everyone at grade 0 on their own input), ``r`` rounds of
iterated expansion give ``Prox_{2^r + 1}`` — exponentially many slots, and
hence (through the extraction step) a per-iteration error of ``2^-r``.

No signatures are involved: security is information-theoretic, resting on
quorum intersection with ``n > 3t``.

The expansion's output determination (protocol ``Prox_{2s-1}``): after
echoing, let ``S_{z,h}`` be the senders who echoed ``(z, h)`` and ``S_0``
those who echoed grade 0.  Scanning grade bands upward, a band
``(h, h+1)`` holding an ``n - t`` quorum places the party at one of two new
slots depending on which side of the band holds ``n - 2t`` echoes (ties go
up); a full quorum on the top grade ``G`` gives the new maximal grade.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict

from ..network.messages import get_field
from ..network.party import Context
from .base import ProxOutput, max_grade

__all__ = [
    "prox_one_third_program",
    "prox_expand_once_program",
    "slots_after_rounds",
]

_MESSAGE_KEY = "prox13"


def slots_after_rounds(rounds: int) -> int:
    """Corollary 1: ``r`` rounds of expansion reach ``2^r + 1`` slots."""
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    return 2 ** rounds + 1


def prox_one_third_program(ctx: Context, value: Any, rounds: int):
    """Party program for ``Prox_{2^rounds + 1}``, t < n/3.

    ``value`` may come from any finite domain (term-encodable); the BA
    protocols use bits.  Returns a :class:`ProxOutput`.
    """
    if 3 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"prox_one_third requires t < n/3, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    y, g = value, 0
    slots = 2  # the input configuration is the trivial Prox_2
    for _ in range(rounds):
        y, g = yield from _expand_once(ctx, y, g, slots)
        slots = 2 * slots - 1
    return ProxOutput(y, g)


def prox_expand_once_program(ctx: Context, value: Any, grade: int, slots: int):
    """One expansion round as a standalone program: ``Prox_s → Prox_{2s-1}``.

    ``(value, grade)`` is this party's output of *any* ``s``-slot
    Proxcensus (t < n/3).  This is the paper's Fig. 2 step in isolation —
    the benchmarks use it to execute the figure's ``Prox_4 → Prox_7`` and
    ``Prox_5 → Prox_9`` examples from synthetic inner configurations,
    including the even-``s`` case that the iterated chain (which only
    produces odd ``s``) never visits.
    """
    if 3 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"the expansion requires t < n/3, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    grades = max_grade(slots)
    if not (0 <= grade <= grades):
        raise ValueError(f"grade {grade} outside [0, {grades}] for s={slots}")
    new_value, new_grade = yield from _expand_once(ctx, value, grade, slots)
    return ProxOutput(new_value, new_grade)


def _expand_once(ctx: Context, value: Any, grade: int, slots: int):
    """One expansion round: ``Prox_s`` output ``(value, grade)`` → ``Prox_{2s-1}``."""
    n, t = ctx.num_parties, ctx.max_faulty
    grades = max_grade(slots)          # G of the *inner* Proxcensus
    parity = slots % 2                 # b with s = 2k + b
    inbox = yield ctx.broadcast({_MESSAGE_KEY: (value, grade)})

    # Tally echoes defensively: one (z, h) pair per sender, h in [0, G].
    by_grade: Dict[int, Counter] = {}
    grade_zero = 0
    for payload in inbox.values():
        pair = get_field(payload, _MESSAGE_KEY)
        if not (isinstance(pair, tuple) and len(pair) == 2):
            continue
        z, h = pair
        if isinstance(h, bool) or not isinstance(h, int) or not (0 <= h <= grades):
            continue
        if h == 0:
            grade_zero += 1
        by_grade.setdefault(h, Counter())[_key(z)] += 1

    def votes(z_key, h: int) -> int:
        counter = by_grade.get(h)
        return counter[z_key] if counter is not None else 0

    candidates = sorted(
        {z_key for counter in by_grade.values() for z_key in counter},
        key=repr,
    )

    new_value: Any = 0
    new_grade = 0
    # Odd s: the central slot is valueless, so the lowest band pairs the
    # grade-0 pool (any value) with grade-1 votes on a specific value.
    if parity == 1:
        for z_key in candidates:
            if (
                grade_zero + votes(z_key, 1) >= n - t
                and votes(z_key, 1) >= n - 2 * t
            ):
                new_value, new_grade = _unkey(z_key), 1
                break
    # Only bands that actually received votes can assemble an n - t quorum;
    # the grade range is up to 2^{kappa-1}, so iterating all bands would be
    # exponential — iterate the (at most 2 honest + t Byzantine) observed ones.
    observed_bands = sorted(
        band
        for h in by_grade
        for band in (h - 1, h)
        if parity <= band < grades
    )
    for band in dict.fromkeys(observed_bands):
        for z_key in candidates:
            pair_total = votes(z_key, band) + votes(z_key, band + 1)
            if pair_total < n - t:
                continue
            if votes(z_key, band + 1) >= n - 2 * t:
                new_value, new_grade = _unkey(z_key), 2 * band + 2 - parity
            elif votes(z_key, band) >= n - 2 * t:
                new_value, new_grade = _unkey(z_key), 2 * band + 1 - parity
            break  # quorums for two distinct z cannot coexist (n > 3t)
    for z_key in candidates:
        if votes(z_key, grades) >= n - t:
            new_value, new_grade = _unkey(z_key), 2 * grades + 1 - parity
            break
    return new_value, new_grade


def _key(value: Any):
    """Hashable tally key for a domain value (Byzantine values included)."""
    try:
        hash(value)
    except TypeError:
        return ("unhashable", repr(value))
    return ("v", value)


def _unkey(key) -> Any:
    return key[1]
