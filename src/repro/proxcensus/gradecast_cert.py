"""Certificate-based {0,1,2}-gradecast (the MV-style building block).

The paper's closing remark (§3.5): in Micali–Vaikuntanathan's original
model (standard signatures, player replaceability), MV's 3-round
``{0,1,2}``-gradecast can be replaced by the 3-round single-sender
``Prox_4`` — saving a factor ``n`` of communication, because the
certificate-echo pattern of standard gradecast ships ``n - t`` signatures
per message while proxcast ships at most two dealer signatures.

This module implements that certificate-echo gradecast so the substitution
is *measurable* (see ``benchmarks/bench_gradecast_substitution.py``):

* round 1 — the dealer signs and sends its value;
* round 2 — every party co-signs the (unique, valid) dealer value it saw
  and echoes it;
* round 3 — a party that collected an ``n - t``-signature *certificate*
  forwards the whole certificate.

Output: grade 2 iff the party assembled a certificate itself at the end of
round 2 **and** saw no echo for a conflicting value; grade 1 iff it holds
exactly one value's certificate by the end of round 3; grade 0 otherwise.
Secure for t < n/2; grades satisfy Definition 3 for s = 4... precisely the
3-slot graded-broadcast contract {0,1,2} with crusader-style consistency:
any two grades ``>= 1`` carry the same value, and grades differ by ≤ 1.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..network.messages import get_field
from ..network.party import Context
from .base import ProxOutput

__all__ = ["certificate_gradecast_program"]

_KEY = "gcc"


def _dealer_message(ctx: Context, dealer: int, value: Any):
    return (_KEY, ctx.session, "deal", dealer, value)


def _echo_message(ctx: Context, dealer: int, value: Any):
    return (_KEY, ctx.session, "echo", dealer, value)


def certificate_gradecast_program(
    ctx: Context, value: Any, dealer: int, default: Any = 0
):
    """3-round certificate gradecast; returns ``ProxOutput`` with g ∈ {0,1,2}."""
    n, t = ctx.num_parties, ctx.max_faulty
    if 2 * t >= n:
        raise ValueError(
            f"certificate gradecast requires t < n/2, got t={t}, n={n}"
        )
    if not (0 <= dealer < n):
        raise ValueError(f"dealer {dealer} out of range")
    scheme = ctx.crypto.plain

    # --- Round 1: dealer distributes its signed value. --------------------
    if ctx.party_id == dealer:
        signature = scheme.sign(dealer, _dealer_message(ctx, dealer, value))
        outbox = ctx.broadcast({_KEY: (value, signature)})
    else:
        outbox = None  # silence: send nothing this round
    inbox = yield outbox
    dealt: Optional[Any] = None
    if dealer in inbox:
        pair = get_field(inbox[dealer], _KEY)
        if isinstance(pair, tuple) and len(pair) == 2:
            candidate, signature = pair
            try:
                hash(candidate)
            except TypeError:
                candidate = None
            if candidate is not None and scheme.verify(
                dealer, signature, _dealer_message(ctx, dealer, candidate)
            ):
                dealt = candidate

    # --- Round 2: co-sign and echo the dealt value. ------------------------
    if dealt is not None:
        echo_signature = scheme.sign(
            ctx.party_id, _echo_message(ctx, dealer, dealt)
        )
        outbox = ctx.broadcast({_KEY: (dealt, echo_signature)})
    else:
        outbox = None  # silence: send nothing this round
    inbox = yield outbox
    echoes: Dict[Any, Dict[int, Any]] = {}
    for sender, payload in inbox.items():
        pair = get_field(payload, _KEY)
        if not (isinstance(pair, tuple) and len(pair) == 2):
            continue
        echoed, signature = pair
        try:
            hash(echoed)
        except TypeError:
            continue
        if scheme.verify(sender, signature, _echo_message(ctx, dealer, echoed)):
            echoes.setdefault(echoed, {})[sender] = signature
    own_certificates = {
        v: list(signers.items())[: n - t]
        for v, signers in echoes.items()
        if len(signers) >= n - t
    }
    conflicting_echo_seen = len(echoes) > 1

    # --- Round 3: forward full certificates (the factor-n cost). ----------
    inbox = yield ctx.broadcast(
        {_KEY: [(v, cert) for v, cert in own_certificates.items()]}
    )
    certified: Set[Any] = set(own_certificates)
    for payload in inbox.values():
        items = get_field(payload, _KEY)
        if not isinstance(items, (list, tuple)):
            continue
        for item in items:
            if not (isinstance(item, (list, tuple)) and len(item) == 2):
                continue
            v, cert = item
            try:
                hash(v)
            except TypeError:
                continue
            if v in certified or not isinstance(cert, (list, tuple)):
                continue
            valid_signers = set()
            for entry in cert:
                if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                    continue
                signer, signature = entry
                if isinstance(signer, int) and scheme.verify(
                    signer, signature, _echo_message(ctx, dealer, v)
                ):
                    valid_signers.add(signer)
            if len(valid_signers) >= n - t:
                certified.add(v)

    if (
        len(own_certificates) == 1
        and not conflicting_echo_seen
        and len(certified) == 1
    ):
        return ProxOutput(next(iter(own_certificates)), 2)
    if len(certified) == 1:
        return ProxOutput(next(iter(certified)), 1)
    return ProxOutput(default, 0)
