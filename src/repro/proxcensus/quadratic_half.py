"""Quadratic Proxcensus for t < n/2 (paper Appendix B, Lemma 7).

``r`` rounds yield ``3 + (r-3)(r-2)`` slots — quadratic in the round count,
against the linear ``2r - 1`` of :mod:`.linear_half`.  The idea: instead of
releasing one proof ``ω`` in round 2 only, each party releases a fresh
``ω_j``-share *every* round ``j`` in which its state is still univalent,
building a tower of threshold signatures ``Ω_1, Ω_2, …`` whose arrival
*schedule* encodes the grade.

``Ω_1`` on ``v`` is combined from round-1 input shares; for ``j ≥ 2``,
``Ω_j`` on ``v`` is combined from the ``ω_j``-shares of ``n - t`` parties
that each (a) formed ``Ω_{j-1}`` on ``v`` themselves at the end of round
``j - 1`` and (b) had seen no ``Ω_ℓ`` on any other value.  Every formed or
received ``(v, Ω_k)`` pair is flooded.

The per-grade conditions (paper Table 2) prescribe, for each grade ``g``
and each round ``j``, which ``Ω_k`` must be known by the end of round
``j``.  They are derived inductively from the top grade downward — see
:func:`condition_table`, which reproduces Table 2 exactly; the derivation
rule is the one stated in the paper:

* grade ``G`` requires ``Ω_j`` formed at round ``j`` for every ``j``;
* grade ``g < G`` at round ``j`` requires ``Ω_{j-1}`` if grade ``g + 1``
  requires ``Ω_j`` at some *later* round, else whatever grade ``g + 1``
  required one round earlier.

Every grade ``≥ 1`` ends up requiring ``Ω_3`` somewhere, which is what
makes grade-1 conditions for different values mutually exclusive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..network.messages import get_field
from ..network.party import Context
from .base import ProxOutput

__all__ = [
    "prox_quadratic_half_program",
    "slots_after_rounds",
    "top_grade",
    "condition_table",
]

_KEY = "pqh"


def slots_after_rounds(rounds: int) -> int:
    """Lemma 7: ``r`` rounds yield ``3 + (r-3)(r-2)`` slots (r ≥ 3)."""
    if rounds < 3:
        raise ValueError("the quadratic t<n/2 Proxcensus needs at least 3 rounds")
    return 3 + (rounds - 3) * (rounds - 2)


def top_grade(rounds: int) -> int:
    """``G = 1 + (r-3)(r-2)/2`` — consistent with ``⌊(s-1)/2⌋``."""
    return 1 + (rounds - 3) * (rounds - 2) // 2


def condition_table(rounds: int) -> Dict[int, Dict[int, int]]:
    """Grade → {round → required Ω-index} (the paper's Table 2 columns).

    Grade ``G`` constrains rounds ``1..r``; lower grades constrain rounds
    ``2..r``.  Grade 0 has no conditions and is not included.
    """
    grades = top_grade(rounds)
    table: Dict[int, Dict[int, int]] = {
        grades: {j: j for j in range(1, rounds + 1)}
    }
    for grade in range(grades - 1, 0, -1):
        above = table[grade + 1]
        current: Dict[int, int] = {}
        for j in range(2, rounds + 1):
            if any(required == j for later, required in above.items() if later > j):
                current[j] = j - 1
            else:
                current[j] = above[j - 1]
        table[grade] = current
    return table


def _omega_message(ctx: Context, level: int, value: Any):
    return (_KEY, ctx.session, level, value)


def prox_quadratic_half_program(ctx: Context, value: Any, rounds: int, default: Any = 0):
    """Party program for the quadratic Proxcensus, t < n/2."""
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"prox_quadratic_half requires t < n/2, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    if rounds < 3:
        raise ValueError("need at least 3 rounds")
    scheme = ctx.crypto.quorum

    # first_known[(v, k)] = earliest round the pair (v, Ω_k) was known;
    # signatures[(v, k)] holds the signature object; formed_last holds the
    # (v, k) pairs this party *combined itself* at the end of the previous
    # round (the ω-release rule cares about forming, not receiving).
    first_known: Dict[Tuple[Any, int], int] = {}
    signatures: Dict[Tuple[Any, int], Any] = {}
    fresh: List[Tuple[Any, int]] = []
    formed_last: List[Tuple[Any, int]] = []

    def learn(v: Any, level: int, signature: Any, round_index: int) -> None:
        key = (v, level)
        if key not in first_known:
            first_known[key] = round_index
            signatures[key] = signature
            fresh.append(key)

    # --- Round 1: share the input value (builds Ω_1). --------------------
    share = scheme.sign_share(ctx.party_id, _omega_message(ctx, 1, value))
    inbox = yield ctx.broadcast({_KEY: {"value": value, "share": share}})
    by_value: Dict[Any, List[Tuple[int, Any]]] = {}
    for sender, payload in inbox.items():
        body = get_field(payload, _KEY)
        if not isinstance(body, dict):
            continue
        v = body.get("value")
        try:
            hash(v)
        except TypeError:
            continue
        by_value.setdefault(v, []).append((sender, body.get("share")))
    for v, indexed in by_value.items():
        signature = scheme.try_combine(indexed, _omega_message(ctx, 1, v))
        if signature is not None:
            learn(v, 1, signature, 1)
            formed_last.append((v, 1))

    # --- Rounds 2..r: flood new pairs, release ω_j when still univalent. --
    for round_index in range(2, rounds + 1):
        outgoing: Dict[str, Any] = {
            "pairs": [(v, k, signatures[(v, k)]) for (v, k) in fresh],
        }
        release = _univalent_value(formed_last, first_known, round_index)
        if release is not None:
            outgoing["omega_share"] = (
                release,
                scheme.sign_share(
                    ctx.party_id, _omega_message(ctx, round_index, release)
                ),
            )
        fresh = []
        formed_last = []
        inbox = yield ctx.broadcast({_KEY: outgoing})

        omega_shares: Dict[Any, List[Tuple[int, Any]]] = {}
        for sender, payload in inbox.items():
            body = get_field(payload, _KEY)
            if not isinstance(body, dict):
                continue
            pairs = body.get("pairs")
            if isinstance(pairs, (list, tuple)):
                for item in pairs:
                    if not (isinstance(item, (list, tuple)) and len(item) == 3):
                        continue
                    v, level, signature = item
                    if isinstance(level, bool) or not isinstance(level, int):
                        continue
                    if not (1 <= level <= rounds):
                        continue
                    try:
                        hash(v)
                    except TypeError:
                        continue
                    if (v, level) in first_known:
                        continue
                    if scheme.verify(signature, _omega_message(ctx, level, v)):
                        learn(v, level, signature, round_index)
            pair = body.get("omega_share")
            if isinstance(pair, (list, tuple)) and len(pair) == 2:
                v, omega_share = pair
                try:
                    hash(v)
                except TypeError:
                    continue
                omega_shares.setdefault(v, []).append((sender, omega_share))
        for v, indexed in omega_shares.items():
            signature = scheme.try_combine(
                indexed, _omega_message(ctx, round_index, v)
            )
            if signature is not None and (v, round_index) not in first_known:
                learn(v, round_index, signature, round_index)
                formed_last.append((v, round_index))

    # --- Output determination (Table 2 conditions, highest grade first). --
    table = condition_table(rounds)
    values = sorted({v for (v, _k) in first_known}, key=repr)
    for grade in range(top_grade(rounds), 0, -1):
        deadlines = table[grade]
        for v in values:
            if all(
                first_known.get((v, omega_index), rounds + 1) <= by_round
                for by_round, omega_index in deadlines.items()
            ):
                return ProxOutput(v, grade)
    return ProxOutput(default, 0)


def _univalent_value(
    formed_last: List[Tuple[Any, int]],
    first_known: Dict[Tuple[Any, int], int],
    round_index: int,
) -> Optional[Any]:
    """The ω-release rule at the start of round ``j``.

    Release an ``ω_j``-share on ``v`` iff this party itself combined
    ``Ω_{j-1}`` on ``v`` at the end of round ``j - 1``, for exactly one
    ``v``, and knows no ``Ω_ℓ`` (any level) on a different value.
    """
    formed_values = {v for (v, level) in formed_last if level == round_index - 1}
    if len(formed_values) != 1:
        return None
    v = formed_values.pop()
    for (other, _level) in first_known:
        if other != v:
            return None
    return v
