"""Catalogue of the Proxcensus/proxcast constructions in this repository.

Used by the analysis layer and benchmarks to sweep "slots achieved per
round" across all four families (paper Corollary 1, Lemma 3, Lemma 7,
Lemma 6) without hand-writing each case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from . import linear_half, one_third, quadratic_half

__all__ = ["ProxFamily", "FAMILIES", "family"]


@dataclass(frozen=True)
class ProxFamily:
    """Static facts about one Proxcensus construction."""

    name: str
    paper_ref: str
    resilience: str  # "n/3", "n/2" or "n"
    min_rounds: int
    slots_for_rounds: Callable[[int], int]
    multi_sender: bool  # False for proxcast (single dealer)

    def grades_for_rounds(self, rounds: int) -> int:
        return (self.slots_for_rounds(rounds) - 1) // 2


FAMILIES: Dict[str, ProxFamily] = {
    "one_third": ProxFamily(
        name="one_third",
        paper_ref="§3.3, Corollary 1 (perfect security, t < n/3)",
        resilience="n/3",
        min_rounds=0,
        slots_for_rounds=one_third.slots_after_rounds,
        multi_sender=True,
    ),
    "linear_half": ProxFamily(
        name="linear_half",
        paper_ref="§3.3, Lemma 3 (threshold signatures, t < n/2)",
        resilience="n/2",
        min_rounds=2,
        slots_for_rounds=linear_half.slots_after_rounds,
        multi_sender=True,
    ),
    "quadratic_half": ProxFamily(
        name="quadratic_half",
        paper_ref="Appendix B, Lemma 7 (threshold signatures, t < n/2)",
        resilience="n/2",
        min_rounds=3,
        slots_for_rounds=quadratic_half.slots_after_rounds,
        multi_sender=True,
    ),
    "proxcast": ProxFamily(
        name="proxcast",
        paper_ref="Appendix A, Lemma 6 (dealer PKI, t < n)",
        resilience="n",
        min_rounds=1,
        slots_for_rounds=lambda rounds: rounds + 1,  # s slots in s-1 rounds
        multi_sender=False,
    ),
}


def family(name: str) -> ProxFamily:
    """Look up a family by name; raises KeyError listing known names."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown Proxcensus family {name!r}; known: {sorted(FAMILIES)}"
        ) from None
