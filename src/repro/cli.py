"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``run``
    Execute one protocol on a simulated network and print the outcome
    (optionally with a full message trace and an adversary attached).
``compare``
    The §3.5 efficiency comparison, measured live for chosen κ values.
``tables``
    Regenerate the paper's condition tables / extraction figure.
``error-sweep``
    Monte-Carlo disagreement rates vs the 2^-κ bound under the worst-case
    straddle adversaries.

Examples::

    python -m repro run --protocol one_third --kappa 8 --inputs 1,0,1,0 --t 1
    python -m repro run --protocol one_half --kappa 4 --inputs 1,0,1,0,1 \\
        --t 2 --adversary straddle --trace
    python -m repro compare --kappas 4,8,16,32
    python -m repro tables --which table2
    python -m repro error-sweep --protocol one_half --kappas 1,2,4 --trials 200
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .adversary.base import Adversary
from .adversary.straddle import (
    LinearHalfStraddleAdversary,
    OneThirdStraddleAdversary,
)
from .adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from .analysis.experiments import ExperimentSetup, disagreement_rate, run_trials
from .analysis.report import format_table
from .analysis.tables import render_fig3, render_table1, render_table2
from .analysis.theory import rounds_for_error
from .core.ba import ba_one_half_program, ba_one_third_program
from .core.dolev_strong import dolev_strong_ba_program
from .core.feldman_micali import feldman_micali_program
from .core.micali_vaikuntanathan import micali_vaikuntanathan_program
from .crypto.keys import CryptoSuite
from .network.simulator import SyncSimulator
from .network.trace import Tracer

__all__ = ["main"]

PROTOCOLS = {
    "one_third": (ba_one_third_program, "n/3"),
    "one_half": (ba_one_half_program, "n/2"),
    "feldman_micali": (feldman_micali_program, "n/3"),
    "micali_vaikuntanathan": (micali_vaikuntanathan_program, "n/2"),
}


def _parse_int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")


def _build_adversary(name: str, victims: List[int], factory) -> Optional[Adversary]:
    if name == "none":
        return None
    if name == "crash":
        return CrashAdversary(victims, crash_round=2)
    if name == "malformed":
        return MalformedAdversary(victims)
    if name == "two_face":
        return TwoFaceAdversary(victims, factory=factory)
    if name == "straddle13":
        return OneThirdStraddleAdversary(victims)
    if name == "straddle12":
        return LinearHalfStraddleAdversary(victims)
    raise argparse.ArgumentTypeError(f"unknown adversary {name!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.protocol == "dolev_strong":
        factory = lambda ctx, v: dolev_strong_ba_program(ctx, v)
    else:
        program, _regime = PROTOCOLS[args.protocol]
        factory = lambda ctx, b: program(ctx, b, args.kappa)
    inputs = args.inputs
    n, t = len(inputs), args.t
    if args.adversary == "straddle":
        args.adversary = "straddle13" if args.protocol == "one_third" else "straddle12"
    victims = args.victims or list(range(n - t, n))
    adversary = _build_adversary(args.adversary, victims, factory)
    tracer = Tracer() if args.trace else None
    import random as _random

    simulator = SyncSimulator(
        num_parties=n,
        max_faulty=t,
        crypto=CryptoSuite.ideal(n, t, _random.Random(args.seed + 0x5E7)),
        adversary=adversary,
        seed=args.seed,
        session=f"cli{args.seed}",
        tracer=tracer,
    )
    result = simulator.run(factory, inputs)
    print(f"protocol   : {args.protocol} (kappa={args.kappa})")
    print(f"inputs     : {inputs}")
    print(f"corrupted  : {sorted(result.corrupted) or '-'}")
    print(f"outputs    : {result.outputs}")
    print(f"agreement  : {result.honest_agree()}")
    print(f"rounds     : {result.metrics.rounds}")
    print(f"messages   : {result.metrics.total_messages}")
    print(f"signatures : {result.metrics.total_signatures}")
    if tracer is not None:
        print("\ntranscript:")
        print(tracer.render())
    return 0 if result.honest_agree() else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for kappa in args.kappas:
        rows.append(
            [
                kappa,
                rounds_for_error("ours_one_third", kappa),
                rounds_for_error("feldman_micali", kappa),
                rounds_for_error("ours_one_half", kappa),
                rounds_for_error("micali_vaikuntanathan", kappa),
            ]
        )
    print("rounds to reach error 2^-kappa\n")
    print(
        format_table(
            ["kappa", "ours t<n/3", "FM t<n/3", "ours t<n/2", "MV t<n/2"], rows
        )
    )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    renderers = {
        "table1": lambda: render_table1(3),
        "table2": lambda: render_table2(6),
        "fig3": lambda: render_fig3(10),
    }
    which = list(renderers) if args.which == "all" else [args.which]
    for name in which:
        print(f"── {name} " + "─" * 50)
        print(renderers[name]())
        print()
    return 0


def _cmd_error_sweep(args: argparse.Namespace) -> int:
    if args.protocol == "one_third":
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        inputs = [0, 0, 1, 1]
        adversary_factory = lambda: OneThirdStraddleAdversary([3])
        program = ba_one_third_program
    else:
        setup = ExperimentSetup(num_parties=5, max_faulty=2)
        inputs = [0, 0, 1, 1, 1]
        adversary_factory = lambda: LinearHalfStraddleAdversary([3, 4])
        program = ba_one_half_program
    rows = []
    for kappa in args.kappas:
        factory = lambda c, b, k=kappa: program(c, b, k)
        rate = disagreement_rate(
            run_trials(
                setup, factory, inputs, trials=args.trials,
                adversary_factory=adversary_factory, seed=args.seed + kappa,
            )
        )
        rows.append([kappa, f"{2.0 ** -kappa:.4f}", f"{rate:.4f}"])
    print(
        f"{args.protocol}: disagreement under worst-case straddle attack "
        f"({args.trials} trials)\n"
    )
    print(format_table(["kappa", "bound 2^-k", "measured"], rows))
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .applications.ledger import NO_OP, replicated_log_program, rounds_per_slot

    queues = [queue.split("+") if queue else [] for queue in args.queues.split(";")]
    n = len(queues)
    program = lambda ctx, cmds: replicated_log_program(
        ctx, cmds, num_slots=args.slots, kappa=args.kappa,
        regime=args.regime, proposer=args.proposer,
    )
    import random as _random

    simulator = SyncSimulator(
        num_parties=n,
        max_faulty=args.t,
        crypto=CryptoSuite.ideal(n, args.t, _random.Random(args.seed + 0x1ED6)),
        seed=args.seed,
        session=f"ledger{args.seed}",
    )
    result = simulator.run(program, queues)
    per_slot = rounds_per_slot(args.kappa, args.regime, args.proposer)
    print(f"replicas : {n} (t = {args.t}), {args.slots} slots x {per_slot} rounds")
    reference = None
    for pid in sorted(result.outputs):
        log = [c if c != NO_OP else "<no-op>" for c in result.outputs[pid]]
        print(f"replica {pid}: {log}")
        reference = reference if reference is not None else log
    forked = any(
        result.outputs[pid] != result.outputs[result.honest_parties[0]]
        for pid in result.honest_parties
    )
    print(f"forked   : {forked}")
    return 1 if forked else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Round-efficient Byzantine Agreement via Proxcensus "
        "(Fitzi, Liu-Zhang, Loss; PODC 2021) — executable reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute one protocol")
    run_parser.add_argument(
        "--protocol",
        choices=list(PROTOCOLS) + ["dolev_strong"],
        default="one_third",
    )
    run_parser.add_argument("--kappa", type=int, default=8)
    run_parser.add_argument(
        "--inputs", type=_parse_int_list, default=[1, 0, 1, 0],
        help="comma-separated bits, one per party",
    )
    run_parser.add_argument("--t", type=int, default=1, help="corruption budget")
    run_parser.add_argument(
        "--adversary",
        choices=["none", "crash", "malformed", "two_face", "straddle",
                 "straddle13", "straddle12"],
        default="none",
    )
    run_parser.add_argument(
        "--victims", type=_parse_int_list, default=None,
        help="corrupted party ids (default: the last t parties)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--trace", action="store_true")
    run_parser.set_defaults(handler=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="the §3.5 efficiency comparison"
    )
    compare_parser.add_argument(
        "--kappas", type=_parse_int_list, default=[4, 8, 16, 32]
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    tables_parser = subparsers.add_parser(
        "tables", help="regenerate the paper's tables/figures"
    )
    tables_parser.add_argument(
        "--which", choices=["table1", "table2", "fig3", "all"], default="all"
    )
    tables_parser.set_defaults(handler=_cmd_tables)

    sweep_parser = subparsers.add_parser(
        "error-sweep", help="Monte-Carlo failure rates vs 2^-kappa"
    )
    sweep_parser.add_argument(
        "--protocol", choices=["one_third", "one_half"], default="one_third"
    )
    sweep_parser.add_argument("--kappas", type=_parse_int_list, default=[1, 2, 4])
    sweep_parser.add_argument("--trials", type=int, default=100)
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.set_defaults(handler=_cmd_error_sweep)

    ledger_parser = subparsers.add_parser(
        "ledger", help="replicated log over sequential multivalued BA"
    )
    ledger_parser.add_argument(
        "--queues", default="a+b;a+c;a+b;a+c",
        help="per-replica command queues: ';' separates replicas, "
        "'+' separates commands",
    )
    ledger_parser.add_argument("--slots", type=int, default=2)
    ledger_parser.add_argument("--kappa", type=int, default=8)
    ledger_parser.add_argument(
        "--regime", choices=["one_third", "one_half"], default="one_third"
    )
    ledger_parser.add_argument(
        "--proposer", choices=["local", "rotating"], default="rotating"
    )
    ledger_parser.add_argument("--t", type=int, default=1)
    ledger_parser.add_argument("--seed", type=int, default=0)
    ledger_parser.set_defaults(handler=_cmd_ledger)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
