"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``run``
    Execute one protocol on a simulated network and print the outcome
    (optionally with a full message trace and an adversary attached;
    ``--trace-jsonl`` additionally streams the trace to a
    schema-versioned JSONL file).
``trace``
    Replay a streamed JSONL trace file through the round-timeline
    renderer, with ``--round`` / ``--party`` / ``--corrupt-only``
    filters and ``--stats`` per-round tallies.  Malformed, truncated or
    wrong-schema files exit 2.
``compare``
    The §3.5 efficiency comparison, measured live for chosen κ values.
``tables``
    Regenerate the paper's condition tables / extraction figure.
``error-sweep``
    Monte-Carlo disagreement rates vs the 2^-κ bound under the worst-case
    straddle adversaries.
``bench``
    The same sweep through the parallel experiment engine: runs it
    serially and with ``--workers`` processes, checks the two are
    bit-identical, reports wall times (optionally vs the pre-optimization
    baseline) and writes a machine-readable ``BENCH_engine.json``.
    ``--adaptive`` adds the early-stopping leg: the sweep re-run under
    :class:`repro.engine.AdaptiveRunner` with a total budget equal to the
    fixed run, verdict-checked against it config for config.
    ``--telemetry DIR`` streams engine scheduling spans (chunk dispatch,
    worker busy time, setup, adaptive allocations) to
    ``DIR/telemetry.jsonl`` and fails if they don't sum consistently
    with the reported wall times.
``check``
    Two-phase whole-program static analysis enforcing the repo's
    determinism, layering, serialization and observability invariants
    (rule families DET/LAY/SER/API/VEC/OBS/SUP; see
    ``docs/static-analysis.md``).  Exit 1 on findings; ``--json`` /
    ``--sarif`` write CI artifacts, ``--baseline`` demotes known
    findings, ``--fix`` applies the whitelisted mechanical rewrites
    (``--diff`` previews them), and per-line ``# repro: noqa[RULE]``
    suppressions are themselves checked for staleness (SUP901).

Examples::

    python -m repro run --protocol one_third --kappa 8 --inputs 1,0,1,0 --t 1
    python -m repro run --protocol one_half --kappa 4 --inputs 1,0,1,0,1 \\
        --t 2 --adversary straddle --trace
    python -m repro run --protocol one_third --kappa 4 --inputs 1,0,1,0 \\
        --t 1 --adversary crash --trace-jsonl run.trace.jsonl
    python -m repro trace run.trace.jsonl --stats
    python -m repro trace run.trace.jsonl --round 1,2 --corrupt-only
    python -m repro compare --kappas 4,8,16,32
    python -m repro tables --which table2
    python -m repro error-sweep --protocol one_half --kappas 1,2,4 --trials 200
    python -m repro bench --workers 4 --trials 300 --json BENCH_engine.json
    python -m repro bench --adaptive --max-trials 600 --trials 300
    python -m repro check --json check-report.json --sarif check-report.sarif
    python -m repro check --select DET,LAY src/repro
    python -m repro check --fix
    python -m repro check --diff
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .adversary.base import Adversary
from .adversary.straddle import (
    LinearHalfStraddleAdversary,
    OneThirdStraddleAdversary,
)
from .adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from .analysis.experiments import ExperimentSetup, disagreement_rate, run_trials
from .analysis.report import format_table
from .analysis.tables import render_fig3, render_table1, render_table2
from .analysis.theory import rounds_for_error
from .core.ba import ba_one_half_program, ba_one_third_program
from .core.dolev_strong import dolev_strong_ba_program
from .core.feldman_micali import feldman_micali_program
from .core.micali_vaikuntanathan import micali_vaikuntanathan_program
from .crypto.keys import CryptoSuite
from .network.simulator import SyncSimulator
from .network.trace import Tracer

__all__ = ["main"]

PROTOCOLS = {
    "one_third": (ba_one_third_program, "n/3"),
    "one_half": (ba_one_half_program, "n/2"),
    "feldman_micali": (feldman_micali_program, "n/3"),
    "micali_vaikuntanathan": (micali_vaikuntanathan_program, "n/2"),
}


def _parse_int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_adversary(name: str, victims: List[int], factory) -> Optional[Adversary]:
    if name == "none":
        return None
    if name == "crash":
        return CrashAdversary(victims, crash_round=2)
    if name == "malformed":
        return MalformedAdversary(victims)
    if name == "two_face":
        return TwoFaceAdversary(victims, factory=factory)
    if name == "straddle13":
        return OneThirdStraddleAdversary(victims)
    if name == "straddle12":
        return LinearHalfStraddleAdversary(victims)
    raise argparse.ArgumentTypeError(f"unknown adversary {name!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.protocol == "dolev_strong":
        factory = lambda ctx, v: dolev_strong_ba_program(ctx, v)
    else:
        program, _regime = PROTOCOLS[args.protocol]
        factory = lambda ctx, b: program(ctx, b, args.kappa)
    inputs = args.inputs
    n, t = len(inputs), args.t
    if args.adversary == "straddle":
        args.adversary = "straddle13" if args.protocol == "one_third" else "straddle12"
    victims = args.victims or list(range(n - t, n))
    adversary = _build_adversary(args.adversary, victims, factory)
    faults = None
    if args.faults:
        import json as _json

        from .engine import build_fault_plan, fault_plan_names

        try:
            fault_params = (
                _json.loads(args.fault_params) if args.fault_params else {}
            )
        except ValueError as error:
            print(
                f"repro run: --fault-params is not valid JSON: {error}",
                file=sys.stderr,
            )
            return 2
        try:
            faults = build_fault_plan(args.faults, fault_params)
        except (KeyError, TypeError, ValueError) as error:
            print(
                f"repro run: bad fault scenario: {error}\n"
                f"usage: --faults takes one of {fault_plan_names()}",
                file=sys.stderr,
            )
            return 2
    tracer = None
    memory_sink = None
    jsonl_sink = None
    if args.trace or args.trace_jsonl:
        from .network.trace import MemoryTraceSink

        sinks = []
        if args.trace:
            memory_sink = MemoryTraceSink()
            sinks.append(memory_sink)
        if args.trace_jsonl:
            from .obs import FanoutSink, JsonlTraceSink

            jsonl_sink = JsonlTraceSink(
                args.trace_jsonl,
                meta={
                    "protocol": args.protocol,
                    "kappa": args.kappa,
                    "adversary": args.adversary,
                    "n": n,
                    "t": t,
                    "seed": args.seed,
                    "session": f"cli{args.seed}",
                },
            )
            sinks.append(jsonl_sink)
        tracer = Tracer(sinks[0] if len(sinks) == 1 else FanoutSink(sinks))
    import random as _random

    simulator = SyncSimulator(
        num_parties=n,
        max_faulty=t,
        crypto=CryptoSuite.ideal(n, t, _random.Random(args.seed + 0x5E7)),
        adversary=adversary,
        seed=args.seed,
        session=f"cli{args.seed}",
        tracer=tracer,
        faults=faults,
    )
    try:
        result = simulator.run(factory, inputs)
    finally:
        if tracer is not None:
            tracer.close()
    print(f"protocol   : {args.protocol} (kappa={args.kappa})")
    print(f"inputs     : {inputs}")
    print(f"corrupted  : {sorted(result.corrupted) or '-'}")
    print(f"outputs    : {result.outputs}")
    print(f"agreement  : {result.honest_agree()}")
    print(f"rounds     : {result.metrics.rounds}")
    print(f"messages   : {result.metrics.total_messages}")
    print(f"signatures : {result.metrics.total_signatures}")
    if faults is not None and simulator.last_fault_counts is not None:
        counts = simulator.last_fault_counts
        print(
            f"faults     : {args.faults} "
            f"(lost={counts.lost} delayed={counts.delayed} "
            f"late={counts.delivered_late} partitioned={counts.partitioned} "
            f"offline={counts.offline} stale={counts.stale})"
        )
    if memory_sink is not None:
        print("\ntranscript:")
        print(memory_sink.render())
    if jsonl_sink is not None:
        print(
            f"\nwrote trace: {args.trace_jsonl} "
            f"({jsonl_sink.events_written} events, "
            f"{jsonl_sink.corruptions_written} corruptions)"
        )
    return 0 if result.honest_agree() else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Replay a streamed JSONL trace through the timeline renderer."""
    from .obs import (
        ObsFormatError,
        diff_traces,
        filter_trace,
        load_trace,
        trace_metrics,
    )

    try:
        loaded = load_trace(args.file)
    except (ObsFormatError, OSError) as error:
        print(f"repro trace: {error}", file=sys.stderr)
        return 2
    if args.diff is not None:
        try:
            other = load_trace(args.diff)
        except (ObsFormatError, OSError) as error:
            print(f"repro trace: {error}", file=sys.stderr)
            return 2
        divergence = diff_traces(loaded, other)
        if divergence is None:
            print(
                f"traces identical: {args.file} == {args.diff} "
                f"({loaded.events} events, {loaded.tracer.rounds} rounds)"
            )
            return 0
        print(f"- {args.file}\n+ {args.diff}")
        print(divergence.render())
        return 1
    tracer = loaded.tracer
    # Validate filters against what the trace actually contains before
    # filtering: a bad --round/--party silently matching nothing would
    # render an empty timeline indistinguishable from a quiet execution.
    if args.round is not None:
        total_rounds = tracer.rounds
        bad = sorted({r for r in args.round if r < 1 or r > total_rounds})
        if bad:
            print(
                f"repro trace: --round value(s) {','.join(map(str, bad))} "
                f"out of range\nusage: --round takes round indices from 1 "
                f"to {total_rounds} (this trace)",
                file=sys.stderr,
            )
            return 2
    if args.party is not None:
        num_parties = loaded.meta.get("n")
        if not isinstance(num_parties, int):
            seen = {event.sender for event in tracer.events}
            seen.update(event.recipient for event in tracer.events)
            seen.update(pid for _, pid in tracer.corruptions)
            num_parties = max(seen, default=-1) + 1
        if not (0 <= args.party < num_parties):
            print(
                f"repro trace: --party {args.party} out of range\n"
                f"usage: --party takes a party id from 0 to "
                f"{num_parties - 1} (this trace)",
                file=sys.stderr,
            )
            return 2
    if args.round is not None or args.party is not None or args.corrupt_only:
        tracer = filter_trace(
            tracer,
            rounds=args.round,
            party=args.party,
            corrupt_only=args.corrupt_only,
        )
    if loaded.meta:
        described = ", ".join(
            f"{key}={value}" for key, value in sorted(loaded.meta.items())
        )
        print(f"trace: {args.file} ({described})\n")
    print(tracer.render(max_payload_width=args.width))
    if args.stats:
        from .obs import metrics_from_trace

        metrics = trace_metrics(tracer)
        rows = []
        for round_index in sorted(metrics.per_round):
            stats = metrics.per_round[round_index]
            rows.append(
                [
                    round_index,
                    stats.honest_messages,
                    stats.corrupt_messages,
                    stats.honest_signatures,
                    stats.corrupt_signatures,
                ]
            )
        # Column headers and counter names below come from the pinned
        # repro-metrics/1 vocabulary (METRIC_NAMES), so `--stats` output
        # cross-references directly against `repro report` tables.
        print("\nper-round tallies (replayed from the trace)\n")
        print(
            format_table(
                ["round", "messages_honest", "messages_corrupt",
                 "signatures_honest", "signatures_corrupt"],
                rows,
            )
        )
        print()
        print(f"{'events':22s}: {len(tracer.events)}")
        print(f"{'corruptions':22s}: {len(tracer.corruptions)}")
        registry = metrics_from_trace(tracer.events, tracer.faults)
        names = sorted({name for name, _ in registry.counters})
        for name in names:
            if name == "round_messages":
                continue  # the per-round table above already shows these
            print(f"{name:22s}: {registry.counter_total(name)}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for kappa in args.kappas:
        rows.append(
            [
                kappa,
                rounds_for_error("ours_one_third", kappa),
                rounds_for_error("feldman_micali", kappa),
                rounds_for_error("ours_one_half", kappa),
                rounds_for_error("micali_vaikuntanathan", kappa),
            ]
        )
    print("rounds to reach error 2^-kappa\n")
    print(
        format_table(
            ["kappa", "ours t<n/3", "FM t<n/3", "ours t<n/2", "MV t<n/2"], rows
        )
    )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    renderers = {
        "table1": lambda: render_table1(3),
        "table2": lambda: render_table2(6),
        "fig3": lambda: render_fig3(10),
    }
    which = list(renderers) if args.which == "all" else [args.which]
    for name in which:
        print(f"── {name} " + "─" * 50)
        print(renderers[name]())
        print()
    return 0


def _cmd_error_sweep(args: argparse.Namespace) -> int:
    if args.protocol == "one_third":
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        inputs = [0, 0, 1, 1]
        adversary_factory = lambda: OneThirdStraddleAdversary([3])
        program = ba_one_third_program
    else:
        setup = ExperimentSetup(num_parties=5, max_faulty=2)
        inputs = [0, 0, 1, 1, 1]
        adversary_factory = lambda: LinearHalfStraddleAdversary([3, 4])
        program = ba_one_half_program
    rows = []
    for kappa in args.kappas:
        factory = lambda c, b, k=kappa: program(c, b, k)
        rate = disagreement_rate(
            run_trials(
                setup, factory, inputs, trials=args.trials,
                adversary_factory=adversary_factory, seed=args.seed + kappa,
            )
        )
        rows.append([kappa, f"{2.0 ** -kappa:.4f}", f"{rate:.4f}"])
    print(
        f"{args.protocol}: disagreement under worst-case straddle attack "
        f"({args.trials} trials)\n"
    )
    print(format_table(["kappa", "bound 2^-k", "measured"], rows))
    return 0


def _build_sweep_plan(
    args: argparse.Namespace,
    trials: Optional[int] = None,
    kappas: Optional[List[int]] = None,
    collect_signatures: bool = False,
):
    """The error-probability sweep as one engine plan (see `bench`).

    ``collect_signatures`` defaults off — disagreement rates don't need
    signature tallies, so the per-payload walk stays off the hot path —
    and is flipped on for the signature-heavy payload-measurement slice.
    """
    from .engine import TrialPlan

    configs = []
    if args.protocol in ("one_third", "both"):
        configs.append(
            ("ba_one_third", (0, 0, 1, 1), 1, "straddle13", {"victims": (3,)})
        )
    if args.protocol in ("one_half", "both"):
        configs.append(
            ("ba_one_half", (0, 0, 1, 1, 1), 2, "straddle12", {"victims": (3, 4)})
        )
    plans = []
    for protocol, inputs, max_faulty, adversary, adversary_params in configs:
        for kappa in kappas if kappas is not None else args.kappas:
            plans.append(
                TrialPlan.monte_carlo(
                    name=f"{protocol}-k{kappa}",
                    protocol=protocol,
                    inputs=inputs,
                    max_faulty=max_faulty,
                    trials=trials if trials is not None else args.trials,
                    params={"kappa": kappa},
                    adversary=adversary,
                    adversary_params=adversary_params,
                    seed=args.seed + kappa,
                    backend=args.backend,
                    rsa_bits=args.rsa_bits,
                    collect_signatures=collect_signatures,
                )
            )
    return TrialPlan.concat(f"error-sweep-{args.protocol}", plans)


def _sweep_bounds(plan, expression: str) -> dict:
    """Per-config target bounds for an error sweep.

    ``expression`` is either the default ``"2**-k"`` / ``"2^-k"`` — the
    paper's Corollary 2 bound, evaluated per config from its κ — or a
    literal float applied to every config.
    """
    bounds = {}
    if expression.replace("^", "**") in ("2**-k", "2**-kappa"):
        for name, indices in plan.configs().items():
            kappa = plan.trials[indices[0]].param_dict["kappa"]
            bounds[name] = 2.0 ** -kappa
        return bounds
    try:
        value = float(expression)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--bound must be '2**-k' or a float, got {expression!r}"
        )
    return {name: value for name in plan.configs()}


def _run_adaptive_leg(
    args: argparse.Namespace, serial, workers: int, telemetry=None
) -> dict:
    """The ``--adaptive`` leg of `bench`: early-stopping vs fixed budget.

    Runs the same sweep through :class:`AdaptiveRunner` with a total
    budget equal to the fixed run's trial count (per-config cap
    ``--max-trials``), checks the accept/reject verdicts agree with the
    fixed-budget run config for config, and returns the JSON payload.
    """
    from .analysis.stats import format_rate
    from .engine import AdaptiveRunner

    cap = args.max_trials or args.trials
    plan = _build_sweep_plan(args, trials=cap)
    bounds = _sweep_bounds(plan, args.bound)
    budget = args.trials * len(plan.configs())
    runner = AdaptiveRunner(
        workers=workers, batch_size=args.batch, telemetry=telemetry
    )
    adaptive = runner.run(plan, bounds, budget=budget)

    # Fixed-budget verdicts: the same classifier fed the full counts.
    fixed_groups = serial.plan.configs()
    rows = []
    matches = True
    for name, outcome in adaptive.configs.items():
        fixed_indices = fixed_groups[name]
        fixed_estimate = runner.estimate_for(name, bounds)
        fixed_hits = sum(
            1
            for index in fixed_indices
            if not serial.results[index].honest_agree()
        )
        fixed_estimate.update(fixed_hits, len(fixed_indices))
        matches = matches and (outcome.accepted == fixed_estimate.accepted)
        rows.append(
            {
                "config": name,
                "bound": outcome.bound,
                "fixed_trials": len(fixed_indices),
                "fixed_rate": format_rate(fixed_hits, len(fixed_indices)),
                "fixed_accepted": fixed_estimate.accepted,
                "adaptive_trials": outcome.executed,
                "adaptive_rate": (
                    format_rate(outcome.hits, outcome.executed)
                    if outcome.executed
                    else None
                ),
                "adaptive_status": outcome.status,
                "adaptive_accepted": outcome.accepted,
                "stopped_early": outcome.stopped_early,
            }
        )

    print(
        f"\nadaptive allocation (budget {budget}, per-config cap {cap}, "
        f"batch {args.batch})\n"
    )
    print(
        format_table(
            ["config", "bound", "fixed n", "adaptive n", "status", "early"],
            [
                [
                    row["config"],
                    f"{row['bound']:.4f}",
                    row["fixed_trials"],
                    row["adaptive_trials"],
                    row["adaptive_status"],
                    "yes" if row["stopped_early"] else "-",
                ]
                for row in rows
            ],
        )
    )
    fixed_total = sum(row["fixed_trials"] for row in rows)
    print()
    print(f"{'adaptive trials spent':32s}: {adaptive.spent:8d} / {fixed_total}")
    print(
        f"{'trials saved':32s}: {fixed_total - adaptive.spent:8d} "
        f"({(fixed_total - adaptive.spent) / fixed_total:.1%})"
    )
    print(
        f"{'adaptive wall time':32s}: {adaptive.wall_seconds:8.3f}s"
    )
    print(
        f"{'verdicts match fixed run':32s}: "
        f"{'      OK' if matches else '    MISMATCH'}"
    )
    return {
        "budget": budget,
        "per_config_cap": cap,
        "batch_size": args.batch,
        "spent": adaptive.spent,
        "fixed_total": fixed_total,
        "saved": fixed_total - adaptive.spent,
        "saved_fraction": round((fixed_total - adaptive.spent) / fixed_total, 4),
        "wall_seconds": round(adaptive.wall_seconds, 4),
        "verdicts_match_fixed": matches,
        "configs": rows,
    }


#: One representative vector-modeled Monte-Carlo plan per migrated
#: benchmark: (figure, protocol, inputs, t, params, adversary,
#: adversary_params).  Every entry must be vector-supported — the
#: ``--figures`` leg exits nonzero if any spec reports a fallback, so a
#: model regression cannot silently demote a published figure to the
#: object simulator.
_FIGURE_PLANS = (
    ("fig1_slot_structure", "prox_one_third", (0, 0, 1, 1), 1,
     {"rounds": 3}, "straddle13", {"victims": (3,)}),
    ("fig2_expansion", "prox_one_third", (0, 0, 1, 1), 1,
     {"rounds": 4}, "two_face", {"victims": (3,)}),
    ("table1_prox5", "prox_linear_half", (1, 0, 1, 0, 1), 2,
     {"rounds": 3}, "bare_straddle12", {"victims": (3, 4)}),
    ("table2_fm_probabilistic", "fm_probabilistic", (1, 0, 1, 0), 1,
     None, None, None),
    ("mv_turpin_coan", "turpin_coan_classic", ("a", "b", "a", "a"), 1,
     {"kappa": 3}, None, None),
    ("mv_multivalued_ba", "multivalued_ba", ("a", "b", "a", "a"), 1,
     {"kappa": 3}, None, None),
    ("coin_threshold_withhold", "threshold_coin", (None,) * 4, 1,
     {"index": 1, "low": 0, "high": 1}, "withhold_coin",
     {"victims": (3,), "index": 1, "low": 0, "high": 1, "preferred": 1}),
    ("coin_vrf_withhold", "vrf_coin", (None,) * 4, 1,
     {"index": 1, "low": 0, "high": 1}, "withhold_coin",
     {"victims": (3,), "index": 1, "low": 0, "high": 1, "preferred": 1}),
    ("gradecast_substitution", "proxcast", ("v",) * 9, 4,
     {"slots": 4, "dealer": 0}, None, None),
    ("slot_growth", "prox_quadratic_half", (1,) * 5, 2,
     {"rounds": 4}, None, None),
    ("crypto_backends", "ba_one_half", (1, 0, 1, 0, 1), 2,
     {"kappa": 4}, None, None),
)


def _run_figures_leg(args: argparse.Namespace) -> dict:
    """The ``--figures`` leg of `bench`: per-benchmark vector speedups.

    Each migrated benchmark contributes one representative Monte-Carlo
    plan (a newly vector-modeled protocol × adversary pair where one
    exists).  The plan runs through both executors; results must be
    bit-identical, no spec may fall back, and the measured object/vector
    wall-time ratio is recorded per figure for ``BENCH_engine.json``.
    """
    from .engine import (
        ParallelRunner,
        TrialPlan,
        TrialSpec,
        clear_probe_cache,
        derive_trial_seed,
        derive_trial_session,
        probe_cache_stats,
    )
    from .engine.vectorized import unsupported_reason

    trials = min(args.trials, 120)
    figures: dict = {}
    rows = []
    for name, protocol, inputs, t, params, adversary, adv_params in _FIGURE_PLANS:
        specs = tuple(
            TrialSpec(
                protocol=protocol,
                inputs=inputs,
                max_faulty=t,
                params=params,
                adversary=adversary,
                adversary_params=adv_params,
                seed=derive_trial_seed(args.seed, trial),
                session=derive_trial_session(args.seed, trial),
            )
            for trial in range(trials)
        )
        fallback_reasons = sorted(
            {
                reason
                for reason in (unsupported_reason(spec) for spec in specs)
                if reason is not None
            }
        )
        plan = TrialPlan(name=f"figure-{name}", trials=specs)
        object_run = ParallelRunner(workers=1).run(plan)
        clear_probe_cache()
        before = probe_cache_stats()
        vector_run = ParallelRunner(workers=1, backend="vector").run(plan)
        after = probe_cache_stats()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        identical = vector_run.results == object_run.results
        speedup = (
            object_run.wall_seconds / vector_run.wall_seconds
            if vector_run.wall_seconds > 0
            else float("inf")
        )
        figures[name] = {
            "protocol": protocol,
            "adversary": adversary,
            "trials": trials,
            "object_seconds": round(object_run.wall_seconds, 4),
            "vector_seconds": round(vector_run.wall_seconds, 4),
            "speedup_vector_vs_object": round(speedup, 3),
            "identical": identical,
            "fallback": len(fallback_reasons),
            "fallback_reasons": fallback_reasons,
            "probe_cache_hits": hits,
            "probe_cache_misses": misses,
        }
        rows.append(
            [
                name,
                f"{protocol} × {adversary or '-'}",
                f"{object_run.wall_seconds:.3f}s",
                f"{vector_run.wall_seconds:.3f}s",
                f"{speedup:.1f}x",
                "OK" if identical else "DIFF",
                len(fallback_reasons) or "-",
            ]
        )
    print(f"\nper-benchmark vector figures ({trials} trials each)\n")
    print(
        format_table(
            ["figure", "pair", "object", "vector", "speedup", "ident", "fb"],
            rows,
        )
    )
    failed = sorted(
        name
        for name, entry in figures.items()
        if entry["fallback"] or not entry["identical"]
    )
    if failed:
        for name in failed:
            entry = figures[name]
            reasons = "; ".join(entry["fallback_reasons"]) or "results differ"
            print(f"FIGURE REGRESSION: {name}: {reasons}")
    return {"figures": figures, "failed": failed}


def _measure_real_setup(plan, workers: int) -> Optional[dict]:
    """Time threshold-RSA dealing for a real-backend plan, two ways.

    ``serial``: each distinct suite dealt one after another, fresh — the
    per-process cost every pool worker used to pay on first touch.
    ``parallel``: :func:`repro.engine.predeal_suites` — deal once in the
    parent (fanning distinct keys across a dealing pool when several are
    missing), then broadcast; what the runners now actually do.  The
    suites stay cached afterwards, so the measured runs that follow
    reuse them.  Returns ``None`` for plans with no real-backend trials.
    """
    import time

    from .engine import clear_suite_cache, deal_suite, predeal_suites

    keys = []
    for spec in plan.trials:
        if spec.backend == "real" and spec.suite_key not in keys:
            keys.append(spec.suite_key)
    if not keys:
        return None
    clear_suite_cache()
    started = time.perf_counter()
    for key in keys:
        deal_suite(key)
    serial_seconds = time.perf_counter() - started
    clear_suite_cache()
    started = time.perf_counter()
    predeal_suites(plan, workers)
    parallel_seconds = time.perf_counter() - started
    return {
        "suites": len(keys),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
    }


def _measure_payloads(args: argparse.Namespace, workers: int) -> dict:
    """Size both wire formats on a signature-heavy slice of the sweep.

    The rate sweep itself runs with signature collection off (tallies
    are dead weight there), so the payload comparison runs the max-κ
    configs with ``collect_signatures=True`` — the metrics-dominated
    payload shape the compact transport exists for — chunked exactly as
    a pool at ``workers`` processes would ship them.
    """
    from .engine import ParallelRunner, measure_payload_bytes

    plan = _build_sweep_plan(
        args,
        trials=min(args.trials, 100),
        kappas=[max(args.kappas)],
        collect_signatures=True,
    )
    results = ParallelRunner(workers=1).run(plan).results
    chunk_size = max(1, len(plan) // (max(workers, 2) * 4))
    full, compact = measure_payload_bytes(
        list(enumerate(results)), chunk_size=chunk_size
    )
    return {
        "plan": plan.describe(),
        "chunk_size": chunk_size,
        "payload_bytes_full": full,
        "payload_bytes_compact": compact,
        "payload_reduction": round(full / compact, 3),
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from .crypto.ideal import set_tag_memoization
    from .engine import ParallelRunner, clamp_workers

    plan = _build_sweep_plan(args)
    per_config = args.trials
    if not len(plan):
        print("nothing to run: --kappas is empty")
        return 2

    requested = args.workers
    workers = clamp_workers(requested)
    clamped = requested is not None and workers != requested
    if clamped:
        print(
            f"workers: requested {requested}, clamped to {workers} "
            f"(cpu_count={os.cpu_count()})"
            + ("; parallel leg skipped, serial path only" if workers == 1 else "")
        )
    elif requested is None:
        print(f"workers: auto -> {workers} (cpu_count={os.cpu_count()})")

    telemetry = None
    telemetry_path = None
    if args.telemetry:
        from .obs import TelemetryWriter

        os.makedirs(args.telemetry, exist_ok=True)
        telemetry_path = os.path.join(args.telemetry, "telemetry.jsonl")
        telemetry = TelemetryWriter(
            telemetry_path,
            meta={
                "plan": plan.describe(),
                "trials_per_config": per_config,
                "workers": workers,
                "backend": args.backend,
            },
        )

    setup_timing = _measure_real_setup(plan, workers)
    if telemetry is not None and setup_timing is not None:
        telemetry.emit("real_setup", **setup_timing)
    serial = ParallelRunner(workers=1, telemetry=telemetry).run(plan)
    parallel = None
    if workers > 1:
        parallel = ParallelRunner(workers=workers, telemetry=telemetry).run(plan)
        if parallel.results != serial.results:
            print("DETERMINISM VIOLATION: parallel results differ from serial")
            return 2
    vector = None
    if args.vector:
        vector = ParallelRunner(
            workers=1, backend="vector", telemetry=telemetry
        ).run(plan)
        if vector.results != serial.results:
            print("DETERMINISM VIOLATION: vector results differ from object")
            return 2

    baseline = None
    if args.compare_baseline:
        # Pre-optimization reference: legacy per-message signature walk,
        # tag memoization off — what every run cost before the engine.
        previous = set_tag_memoization(False)
        try:
            baseline = ParallelRunner(workers=1, legacy_metrics=True).run(plan)
        finally:
            set_tag_memoization(previous)

    metrics_leg = None
    if args.metrics:
        # Dedicated serial collection leg: metrics hooks are opt-in and
        # not free, so they never run inside the timed legs above — the
        # serial/parallel/vector rates stay comparable across runs with
        # and without --metrics.
        from .obs import write_metrics_artifact

        metrics_leg = ParallelRunner(workers=1, metrics=True).run(plan)
        if metrics_leg.results != serial.results:
            print("DETERMINISM VIOLATION: metrics leg differs from serial")
            return 2
        write_metrics_artifact(args.metrics, metrics_leg.metrics_payload())

    profile_leg = None
    if args.profile:
        # One extra profiled leg (pooled when workers allow, so the
        # dumps cover the worker chunks), again outside the timed legs:
        # cProfile overhead must not leak into --compare rates.
        profile_leg = ParallelRunner(
            workers=workers, profile_dir=args.profile, telemetry=telemetry
        ).run(plan)
        if profile_leg.results != serial.results:
            print("DETERMINISM VIOLATION: profiled leg differs from serial")
            return 2

    rows = []
    for start in range(0, len(plan), per_config):
        specs = plan.trials[start : start + per_config]
        results = serial.results[start : start + per_config]
        kappa = specs[0].param_dict["kappa"]
        failures = sum(1 for result in results if not result.honest_agree())
        rows.append(
            [
                specs[0].protocol,
                kappa,
                f"{2.0 ** -kappa:.4f}",
                f"{failures / len(results):.4f}",
            ]
        )
    print(
        f"error-probability sweep through the engine "
        f"({len(plan)} trials, {per_config} per config)\n"
    )
    print(format_table(["protocol", "kappa", "bound 2^-k", "measured"], rows))

    timings = [("engine serial (1 worker)", serial.wall_seconds)]
    if parallel is not None:
        timings.append(
            (f"engine parallel ({workers} workers)", parallel.wall_seconds)
        )
    if vector is not None:
        timings.append(("engine vector (1 worker)", vector.wall_seconds))
    if baseline is not None:
        timings.insert(0, ("pre-engine baseline (serial)", baseline.wall_seconds))
    print()
    for label, seconds in timings:
        print(f"{label:32s}: {seconds:8.3f}s")
    if parallel is not None:
        print(
            f"{'parallel vs serial':32s}: "
            f"{serial.wall_seconds / parallel.wall_seconds:8.2f}x"
        )
    if vector is not None:
        print(
            f"{'vector vs object (per core)':32s}: "
            f"{serial.wall_seconds / vector.wall_seconds:8.2f}x"
        )
        print(f"{'vector == object':32s}:       OK (bit-identical)")
    if baseline is not None:
        best = min(serial.wall_seconds, parallel.wall_seconds if parallel else serial.wall_seconds)
        print(f"{'best vs baseline':32s}: {baseline.wall_seconds / best:8.2f}x")
    if parallel is not None and parallel.results == serial.results:
        print(f"{'serial == parallel':32s}:       OK (bit-identical)")
    if setup_timing is not None:
        print(
            f"{'real setup serial':32s}: "
            f"{setup_timing['serial_seconds']:8.3f}s "
            f"({setup_timing['suites']} suites, dealt one by one)"
        )
        print(
            f"{'real setup pre-dealt':32s}: "
            f"{setup_timing['parallel_seconds']:8.3f}s "
            f"(once per run, broadcast to workers)"
        )

    payloads = _measure_payloads(args, workers)
    print(
        f"{'payload full pickle':32s}: {payloads['payload_bytes_full']:8d} B"
    )
    print(
        f"{'payload compact':32s}: {payloads['payload_bytes_compact']:8d} B "
        f"({payloads['payload_reduction']:.2f}x smaller, "
        f"signature-heavy k={max(args.kappas)} slice)"
    )

    if metrics_leg is not None:
        from .obs import METRICS_SCHEMA

        print(f"{'metrics artifact':32s}: {args.metrics} ({METRICS_SCHEMA})")
    if profile_leg is not None:
        print(
            f"{'profile dumps':32s}: {args.profile} "
            f"(profiled leg {profile_leg.wall_seconds:8.3f}s, "
            f"{workers} worker{'s' if workers > 1 else ''})"
        )

    adaptive_payload = None
    if args.adaptive:
        adaptive_payload = _run_adaptive_leg(args, serial, workers, telemetry)

    figures_payload = None
    if args.figures:
        figures_payload = _run_figures_leg(args)

    telemetry_summary = None
    if telemetry is not None:
        from .obs import summarize_telemetry

        telemetry.emit(
            "bench_complete",
            serial_seconds=round(serial.wall_seconds, 4),
            parallel_seconds=(
                round(parallel.wall_seconds, 4) if parallel else None
            ),
            vector_seconds=(
                round(vector.wall_seconds, 4) if vector else None
            ),
        )
        telemetry.close()
        telemetry_summary = summarize_telemetry(telemetry_path)
        print()
        print(
            f"{'telemetry':32s}: {telemetry_path} "
            f"({telemetry_summary['records']} records, "
            f"{telemetry_summary['chunks']} chunk spans)"
        )
        for run in telemetry_summary["runs"]:
            if run.get("utilization") is not None:
                print(
                    f"{'  ' + run['label'][:28] + ' util':32s}: "
                    f"{run['utilization']:8.0%} "
                    f"({run['chunks']} chunks, "
                    f"busy {run['busy_seconds']:.3f}s / "
                    f"wall {run['wall_seconds']:.3f}s x "
                    f"{run['workers']} workers)"
                )
        cache_hits = telemetry_summary.get("probe_cache_hits", 0)
        cache_misses = telemetry_summary.get("probe_cache_misses", 0)
        if cache_hits or cache_misses:
            print(
                f"{'probe cache (vector legs)':32s}: "
                f"{cache_hits:8d} hits / {cache_misses} misses "
                f"({cache_hits / (cache_hits + cache_misses):.0%} hit rate)"
            )
        if telemetry_summary.get("fallback_reasons"):
            for reason, count in sorted(
                telemetry_summary["fallback_reasons"].items()
            ):
                print(f"{'  vector fallback':32s}: {count:8d} x {reason}")
        print(
            f"{'telemetry spans consistent':32s}: "
            f"{'      OK' if telemetry_summary['consistent'] else '    MISMATCH'}"
        )

    if args.json or args.compare:
        payload = {
            "schema": "repro-bench/1",
            "plan": plan.describe(),
            "trials_per_config": per_config,
            "kappas": list(args.kappas),
            "backend": args.backend,
            "rsa_bits": args.rsa_bits,
            "workers": workers,
            "workers_requested": requested,
            "workers_clamped": clamped,
            "cpu_count": os.cpu_count(),
            "transport": "compact",
            "chunk_size": parallel.chunk_size if parallel else None,
            "serial_seconds": round(serial.wall_seconds, 4),
            "parallel_seconds": (
                round(parallel.wall_seconds, 4) if parallel else None
            ),
            "speedup_parallel_vs_serial": (
                round(serial.wall_seconds / parallel.wall_seconds, 3)
                if parallel
                else None
            ),
            "vector_seconds": (
                round(vector.wall_seconds, 4) if vector else None
            ),
            "speedup_vector_vs_object": (
                round(serial.wall_seconds / vector.wall_seconds, 3)
                if vector
                else None
            ),
            "identical_vector_object": (
                vector.results == serial.results if vector else None
            ),
            "baseline_seconds": (
                round(baseline.wall_seconds, 4) if baseline else None
            ),
            "speedup_vs_baseline": (
                round(
                    baseline.wall_seconds
                    / min(
                        serial.wall_seconds,
                        parallel.wall_seconds if parallel else serial.wall_seconds,
                    ),
                    3,
                )
                if baseline
                else None
            ),
            "identical_serial_parallel": (
                parallel.results == serial.results if parallel else None
            ),
            "payload_bytes_full": payloads["payload_bytes_full"],
            "payload_bytes_compact": payloads["payload_bytes_compact"],
            "payload_reduction": payloads["payload_reduction"],
            "payload_plan": payloads["plan"],
            "payload_chunk_size": payloads["chunk_size"],
            "real_setup_serial_seconds": (
                setup_timing["serial_seconds"] if setup_timing else None
            ),
            "real_setup_parallel_seconds": (
                setup_timing["parallel_seconds"] if setup_timing else None
            ),
            "real_setup_suites": (
                setup_timing["suites"] if setup_timing else None
            ),
            "rates": [
                {
                    "protocol": row[0],
                    "kappa": row[1],
                    "bound": float(row[2]),
                    "measured": float(row[3]),
                }
                for row in rows
            ],
            "adaptive": adaptive_payload,
            "figures": (
                figures_payload["figures"] if figures_payload else None
            ),
            "telemetry": (
                {
                    "path": telemetry_path,
                    "records": telemetry_summary["records"],
                    "chunks": telemetry_summary["chunks"],
                    "busy_seconds": round(
                        telemetry_summary["busy_seconds"], 4
                    ),
                    "payload_bytes": telemetry_summary["payload_bytes"],
                    "consistent": telemetry_summary["consistent"],
                    "probe_cache": {
                        "hits": telemetry_summary.get("probe_cache_hits", 0),
                        "misses": telemetry_summary.get(
                            "probe_cache_misses", 0
                        ),
                        "hit_rate": (
                            round(
                                telemetry_summary["probe_cache_hits"]
                                / (
                                    telemetry_summary["probe_cache_hits"]
                                    + telemetry_summary["probe_cache_misses"]
                                ),
                                4,
                            )
                            if telemetry_summary.get("probe_cache_hits", 0)
                            + telemetry_summary.get("probe_cache_misses", 0)
                            else None
                        ),
                    },
                    "fallback_reasons": telemetry_summary.get(
                        "fallback_reasons", {}
                    ),
                }
                if telemetry_summary is not None
                else None
            ),
        }
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"\nwrote {args.json}")
    regression = False
    if args.compare:
        from .analysis.benchdiff import (
            compare_benchmarks,
            format_bench_report,
            load_bench,
        )

        report = compare_benchmarks(
            load_bench(args.compare), payload, threshold=args.threshold
        )
        report["baseline_path"] = args.compare
        report["candidate_path"] = "(this run)"
        print()
        print(format_bench_report(report))
        regression = not report["ok"]
    if adaptive_payload is not None and not adaptive_payload["verdicts_match_fixed"]:
        return 2
    if figures_payload is not None and figures_payload["failed"]:
        return 2
    if telemetry_summary is not None and not telemetry_summary["consistent"]:
        print("TELEMETRY MISMATCH: spans do not sum consistently with wall time")
        return 2
    if regression:
        return 3
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Fuse run artifacts into one deterministic markdown/HTML report."""
    from .obs import (
        ObsFormatError,
        build_report,
        check_report,
        load_report_inputs,
        render_html,
    )

    if not (args.metrics or args.telemetry or args.bench or args.profile):
        print(
            "repro report: nothing to report\nusage: pass at least one of "
            "--metrics/--telemetry/--bench/--profile",
            file=sys.stderr,
        )
        return 2
    try:
        inputs = load_report_inputs(
            metrics_path=args.metrics,
            telemetry_path=args.telemetry,
            bench_paths=args.bench or [],
            profile_dir=args.profile,
            top=args.top,
        )
    except (ObsFormatError, OSError, ValueError) as error:
        print(f"repro report: {error}", file=sys.stderr)
        return 2
    if args.check:
        # Gate before rendering: a report built from malformed inputs
        # must not be published at all, not published-with-caveats.
        violations = check_report(
            metrics=inputs["metrics"],
            telemetry=inputs["telemetry"],
            benches=inputs["benches"],
        )
        if violations:
            for violation in violations:
                print(f"repro report: {violation}", file=sys.stderr)
            return 2
    markdown = build_report(
        metrics=inputs["metrics"],
        telemetry=inputs["telemetry"],
        benches=inputs["benches"],
        profile=inputs["profile"],
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown, end="")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(markdown))
        print(f"wrote {args.html}")
    if args.check:
        print("report inputs: OK (schemas valid, telemetry consistent)")
    return 0


def _parse_rule_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _default_check_root() -> str:
    """The package's own source tree — works from any cwd."""
    import os

    return os.path.dirname(os.path.abspath(__file__))


def _write_check_artifact(path: str, payload: str) -> Optional[str]:
    """Write a report artifact; return an error message instead of raising."""
    try:
        with open(path, "w") as handle:
            handle.write(payload)
    except OSError as error:
        return f"cannot write {path}: {error.strerror or error}"
    return None


def _cmd_check(args: argparse.Namespace) -> int:
    from .checks import (
        CheckError,
        all_rule_classes,
        fix_tree,
        load_baseline,
        run_check,
    )

    if args.list_rules:
        for cls in all_rule_classes():
            print(f"{cls.id}  {cls.title}")
            if cls.hint:
                print(f"        fix: {cls.hint}")
        return 0
    root = args.path or _default_check_root()
    try:
        baseline = load_baseline(args.baseline) if args.baseline else None
        if args.diff:
            result = fix_tree(
                root, select=args.select, ignore=args.ignore, write=False
            )
            for diff in result.diffs:
                print(diff, end="")
            print(
                f"--diff: {result.applied} fix(es) in "
                f"{len(result.changed_files)} file(s) would be applied "
                "(tree untouched)"
            )
            return 0
        if args.fix:
            result = fix_tree(root, select=args.select, ignore=args.ignore)
            print(
                f"--fix: applied {result.applied} fix(es) in "
                f"{len(result.changed_files)} file(s)"
                + (
                    ": " + ", ".join(result.changed_files)
                    if result.changed_files
                    else ""
                )
            )
            report = run_check(
                root, select=args.select, ignore=args.ignore, baseline=baseline
            )
        else:
            report = run_check(
                root, select=args.select, ignore=args.ignore, baseline=baseline
            )
    except CheckError as error:
        print(f"repro check: {error}", file=sys.stderr)
        return 2
    print(report.render())
    for path, payload in (
        (args.json, report.to_json()),
        (args.sarif, report.to_sarif()),
    ):
        if not path:
            continue
        problem = _write_check_artifact(path, payload)
        if problem is not None:
            print(f"repro check: {problem}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .applications.ledger import NO_OP, replicated_log_program, rounds_per_slot

    queues = [queue.split("+") if queue else [] for queue in args.queues.split(";")]
    n = len(queues)
    program = lambda ctx, cmds: replicated_log_program(
        ctx, cmds, num_slots=args.slots, kappa=args.kappa,
        regime=args.regime, proposer=args.proposer,
    )
    import random as _random

    simulator = SyncSimulator(
        num_parties=n,
        max_faulty=args.t,
        crypto=CryptoSuite.ideal(n, args.t, _random.Random(args.seed + 0x1ED6)),
        seed=args.seed,
        session=f"ledger{args.seed}",
    )
    result = simulator.run(program, queues)
    per_slot = rounds_per_slot(args.kappa, args.regime, args.proposer)
    print(f"replicas : {n} (t = {args.t}), {args.slots} slots x {per_slot} rounds")
    reference = None
    for pid in sorted(result.outputs):
        log = [c if c != NO_OP else "<no-op>" for c in result.outputs[pid]]
        print(f"replica {pid}: {log}")
        reference = reference if reference is not None else log
    forked = any(
        result.outputs[pid] != result.outputs[result.honest_parties[0]]
        for pid in result.honest_parties
    )
    print(f"forked   : {forked}")
    return 1 if forked else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Round-efficient Byzantine Agreement via Proxcensus "
        "(Fitzi, Liu-Zhang, Loss; PODC 2021) — executable reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute one protocol")
    run_parser.add_argument(
        "--protocol",
        choices=list(PROTOCOLS) + ["dolev_strong"],
        default="one_third",
    )
    run_parser.add_argument("--kappa", type=int, default=8)
    run_parser.add_argument(
        "--inputs", type=_parse_int_list, default=[1, 0, 1, 0],
        help="comma-separated bits, one per party",
    )
    run_parser.add_argument("--t", type=int, default=1, help="corruption budget")
    run_parser.add_argument(
        "--adversary",
        choices=["none", "crash", "malformed", "two_face", "straddle",
                 "straddle13", "straddle12"],
        default="none",
    )
    run_parser.add_argument(
        "--victims", type=_parse_int_list, default=None,
        help="corrupted party ids (default: the last t parties)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--faults", default=None, metavar="SCENARIO",
        help="fault-injection scenario (a repro.engine registry name, "
        "e.g. lossy, delaying, partitioned, crash_recover)",
    )
    run_parser.add_argument(
        "--fault-params", default=None, metavar="JSON",
        help='scenario params as JSON, e.g. \'{"rate": 0.2}\'',
    )
    run_parser.add_argument("--trace", action="store_true")
    run_parser.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="also stream the trace to a schema-versioned JSONL file "
        "(replay it with `repro trace PATH`)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    trace_parser = subparsers.add_parser(
        "trace", help="replay a streamed JSONL trace as a round timeline"
    )
    trace_parser.add_argument("file", help="a .trace.jsonl file to replay")
    trace_parser.add_argument(
        "--round", type=_parse_int_list, default=None, metavar="R[,R...]",
        help="show only these round indices",
    )
    trace_parser.add_argument(
        "--party", type=int, default=None, metavar="PID",
        help="show only events this party sent or received",
    )
    trace_parser.add_argument(
        "--corrupt-only", action="store_true",
        help="show only messages from corrupted senders",
    )
    trace_parser.add_argument(
        "--stats", action="store_true",
        help="append per-round message/signature tallies",
    )
    trace_parser.add_argument(
        "--width", type=_positive_int, default=60, metavar="COLS",
        help="max payload summary width in the timeline",
    )
    trace_parser.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="compare against a second trace file round by round; "
        "exit 1 at the first divergence",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    compare_parser = subparsers.add_parser(
        "compare", help="the §3.5 efficiency comparison"
    )
    compare_parser.add_argument(
        "--kappas", type=_parse_int_list, default=[4, 8, 16, 32]
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    tables_parser = subparsers.add_parser(
        "tables", help="regenerate the paper's tables/figures"
    )
    tables_parser.add_argument(
        "--which", choices=["table1", "table2", "fig3", "all"], default="all"
    )
    tables_parser.set_defaults(handler=_cmd_tables)

    sweep_parser = subparsers.add_parser(
        "error-sweep", help="Monte-Carlo failure rates vs 2^-kappa"
    )
    sweep_parser.add_argument(
        "--protocol", choices=["one_third", "one_half"], default="one_third"
    )
    sweep_parser.add_argument("--kappas", type=_parse_int_list, default=[1, 2, 4])
    sweep_parser.add_argument("--trials", type=int, default=100)
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.set_defaults(handler=_cmd_error_sweep)

    bench_parser = subparsers.add_parser(
        "bench",
        help="error-probability sweep through the parallel experiment engine",
    )
    bench_parser.add_argument(
        "--protocol", choices=["one_third", "one_half", "both"], default="both"
    )
    bench_parser.add_argument(
        "--kappas", type=_parse_int_list, default=[1, 2, 4, 6, 8]
    )
    bench_parser.add_argument("--trials", type=_positive_int, default=300)
    bench_parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="process count for the parallel leg (1 = serial only; "
        "default: auto, clamped to os.cpu_count())",
    )
    bench_parser.add_argument(
        "--backend", choices=["ideal", "real"], default="ideal",
        help="crypto backend for the sweep: 'real' deals threshold-RSA "
        "keys (pre-dealt once and broadcast to workers)",
    )
    bench_parser.add_argument(
        "--rsa-bits", type=int, default=256, metavar="BITS",
        help="modulus size for --backend real (>= 64; small values keep "
        "smoke runs fast)",
    )
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write machine-readable timings/rates (BENCH_engine.json)",
    )
    bench_parser.add_argument(
        "--compare-baseline", action="store_true",
        help="also time the pre-optimization serial path "
        "(reference signature walk, tag memoization off)",
    )
    bench_parser.add_argument(
        "--adaptive", action="store_true",
        help="also run the sweep through AdaptiveRunner (early stopping + "
        "budget reallocation) and check its verdicts against the fixed run",
    )
    bench_parser.add_argument(
        "--bound", default="2**-k", metavar="EXPR",
        help="per-config target bound: '2**-k' (Corollary 2, default) "
        "or a literal float",
    )
    bench_parser.add_argument(
        "--max-trials", type=_positive_int, default=None, metavar="N",
        help="adaptive per-config trial cap (default: --trials); raise it "
        "to let freed budget deepen the noisiest configs",
    )
    bench_parser.add_argument(
        "--batch", type=_positive_int, default=25,
        help="adaptive allocation batch size per config per round",
    )
    bench_parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write engine telemetry (chunk/worker/setup spans, adaptive "
        "decisions) to DIR/telemetry.jsonl and check span consistency",
    )
    bench_parser.add_argument(
        "--vector", action="store_true",
        help="also time the batch-vectorized backend (serial, numpy "
        "lockstep) and check it is bit-identical to the object path",
    )
    bench_parser.add_argument(
        "--figures", action="store_true",
        help="also time a representative vector-modeled plan per migrated "
        "benchmark (object vs vector, bit-identity checked); exit 2 if a "
        "vector-supported figure plan falls back to the object simulator",
    )
    bench_parser.add_argument(
        "--compare", default=None, metavar="PATH",
        help="diff this run's per-core rates against a committed "
        "BENCH_engine.json; exit 3 on a regression past --threshold",
    )
    bench_parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="--compare regression tolerance as a rate-loss fraction "
        "(default 0.25 = fail when >25%% slower per core)",
    )
    bench_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="run a dedicated serial metrics-collection leg (never timed "
        "into the serial rate) and write the repro-metrics/1 artifact to "
        "PATH; digest with `repro report --metrics PATH`",
    )
    bench_parser.add_argument(
        "--profile", default=None, metavar="DIR",
        help="run one extra cProfile-wrapped leg (pooled when --workers "
        "allows) writing per-chunk .pstats dumps to DIR, outside the "
        "timed legs; digest with `repro report --profile DIR`",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    report_parser = subparsers.add_parser(
        "report",
        help="fuse metrics/telemetry/bench/profile artifacts into one "
        "deterministic markdown report",
    )
    report_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="repro-metrics/1 JSON artifact (from `repro bench --metrics`)",
    )
    report_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="telemetry JSONL file, or the directory holding telemetry.jsonl",
    )
    report_parser.add_argument(
        "--bench", action="append", default=None, metavar="PATH",
        help="BENCH_*.json timing payload (repeatable)",
    )
    report_parser.add_argument(
        "--profile", default=None, metavar="DIR",
        help="directory of cProfile .pstats dumps (from `repro bench "
        "--profile`)",
    )
    report_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the markdown report to PATH instead of stdout",
    )
    report_parser.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write a minimal self-contained HTML rendering",
    )
    report_parser.add_argument(
        "--top", type=_positive_int, default=10, metavar="N",
        help="hot functions listed from the profile (default 10)",
    )
    report_parser.add_argument(
        "--check", action="store_true",
        help="validate every input against its declared schema and the "
        "telemetry consistency verdict; exit 2 on violation",
    )
    report_parser.set_defaults(handler=_cmd_report)

    check_parser = subparsers.add_parser(
        "check",
        help="static analysis: determinism/layering/serialization invariants",
    )
    check_parser.add_argument(
        "path", nargs="?", default=None,
        help="package root to scan (default: the installed repro package)",
    )
    check_parser.add_argument(
        "--select", type=_parse_rule_list, default=None, metavar="RULES",
        help="run only these rule ids or families (e.g. DET,LAY201)",
    )
    check_parser.add_argument(
        "--ignore", type=_parse_rule_list, default=None, metavar="RULES",
        help="skip these rule ids or families",
    )
    check_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable report (CI artifact)",
    )
    check_parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write a SARIF 2.1.0 report (CI PR annotations)",
    )
    check_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="demote findings listed in this baseline file to "
        "non-failing (incremental adoption)",
    )
    check_parser.add_argument(
        "--fix", action="store_true",
        help="apply the whitelisted mechanical fixes (DET104/DET106/"
        "SUP901) in place, then re-check",
    )
    check_parser.add_argument(
        "--diff", action="store_true",
        help="print the unified diff --fix would apply, without "
        "writing anything",
    )
    check_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    check_parser.set_defaults(handler=_cmd_check)

    ledger_parser = subparsers.add_parser(
        "ledger", help="replicated log over sequential multivalued BA"
    )
    ledger_parser.add_argument(
        "--queues", default="a+b;a+c;a+b;a+c",
        help="per-replica command queues: ';' separates replicas, "
        "'+' separates commands",
    )
    ledger_parser.add_argument("--slots", type=int, default=2)
    ledger_parser.add_argument("--kappa", type=int, default=8)
    ledger_parser.add_argument(
        "--regime", choices=["one_third", "one_half"], default="one_third"
    )
    ledger_parser.add_argument(
        "--proposer", choices=["local", "rotating"], default="rotating"
    )
    ledger_parser.add_argument("--t", type=int, default=1)
    ledger_parser.add_argument("--seed", type=int, default=0)
    ledger_parser.set_defaults(handler=_cmd_ledger)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Ergonomics contract (pinned by ``tests/test_cli.py``): a bare
    ``repro`` prints the subcommand overview and exits 2; an unknown
    subcommand exits 2 with the available set in the error message
    (argparse's invalid-choice behavior, relied upon deliberately).
    """
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        parser.print_help(sys.stderr)
        return 2
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
