"""Engine telemetry: structured scheduling spans as JSONL.

Where trace sinks record what the *protocol* did, telemetry records what
the *engine* did: chunk dispatch/complete spans with wall time, worker
utilization, transport payload bytes, threshold-RSA setup timings and
the adaptive allocator's per-round decisions.  This is the one place in
the repository allowed to read wall clocks during a run — it lives in
the ``obs`` layer precisely so DET101 keeps banning ``time`` from the
protocol layers.

File shape mirrors the trace format (see ``docs/observability.md``):
a schema header, one ``{"t": "<event>", "at": seconds, ...}`` object per
line stamped with seconds since the writer was opened, and an ``end``
footer with the record count.  :func:`summarize_telemetry` digests a
file back into totals and checks the spans are mutually consistent —
busy-time must fit inside pool capacity, no chunk span may exceed its
run's wall time — which is what ``repro bench --telemetry`` asserts.
"""

from __future__ import annotations

import json
import time
import warnings
from typing import IO, Any, Dict, List, Mapping, Optional

from .sinks import ObsFormatError, _dump

__all__ = [
    "TELEMETRY_SCHEMA",
    "TELEMETRY_EVENT_TYPES",
    "TelemetryWriter",
    "summarize_telemetry",
]

TELEMETRY_SCHEMA = "repro-telemetry/1"

#: Every span name the engine may ``emit()`` plus the header/footer
#: discriminators.  ``summarize_telemetry`` switches on these; ``repro
#: check`` (OBS602) pins every ``.emit("<name>", ...)`` literal to this
#: set so unknown spans cannot silently vanish from digests.
TELEMETRY_EVENT_TYPES = frozenset(
    {
        "telemetry", "run_start", "run_complete", "chunk_dispatch",
        "chunk_complete", "predeal", "adaptive_round", "adaptive_complete",
        "probe_cache", "vector_batch", "real_setup", "bench_complete",
        "profile", "end",
    }
)

#: Tolerance for span-consistency checks: perf_counter deltas taken at
#: slightly different instants legitimately disagree by scheduling
#: jitter, so sums compare with 5% headroom plus a small absolute floor.
_SLACK = 1.05
_FLOOR = 0.05


class TelemetryWriter:
    """Append engine events to a JSONL file, stamped with elapsed time."""

    def __init__(self, path: str, meta: Optional[Mapping[str, Any]] = None) -> None:
        self.path = path
        self.records_written = 0
        self._origin = time.perf_counter()
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        header: dict = {"t": "telemetry", "schema": TELEMETRY_SCHEMA}
        if meta:
            header["meta"] = dict(meta)
        self._handle.write(_dump(header) + "\n")

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event record; ``at`` is seconds since writer open."""
        if self._handle is None:
            raise ValueError(f"telemetry writer {self.path!r} is closed")
        record = {"t": event, "at": self.elapsed(), **fields}
        self._handle.write(_dump(record) + "\n")
        self.records_written += 1

    def elapsed(self) -> float:
        return round(time.perf_counter() - self._origin, 6)

    def close(self) -> None:
        if self._handle is None:
            return
        self._handle.write(
            _dump({"t": "end", "records": self.records_written}) + "\n"
        )
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _load_records(path: str) -> List[Dict[str, Any]]:
    """Read one telemetry file, strictly (header, schema, footer)."""
    records: List[Dict[str, Any]] = []
    saw_header = False
    saw_footer = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObsFormatError(
                    f"{path}:{lineno}: not valid JSON ({error.msg})"
                ) from None
            if not isinstance(record, dict) or "t" not in record:
                raise ObsFormatError(
                    f"{path}:{lineno}: expected an object with a 't' field"
                )
            if not saw_header:
                if record["t"] != "telemetry":
                    raise ObsFormatError(
                        f"{path}:{lineno}: first record must be the "
                        f"'telemetry' header, got {record['t']!r}"
                    )
                if record.get("schema") != TELEMETRY_SCHEMA:
                    raise ObsFormatError(
                        f"{path}:{lineno}: schema {record.get('schema')!r} "
                        f"is not {TELEMETRY_SCHEMA!r}"
                    )
                records.append(record)
                saw_header = True
                continue
            if saw_footer:
                raise ObsFormatError(
                    f"{path}:{lineno}: record after the end footer"
                )
            if record["t"] == "end":
                if record.get("records") != len(records) - 1:
                    raise ObsFormatError(
                        f"{path}:{lineno}: footer count {record.get('records')} "
                        f"disagrees with {len(records) - 1} records read"
                    )
                saw_footer = True
                continue
            records.append(record)
    if not saw_header:
        raise ObsFormatError(f"{path}: empty file (no telemetry header)")
    if not saw_footer:
        raise ObsFormatError(f"{path}: no end footer — telemetry truncated")
    return records


def summarize_telemetry(path: str) -> Dict[str, Any]:
    """Digest one telemetry file into totals plus a consistency verdict.

    Returns chunk counts, summed busy seconds, payload bytes, per-run
    wall times and a ``consistent`` flag: the spans cross-check iff

    * summed chunk busy-time fits inside every pooled run's
      ``wall × workers`` capacity (you cannot be busier than the pool);
    * no single chunk span exceeds its run's wall time;
    * utilization is therefore a meaningful 0..1 fraction.
    """
    records = _load_records(path)
    runs: List[Dict[str, Any]] = []
    chunk_opened: Dict[Any, float] = {}
    current: Optional[Dict[str, Any]] = None
    totals = {
        "chunks": 0,
        "busy_seconds": 0.0,
        "payload_bytes": 0,
        "trials": 0,
        "setup_seconds": 0.0,
        "adaptive_rounds": 0,
        "probe_cache_hits": 0,
        "probe_cache_misses": 0,
        "profile_seconds": 0.0,
    }
    fallback_reasons: Dict[str, int] = {}
    unknown_types: Dict[str, int] = {}
    profiles: List[str] = []
    for record in records[1:]:
        kind = record["t"]
        if kind not in TELEMETRY_EVENT_TYPES:
            # A file written by a newer engine may carry span types this
            # reader has never heard of.  Losing the rest of the digest
            # over one of them would make telemetry files forward-
            # incompatible, so unknown spans are counted and skipped —
            # loudly, because a silent skip is how numbers go missing.
            unknown_types[kind] = unknown_types.get(kind, 0) + 1
            continue
        if kind == "run_start":
            current = {
                "label": record.get("label", ""),
                "mode": record.get("mode", ""),
                "workers": record.get("workers", 1),
                "started": record["at"],
                "wall_seconds": None,
                "chunks": 0,
                "busy_seconds": 0.0,
            }
            runs.append(current)
        elif kind == "run_complete" and current is not None:
            current["wall_seconds"] = round(record["at"] - current["started"], 6)
        elif kind == "chunk_dispatch":
            chunk_opened[record.get("chunk")] = record["at"]
            totals["trials"] += record.get("trials", 0)
        elif kind == "chunk_complete":
            seconds = record.get("seconds")
            if seconds is None:
                opened = chunk_opened.get(record.get("chunk"), record["at"])
                seconds = record["at"] - opened
            totals["chunks"] += 1
            totals["busy_seconds"] += seconds
            totals["payload_bytes"] += record.get("payload_bytes", 0)
            if current is not None:
                current["chunks"] += 1
                current["busy_seconds"] += seconds
        elif kind == "predeal":
            totals["setup_seconds"] += record.get("seconds", 0.0)
        elif kind == "adaptive_round":
            totals["adaptive_rounds"] += 1
        elif kind == "probe_cache":
            totals["probe_cache_hits"] += record.get("hits", 0)
            totals["probe_cache_misses"] += record.get("misses", 0)
        elif kind == "vector_batch":
            for reason, count in (record.get("fallback_reasons") or {}).items():
                fallback_reasons[reason] = fallback_reasons.get(reason, 0) + int(
                    count
                )
        elif kind == "profile":
            totals["profile_seconds"] += record.get("seconds", 0.0)
            path_field = record.get("path")
            if path_field:
                profiles.append(path_field)

    if unknown_types:
        listed = ", ".join(sorted(unknown_types))
        warnings.warn(
            f"{path}: skipped {sum(unknown_types.values())} record(s) of "
            f"unknown telemetry type(s): {listed}",
            stacklevel=2,
        )

    consistent = True
    for run in runs:
        wall = run["wall_seconds"]
        if wall is None:
            consistent = False  # run_start without run_complete
            continue
        if run["mode"] == "pool" and run["chunks"]:
            capacity = wall * run["workers"]
            if run["busy_seconds"] > capacity * _SLACK + _FLOOR:
                consistent = False
            run["utilization"] = (
                round(run["busy_seconds"] / capacity, 4) if capacity else None
            )
    pooled = [run for run in runs if run["mode"] == "pool" and run["chunks"]]
    return {
        "schema": TELEMETRY_SCHEMA,
        "records": len(records) - 1,
        "runs": runs,
        "pooled_runs": len(pooled),
        "consistent": consistent,
        "fallback_reasons": fallback_reasons,
        "unknown_types": unknown_types,
        "profiles": profiles,
        **totals,
    }
