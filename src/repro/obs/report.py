"""Run analytics: fuse a run's observability artifacts into one report.

``repro bench`` leaves several machine-readable artifacts behind — a
``repro-metrics/1`` metrics document, a telemetry JSONL directory,
``BENCH_*.json`` timing payloads and (opt-in) per-chunk ``cProfile``
dumps.  Each is designed to be digested alone; this module is the one
place that reads them *together* and renders a single markdown (or
minimal HTML) report: round-to-decision percentiles, message/signature
complexity against the paper's per-round quadratic bound, probe-cache
and vector-fallback rollups, fault attribution, and profile hot spots
attributed back to telemetry busy time.

Determinism is the contract, same as everywhere else in ``obs``: the
report is a pure function of its input files.  No wall clocks are read,
every table is sorted, and floats render with fixed precision — the
golden-report test in ``tests/obs/test_report.py`` pins the exact
rendering from committed fixtures.

``check_report`` is the schema gate behind ``repro report --check``:
it revalidates every input against its declared schema and returns the
violations (CLI exit 2 when non-empty), so a CI job can refuse to
publish a report built from malformed or inconsistent artifacts.
"""

from __future__ import annotations

import html
import json
import os
import pstats
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import (
    MetricsRegistry,
    load_metrics_artifact,
    validate_metrics_payload,
)
from .sinks import ObsFormatError
from .telemetry import TELEMETRY_SCHEMA, summarize_telemetry

__all__ = [
    "build_report",
    "check_report",
    "load_bench_payloads",
    "load_profile_summary",
    "load_report_inputs",
    "render_html",
]

#: Quantiles the round-distribution tables report, in render order.
_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


def _fmt(value: Any, digits: int = 2) -> str:
    """Fixed-precision cell rendering; ``-`` for missing values."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    """Render a GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return lines


# ── input loaders ─────────────────────────────────────────────────────


def load_bench_payloads(paths: Sequence[str]) -> List[Tuple[str, Dict[str, Any]]]:
    """Load ``BENCH_*.json`` payloads, keeping the given path order.

    Deliberately not ``analysis.benchdiff.load_bench``: the layer map
    keeps ``obs`` below ``analysis``, so the (three-line) loader is
    duplicated here rather than importing upward.
    """
    payloads: List[Tuple[str, Dict[str, Any]]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(
                f"{path}: benchmark artifact must be a JSON object"
            )
        payloads.append((path, payload))
    return payloads


def load_profile_summary(
    profile_dir: str, top: int = 10
) -> Optional[Dict[str, Any]]:
    """Digest every ``*.pstats`` dump under ``profile_dir``.

    Returns ``None`` when the directory holds no profiles.  The summary
    is deterministic for a fixed set of dump files: chunks merge in
    sorted filename order, functions sort by own-time (descending) with
    a full location tie-break, and paths reduce to basenames so the
    rendering does not depend on where the repo is checked out.
    """
    paths = sorted(
        os.path.join(profile_dir, name)
        for name in os.listdir(profile_dir)
        if name.endswith(".pstats")
    )
    if not paths:
        return None
    stats = pstats.Stats(paths[0])
    for path in paths[1:]:
        stats.add(path)
    functions = []
    for (filename, lineno, name), row in stats.stats.items():  # type: ignore[attr-defined]
        calls, _primitive, own, cumulative = row[0], row[1], row[2], row[3]
        functions.append(
            {
                "function": f"{os.path.basename(filename)}:{lineno}:{name}",
                "calls": calls,
                "own_seconds": round(own, 4),
                "cumulative_seconds": round(cumulative, 4),
            }
        )
    functions.sort(key=lambda f: (-f["own_seconds"], f["function"]))
    return {
        "files": len(paths),
        "total_seconds": round(stats.total_tt, 4),  # type: ignore[attr-defined]
        "functions": functions[:top],
    }


# ── section renderers ─────────────────────────────────────────────────


def _config_registries(
    payload: Mapping[str, Any],
) -> List[Tuple[str, Mapping[str, Any], MetricsRegistry]]:
    return [
        (name, entry.get("meta", {}), MetricsRegistry.from_payload(entry["metrics"]))
        for name, entry in sorted(payload.get("configs", {}).items())
    ]


def _histogram_row(name: str, registry: MetricsRegistry) -> Optional[List[Any]]:
    hist = registry.histograms.get(name)
    if hist is None or not hist.count:
        return None
    row: List[Any] = [name, hist.count, round(hist.mean or 0.0, 2)]
    row.extend(hist.percentile(q) for _, q in _QUANTILES)
    row.append(hist.maximum)
    return row


def _metrics_section(payload: Mapping[str, Any]) -> List[str]:
    totals = MetricsRegistry.from_payload(payload["totals"])
    meta = payload.get("meta", {})
    trials = totals.counter_total("trials")
    lines = ["## Protocol metrics", ""]
    lines.append(
        f"Plan `{meta.get('plan', '?')}`: {trials} trials, "
        f"{totals.counter_total('messages')} messages, "
        f"{totals.counter_total('sig_verify_ops')} signature verifications, "
        f"{totals.counter_total('coin_flip_rounds')} coin-flip rounds."
    )
    lines.append("")

    agree = totals.labels("agreements")
    if agree:
        lines.append(
            "Agreement: "
            + ", ".join(f"{count} {label}" for label, count in sorted(agree.items()))
            + "."
        )
        lines.append("")
    decisions = totals.labels("decisions")
    if decisions:
        lines.append("Decided values (per honest party):")
        lines.append("")
        lines.extend(
            _table(
                ["value", "count"],
                [[label, count] for label, count in sorted(decisions.items())],
            )
        )
        lines.append("")

    hist_rows = []
    for name in ("rounds_to_decision", "slot_occupancy", "trial_messages", "trial_signatures"):
        row = _histogram_row(name, totals)
        if row is not None:
            hist_rows.append(row)
    if hist_rows:
        lines.append("Distributions:")
        lines.append("")
        lines.extend(
            _table(
                ["histogram", "count", "mean"]
                + [q for q, _ in _QUANTILES]
                + ["max"],
                hist_rows,
            )
        )
        lines.append("")

    # Per-config message complexity against the paper's per-round bound:
    # every party addresses at most one message per recipient per round,
    # so no single round may carry more than n² messages *per trial* —
    # the quadratic communication the protocol claims.  The peak is
    # exact, not estimated: `round_messages` labels carry the round
    # index, so the busiest round across all of a config's trials is
    # recoverable from the artifact alone.
    config_rows = []
    bound_ok = True
    for name, config_meta, registry in _config_registries(payload):
        config_trials = registry.counter_total("trials")
        rounds_hist = registry.histograms.get("rounds_to_decision")
        mean_rounds = rounds_hist.mean if rounds_hist is not None else None
        messages = registry.counter_total("messages")
        per_round: Dict[str, int] = {}
        for label, count in registry.labels("round_messages").items():
            round_key = label.split("/", 1)[0]
            per_round[round_key] = per_round.get(round_key, 0) + count
        peak = (
            max(per_round.values()) / config_trials
            if per_round and config_trials
            else None
        )
        num_parties = config_meta.get("num_parties")
        bound = num_parties**2 if isinstance(num_parties, int) else None
        within = peak <= bound if peak is not None and bound else None
        if within is False:
            bound_ok = False
        config_rows.append(
            [
                name,
                config_trials,
                round(messages / config_trials, 2) if config_trials else None,
                (
                    round(registry.counter_total("sig_verify_ops") / config_trials, 2)
                    if config_trials
                    else None
                ),
                round(mean_rounds, 2) if mean_rounds else None,
                round(peak, 2) if peak is not None else None,
                bound,
                within,
            ]
        )
    if config_rows:
        lines.append(
            "Message/signature complexity per config (paper bound: at most "
            "n² messages in any round of a trial):"
        )
        lines.append("")
        lines.extend(
            _table(
                [
                    "config",
                    "trials",
                    "msgs/trial",
                    "sig verifies/trial",
                    "mean rounds",
                    "peak msgs/round",
                    "n² bound",
                    "within bound",
                ],
                config_rows,
            )
        )
        lines.append("")
        if not bound_ok:
            lines.append(
                "**WARNING**: a config exceeds the per-round message bound."
            )
            lines.append("")

    faults = totals.labels("fault_hits")
    if faults:
        lines.append("Fault attribution (injected fault hits by kind):")
        lines.append("")
        lines.extend(
            _table(
                ["fault kind", "hits"],
                [[label, count] for label, count in sorted(faults.items())],
            )
        )
        lines.append("")
    return lines


def _telemetry_section(summary: Mapping[str, Any]) -> List[str]:
    lines = ["## Engine telemetry", ""]
    lines.append(
        f"{summary['records']} records, {summary['chunks']} chunk spans, "
        f"busy {_fmt(float(summary['busy_seconds']), 3)}s over "
        f"{summary['trials']} dispatched trials; spans "
        f"{'consistent' if summary['consistent'] else '**INCONSISTENT**'}."
    )
    lines.append("")
    pooled = [
        run
        for run in summary.get("runs", [])
        if run.get("utilization") is not None
    ]
    if pooled:
        lines.extend(
            _table(
                ["run", "workers", "chunks", "busy s", "wall s", "utilization"],
                [
                    [
                        run.get("label") or run.get("mode", "?"),
                        run.get("workers"),
                        run.get("chunks"),
                        round(run.get("busy_seconds", 0.0), 3),
                        run.get("wall_seconds"),
                        run.get("utilization"),
                    ]
                    for run in pooled
                ],
            )
        )
        lines.append("")
    hits = summary.get("probe_cache_hits", 0)
    misses = summary.get("probe_cache_misses", 0)
    if hits or misses:
        lines.append(
            f"Probe cache: {hits} hits / {misses} misses "
            f"({hits / (hits + misses):.0%} hit rate)."
        )
        lines.append("")
    fallbacks = summary.get("fallback_reasons") or {}
    if fallbacks:
        lines.append("Vector fallbacks by reason:")
        lines.append("")
        lines.extend(
            _table(
                ["reason", "count"],
                [[reason, count] for reason, count in sorted(fallbacks.items())],
            )
        )
        lines.append("")
    unknown = summary.get("unknown_types") or {}
    if unknown:
        lines.append(
            "Skipped unknown telemetry record types: "
            + ", ".join(
                f"{kind} ({count})" for kind, count in sorted(unknown.items())
            )
            + "."
        )
        lines.append("")
    return lines


def _bench_section(benches: Sequence[Tuple[str, Mapping[str, Any]]]) -> List[str]:
    lines = ["## Benchmark timings", ""]
    for path, payload in benches:
        schema = payload.get("schema", "(no schema field)")
        lines.append(f"### `{os.path.basename(path)}` — `{schema}`")
        lines.append("")
        timing_rows = []
        for key in (
            "serial_seconds",
            "parallel_seconds",
            "vector_seconds",
            "baseline_seconds",
        ):
            if payload.get(key) is not None:
                timing_rows.append([key, payload[key]])
        for key in (
            "speedup_parallel_vs_serial",
            "speedup_vector_vs_object",
            "speedup_vs_baseline",
        ):
            if payload.get(key) is not None:
                timing_rows.append([key, payload[key]])
        if timing_rows:
            lines.extend(_table(["metric", "value"], timing_rows))
            lines.append("")
        rates = payload.get("rates")
        if isinstance(rates, list) and rates:
            lines.append("Error-probability sweep:")
            lines.append("")
            lines.extend(
                _table(
                    ["protocol", "kappa", "bound 2^-k", "measured"],
                    [
                        [
                            row.get("protocol"),
                            row.get("kappa"),
                            _fmt(row.get("bound"), 4),
                            _fmt(row.get("measured"), 4),
                        ]
                        for row in rates
                    ],
                )
            )
            lines.append("")
    return lines


def _profile_section(
    profile: Mapping[str, Any], busy_seconds: Optional[float]
) -> List[str]:
    lines = ["## Profile", ""]
    total = profile["total_seconds"]
    attribution = None
    if busy_seconds:
        attribution = total / busy_seconds
    lines.append(
        f"{profile['files']} profile dump(s), {_fmt(float(total), 3)}s of "
        f"profiled execution"
        + (
            f" — {attribution:.0%} of telemetry busy time attributed"
            if attribution is not None
            else ""
        )
        + "."
    )
    lines.append("")
    if profile["functions"]:
        lines.append("Hottest functions by own time:")
        lines.append("")
        lines.extend(
            _table(
                ["function", "calls", "own s", "cumulative s"],
                [
                    [
                        f"`{entry['function']}`",
                        entry["calls"],
                        _fmt(entry["own_seconds"], 4),
                        _fmt(entry["cumulative_seconds"], 4),
                    ]
                    for entry in profile["functions"]
                ],
            )
        )
        lines.append("")
    return lines


# ── top-level API ─────────────────────────────────────────────────────


def build_report(
    metrics: Optional[Mapping[str, Any]] = None,
    telemetry: Optional[Mapping[str, Any]] = None,
    benches: Sequence[Tuple[str, Mapping[str, Any]]] = (),
    profile: Optional[Mapping[str, Any]] = None,
) -> str:
    """Render the fused markdown report from pre-loaded inputs.

    Every argument is optional; sections render only for the inputs
    provided, so the same function backs ``repro report --metrics`` and
    a full four-artifact fusion.  Pure and deterministic: equal inputs
    render byte-equal markdown.
    """
    lines = ["# repro run report", ""]
    described = []
    if metrics is not None:
        described.append(f"metrics `{metrics.get('schema', '?')}`")
    if telemetry is not None:
        described.append(f"telemetry `{telemetry.get('schema', '?')}`")
    if benches:
        described.append(f"{len(benches)} bench artifact(s)")
    if profile is not None:
        described.append(f"{profile['files']} profile dump(s)")
    lines.append(
        "Inputs: " + (", ".join(described) if described else "none") + "."
    )
    lines.append("")
    if metrics is not None:
        lines.extend(_metrics_section(metrics))
    if telemetry is not None:
        lines.extend(_telemetry_section(telemetry))
    if benches:
        lines.extend(_bench_section(benches))
    if profile is not None:
        busy = float(telemetry["busy_seconds"]) if telemetry else None
        lines.extend(_profile_section(profile, busy))
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


def render_html(markdown: str, title: str = "repro run report") -> str:
    """Wrap the markdown report in a minimal self-contained HTML page.

    Deliberately not a markdown-to-HTML converter — the report stays
    readable as preformatted text and the wrapper adds zero rendering
    dependencies, which keeps the HTML artifact as deterministic as the
    markdown it embeds.
    """
    return (
        "<!doctype html>\n"
        "<html><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title></head>\n"
        "<body><pre>\n"
        f"{html.escape(markdown)}"
        "</pre></body></html>\n"
    )


def check_report(
    metrics: Optional[Mapping[str, Any]] = None,
    telemetry: Optional[Mapping[str, Any]] = None,
    benches: Sequence[Tuple[str, Mapping[str, Any]]] = (),
) -> List[str]:
    """Schema gate for ``repro report --check``; returns violations.

    * the metrics document must validate as ``repro-metrics/1``;
    * the telemetry digest must declare ``repro-telemetry/1`` and its
      spans must be mutually consistent;
    * every bench payload carrying a ``schema`` field must declare a
      ``repro-bench*`` schema (artifacts predating the field pass — the
      gate must not fail on committed history).
    """
    violations: List[str] = []
    if metrics is not None:
        violations.extend(
            f"metrics: {problem}" for problem in validate_metrics_payload(metrics)
        )
    if telemetry is not None:
        if telemetry.get("schema") != TELEMETRY_SCHEMA:
            violations.append(
                f"telemetry: schema {telemetry.get('schema')!r} is not "
                f"{TELEMETRY_SCHEMA!r}"
            )
        if not telemetry.get("consistent", False):
            violations.append(
                "telemetry: spans are not consistent with wall time"
            )
    for path, payload in benches:
        schema = payload.get("schema")
        if schema is None:
            continue
        if not (isinstance(schema, str) and schema.startswith("repro-bench")):
            violations.append(
                f"bench {os.path.basename(path)}: schema {schema!r} is not a "
                f"repro-bench schema"
            )
    return violations


def load_report_inputs(
    metrics_path: Optional[str] = None,
    telemetry_path: Optional[str] = None,
    bench_paths: Sequence[str] = (),
    profile_dir: Optional[str] = None,
    top: int = 10,
) -> Dict[str, Any]:
    """Load every requested artifact from disk; raises ``ObsFormatError``
    / ``OSError`` / ``ValueError`` on malformed inputs (the CLI maps
    those to exit 2)."""
    metrics = load_metrics_artifact(metrics_path) if metrics_path else None
    telemetry = None
    if telemetry_path:
        resolved = telemetry_path
        if os.path.isdir(resolved):
            resolved = os.path.join(resolved, "telemetry.jsonl")
        telemetry = summarize_telemetry(resolved)
    benches = load_bench_payloads(list(bench_paths))
    profile = None
    if profile_dir:
        if not os.path.isdir(profile_dir):
            raise ObsFormatError(f"{profile_dir}: not a profile directory")
        profile = load_profile_summary(profile_dir, top=top)
    return {
        "metrics": metrics,
        "telemetry": telemetry,
        "benches": benches,
        "profile": profile,
    }
