"""Observability layer: streaming trace sinks, engine telemetry, replay.

Everything here is *about* executions, never *inside* them: the protocol
layers (``core``/``proxcensus``/``crypto``/``network``) stay under the
DET determinism rules and must not import ``obs``, while this layer is
free to read wall clocks and touch the filesystem.  ``repro check``
enforces the boundary (see the LAY layer map) and
``docs/observability.md`` documents the schemas.

Three pieces share one sink abstraction
(:class:`repro.network.trace.TraceSink`):

* :class:`JsonlTraceSink` streams trace records to disk in bounded
  memory; :class:`FanoutSink` tees records to several sinks at once.
* :func:`load_trace` / :func:`filter_trace` / :func:`trace_metrics`
  replay a streamed file back into the in-memory renderer
  (``repro trace``).
* :class:`TelemetryWriter` / :func:`summarize_telemetry` record and
  digest engine scheduling spans (``repro bench --telemetry``).
"""

from .replay import (
    LoadedTrace,
    TraceDivergence,
    diff_traces,
    filter_trace,
    load_trace,
    trace_metrics,
)
from .sinks import (
    TRACE_RECORD_TYPES,
    TRACE_SCHEMA,
    FanoutSink,
    JsonlTraceSink,
    ObsFormatError,
    trace_filename,
)
from .telemetry import (
    TELEMETRY_EVENT_TYPES,
    TELEMETRY_SCHEMA,
    TelemetryWriter,
    summarize_telemetry,
)

__all__ = [
    "TELEMETRY_EVENT_TYPES",
    "TELEMETRY_SCHEMA",
    "TRACE_RECORD_TYPES",
    "TRACE_SCHEMA",
    "FanoutSink",
    "JsonlTraceSink",
    "LoadedTrace",
    "ObsFormatError",
    "TelemetryWriter",
    "TraceDivergence",
    "diff_traces",
    "filter_trace",
    "load_trace",
    "summarize_telemetry",
    "trace_filename",
    "trace_metrics",
]
