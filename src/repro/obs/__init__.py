"""Observability layer: streaming trace sinks, engine telemetry, replay.

Everything here is *about* executions, never *inside* them: the protocol
layers (``core``/``proxcensus``/``crypto``/``network``) stay under the
DET determinism rules and must not import ``obs``, while this layer is
free to read wall clocks and touch the filesystem.  ``repro check``
enforces the boundary (see the LAY layer map) and
``docs/observability.md`` documents the schemas.

Three pieces share one sink abstraction
(:class:`repro.network.trace.TraceSink`):

* :class:`JsonlTraceSink` streams trace records to disk in bounded
  memory; :class:`FanoutSink` tees records to several sinks at once.
* :func:`load_trace` / :func:`filter_trace` / :func:`trace_metrics`
  replay a streamed file back into the in-memory renderer
  (``repro trace``).
* :class:`TelemetryWriter` / :func:`summarize_telemetry` record and
  digest engine scheduling spans (``repro bench --telemetry``).
"""

from .metrics import (
    DELIVERY_METRIC_NAMES,
    HISTOGRAM_BUCKETS,
    MESSAGE_KINDS,
    METRIC_NAMES,
    METRICS_SCHEMA,
    Histogram,
    MetricsRegistry,
    build_metrics_payload,
    load_metrics_artifact,
    metrics_from_trace,
    summary_kind,
    validate_metrics_payload,
    write_metrics_artifact,
)
from .report import (
    build_report,
    check_report,
    load_profile_summary,
    load_report_inputs,
    render_html,
)
from .replay import (
    LoadedTrace,
    TraceDivergence,
    diff_traces,
    filter_trace,
    load_trace,
    trace_metrics,
)
from .sinks import (
    TRACE_RECORD_TYPES,
    TRACE_SCHEMA,
    FanoutSink,
    JsonlTraceSink,
    ObsFormatError,
    trace_filename,
)
from .telemetry import (
    TELEMETRY_EVENT_TYPES,
    TELEMETRY_SCHEMA,
    TelemetryWriter,
    summarize_telemetry,
)

__all__ = [
    "DELIVERY_METRIC_NAMES",
    "HISTOGRAM_BUCKETS",
    "MESSAGE_KINDS",
    "METRICS_SCHEMA",
    "METRIC_NAMES",
    "TELEMETRY_EVENT_TYPES",
    "TELEMETRY_SCHEMA",
    "TRACE_RECORD_TYPES",
    "TRACE_SCHEMA",
    "FanoutSink",
    "Histogram",
    "JsonlTraceSink",
    "LoadedTrace",
    "MetricsRegistry",
    "ObsFormatError",
    "TelemetryWriter",
    "TraceDivergence",
    "build_metrics_payload",
    "build_report",
    "check_report",
    "diff_traces",
    "filter_trace",
    "load_metrics_artifact",
    "load_profile_summary",
    "load_report_inputs",
    "load_trace",
    "metrics_from_trace",
    "render_html",
    "summarize_telemetry",
    "summary_kind",
    "trace_filename",
    "trace_metrics",
    "validate_metrics_payload",
    "write_metrics_artifact",
]
