"""Replay streamed trace files into the in-memory transcript model.

:func:`load_trace` is the strict inverse of
:class:`~repro.obs.sinks.JsonlTraceSink`: it parses a JSONL trace back
into a :class:`~repro.network.trace.Tracer` over a
:class:`~repro.network.trace.MemoryTraceSink`, so everything the
in-memory path can do — ``render()``, ``events_in_round`` — works on a
replayed file, byte-identically (pinned by ``tests/obs/test_replay.py``
across every registered protocol × adversary pair).

Strictness is the feature: wrong schema version, malformed JSON, unknown
record types, a missing footer (truncated file) or a footer whose counts
disagree with the records all raise :class:`ObsFormatError` — a trace
that cannot be trusted end to end should not render at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from ..network.faults import FaultEvent
from ..network.metrics import RunMetrics
from ..network.trace import MemoryTraceSink, TraceEvent, Tracer
from .sinks import TRACE_SCHEMA, ObsFormatError

__all__ = [
    "LoadedTrace",
    "TraceDivergence",
    "diff_traces",
    "filter_trace",
    "load_trace",
    "trace_metrics",
]


@dataclass
class LoadedTrace:
    """One replayed trace file: the tracer plus its header metadata."""

    tracer: Tracer
    meta: Dict[str, Any] = field(default_factory=dict)
    events: int = 0
    corruptions: int = 0
    faults: int = 0


def _parse_line(path: str, lineno: int, line: str) -> Dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ObsFormatError(
            f"{path}:{lineno}: not valid JSON ({error.msg})"
        ) from None
    if not isinstance(record, dict) or "t" not in record:
        raise ObsFormatError(
            f"{path}:{lineno}: expected an object with a 't' field"
        )
    return record


def load_trace(path: str) -> LoadedTrace:
    """Parse one JSONL trace file, strictly, into a replayable tracer."""
    tracer = Tracer(MemoryTraceSink())
    meta: Dict[str, Any] = {}
    events = 0
    corruptions = 0
    faults = 0
    saw_header = False
    saw_footer = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            record = _parse_line(path, lineno, line)
            kind = record["t"]
            if saw_footer:
                raise ObsFormatError(
                    f"{path}:{lineno}: record after the end footer"
                )
            if not saw_header:
                if kind != "trace":
                    raise ObsFormatError(
                        f"{path}:{lineno}: first record must be the "
                        f"'trace' header, got {kind!r}"
                    )
                schema = record.get("schema")
                if schema != TRACE_SCHEMA:
                    raise ObsFormatError(
                        f"{path}:{lineno}: schema {schema!r} is not "
                        f"{TRACE_SCHEMA!r} (wrong version or not a trace)"
                    )
                meta = dict(record.get("meta") or {})
                saw_header = True
                continue
            if kind == "msg":
                try:
                    tracer.sink.record_event(
                        TraceEvent(
                            round_index=record["r"],
                            sender=record["s"],
                            recipient=record["d"],
                            summary=record["p"],
                            sender_honest=bool(record["h"]),
                            signatures=record.get("g", 0),
                        )
                    )
                except KeyError as error:
                    raise ObsFormatError(
                        f"{path}:{lineno}: msg record missing {error}"
                    ) from None
                events += 1
            elif kind == "corr":
                try:
                    tracer.sink.record_corruption(record["r"], record["pid"])
                except KeyError as error:
                    raise ObsFormatError(
                        f"{path}:{lineno}: corr record missing {error}"
                    ) from None
                corruptions += 1
            elif kind == "fault":
                try:
                    tracer.sink.record_fault(
                        FaultEvent(
                            round_index=record["r"],
                            kind=record["k"],
                            sender=record["s"],
                            recipient=record["d"],
                            detail=record.get("x"),
                        )
                    )
                except KeyError as error:
                    raise ObsFormatError(
                        f"{path}:{lineno}: fault record missing {error}"
                    ) from None
                faults += 1
            elif kind == "end":
                # Fault-free producers omit the "faults" key entirely
                # (byte-compat with pre-fault-layer traces) — absent
                # means zero, and the count must still agree.
                if (
                    record.get("events") != events
                    or record.get("corruptions") != corruptions
                    or record.get("faults", 0) != faults
                ):
                    raise ObsFormatError(
                        f"{path}:{lineno}: footer counts "
                        f"({record.get('events')}, {record.get('corruptions')}, "
                        f"{record.get('faults', 0)}) "
                        f"disagree with the records read "
                        f"({events}, {corruptions}, {faults})"
                    )
                saw_footer = True
            else:
                raise ObsFormatError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    if not saw_header:
        raise ObsFormatError(f"{path}: empty file (no trace header)")
    if not saw_footer:
        raise ObsFormatError(
            f"{path}: no end footer — the trace was truncated mid-run"
        )
    return LoadedTrace(
        tracer=tracer, meta=meta, events=events, corruptions=corruptions,
        faults=faults,
    )


def filter_trace(
    tracer: Tracer,
    rounds: Optional[Sequence[int]] = None,
    party: Optional[int] = None,
    corrupt_only: bool = False,
) -> Tracer:
    """A new in-memory tracer holding the matching subset of records.

    ``rounds`` keeps only those round indices; ``party`` keeps events a
    party sent *or* received (and its corruption record);
    ``corrupt_only`` keeps dishonest-sender events only.  Corruption
    records follow the round/party filters so the rendered timeline
    stays coherent.
    """
    wanted_rounds = set(rounds) if rounds is not None else None
    filtered = Tracer(MemoryTraceSink())
    for event in tracer.events:
        if wanted_rounds is not None and event.round_index not in wanted_rounds:
            continue
        if party is not None and party not in (event.sender, event.recipient):
            continue
        if corrupt_only and event.sender_honest:
            continue
        filtered.sink.record_event(event)
    for round_index, pid in tracer.corruptions:
        if wanted_rounds is not None and round_index not in wanted_rounds:
            continue
        if party is not None and pid != party:
            continue
        filtered.sink.record_corruption(round_index, pid)
    for fault in tracer.faults:
        if wanted_rounds is not None and fault.round_index not in wanted_rounds:
            continue
        if party is not None and party not in (fault.sender, fault.recipient):
            continue
        filtered.sink.record_fault(fault)
    return filtered


@dataclass(frozen=True)
class TraceDivergence:
    """The first point at which two traces disagree.

    ``round_index`` is 0 for header-metadata divergence, otherwise the
    1-based simulator round.  ``left``/``right`` render the conflicting
    records (``None`` when one trace is missing a record the other has).
    """

    round_index: int
    kind: str  # "meta" | "event" | "corruption" | "fault" | "rounds"
    detail: str
    left: Optional[str] = None
    right: Optional[str] = None

    def render(self) -> str:
        where = (
            "header" if self.round_index == 0 else f"round {self.round_index}"
        )
        lines = [f"traces diverge at {where} ({self.kind}): {self.detail}"]
        lines.append(f"  - {self.left if self.left is not None else '(absent)'}")
        lines.append(
            f"  + {self.right if self.right is not None else '(absent)'}"
        )
        return "\n".join(lines)


def _event_line(event: TraceEvent) -> str:
    role = "honest" if event.sender_honest else "corrupt"
    return (
        f"{event.sender}->{event.recipient} [{role}, "
        f"{event.signatures} sig] {event.summary}"
    )


def _fault_line(fault: FaultEvent) -> str:
    detail = f" {fault.detail}" if fault.detail is not None else ""
    return f"{fault.kind} {fault.sender}->{fault.recipient}{detail}"


def diff_traces(left: LoadedTrace, right: LoadedTrace) -> Optional[TraceDivergence]:
    """First divergence between two replayed traces, or ``None``.

    Comparison is round by round in recorded (delivery) order — the
    order itself is part of the determinism contract, so a reordered
    but set-equal round still diverges.  Header metadata is compared
    first: two traces of different configurations diverge before any
    round does.
    """
    if left.meta != right.meta:
        keys = sorted(set(left.meta) | set(right.meta))
        key = next(
            k for k in keys if left.meta.get(k) != right.meta.get(k)
        )
        return TraceDivergence(
            round_index=0,
            kind="meta",
            detail=f"header field {key!r} differs",
            left=f"{key}={left.meta.get(key)!r}",
            right=f"{key}={right.meta.get(key)!r}",
        )
    a, b = left.tracer, right.tracer
    for round_index in range(1, max(a.rounds, b.rounds) + 1):
        events_a = [e for e in a.events if e.round_index == round_index]
        events_b = [e for e in b.events if e.round_index == round_index]
        for position in range(max(len(events_a), len(events_b))):
            ea = events_a[position] if position < len(events_a) else None
            eb = events_b[position] if position < len(events_b) else None
            if ea != eb:
                return TraceDivergence(
                    round_index=round_index,
                    kind="event",
                    detail=f"message #{position + 1} of the round differs",
                    left=_event_line(ea) if ea is not None else None,
                    right=_event_line(eb) if eb is not None else None,
                )
        corr_a = [pid for r, pid in a.corruptions if r == round_index]
        corr_b = [pid for r, pid in b.corruptions if r == round_index]
        if corr_a != corr_b:
            return TraceDivergence(
                round_index=round_index,
                kind="corruption",
                detail="corrupted-party sets differ",
                left=f"corrupt {corr_a}",
                right=f"corrupt {corr_b}",
            )
        faults_a = [f for f in a.faults if f.round_index == round_index]
        faults_b = [f for f in b.faults if f.round_index == round_index]
        for position in range(max(len(faults_a), len(faults_b))):
            fa = faults_a[position] if position < len(faults_a) else None
            fb = faults_b[position] if position < len(faults_b) else None
            if fa != fb:
                return TraceDivergence(
                    round_index=round_index,
                    kind="fault",
                    detail=f"fault #{position + 1} of the round differs",
                    left=_fault_line(fa) if fa is not None else None,
                    right=_fault_line(fb) if fb is not None else None,
                )
    if a.rounds != b.rounds:
        return TraceDivergence(
            round_index=min(a.rounds, b.rounds) + 1,
            kind="rounds",
            detail="one trace ends early",
            left=f"{a.rounds} rounds",
            right=f"{b.rounds} rounds",
        )
    return None


def trace_metrics(tracer: Tracer) -> RunMetrics:
    """Rebuild per-round message/signature tallies from trace events.

    For a fully traced execution this reproduces the simulator's
    :class:`RunMetrics` tallies exactly (``rounds`` here counts traced
    rounds — rounds that delivered no message are invisible to a trace),
    which is the ``repro trace --stats`` cross-check.
    """
    metrics = RunMetrics(rounds=tracer.rounds)
    for event in tracer.events:
        metrics.record(event.round_index, event.sender_honest, event.signatures)
    return metrics
