"""Deterministic protocol metrics: counters + fixed-bucket histograms.

:class:`MetricsRegistry` is the aggregation substrate behind
``repro bench --metrics`` and ``repro report``: cheap integer counters
and fixed-bucket histograms with a **pinned name vocabulary**
(:data:`METRIC_NAMES`, enforced at runtime here and statically by the
OBS603 check rule), an **order-independent merge** so per-trial
registries collected by any number of workers in any completion order
fold to the same totals, and a canonical **varint pack/unpack** so
packed registries ride the engine's compact ``ChunkSummary`` transport.

Collection happens inside the simulator's delivery seam — the same hook
pattern as ``Tracer`` / ``FaultInjector``: ``SyncSimulator(collector=…)``
calls :meth:`MetricsRegistry.on_message` / :meth:`~MetricsRegistry.on_fault`
per delivered message / injected fault, and ``collector=None`` leaves the
delivery path byte-identical to the pre-metrics code.  Everything a
delivered message contributes is derived from its *trace summary* (the
``summarize_payload`` string and ``count_signatures`` tally already
stamped on every :class:`~repro.network.trace.TraceEvent`), so the same
metrics can be recomputed from a replayed JSONL trace —
:func:`metrics_from_trace` — and ``repro trace --stats`` and live
collection agree name-for-name, count-for-count.  The only additions the
live path can see that a trace cannot are payload internals: slot
occupancy of composite messages and per-class crypto-object counts.

The serialized artifact is ``repro-metrics/1``: a single canonical JSON
document (:func:`build_metrics_payload` / :func:`write_metrics_artifact`)
with per-config registries plus merged totals, deterministic for a given
``(seed, plan)`` regardless of worker count or backend — pinned by
``tests/engine/test_metrics_engine.py``.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..network.trace import FaultEvent, TraceEvent, summarize_payload
from .sinks import ObsFormatError

__all__ = [
    "DELIVERY_METRIC_NAMES",
    "HISTOGRAM_BUCKETS",
    "MESSAGE_KINDS",
    "METRICS_SCHEMA",
    "METRIC_NAMES",
    "Histogram",
    "MetricsRegistry",
    "build_metrics_payload",
    "load_metrics_artifact",
    "metrics_from_trace",
    "summary_kind",
    "validate_metrics_payload",
    "write_metrics_artifact",
]

#: Schema tag of the metrics artifact (``repro report`` input).
METRICS_SCHEMA = "repro-metrics/1"

#: The complete metric-name vocabulary.  Every ``inc``/``observe`` call
#: must name one of these — enforced at runtime by the registry and
#: statically by the OBS603 rule, which pins string-literal call sites
#: across obs/engine/cli/analysis to this frozenset.  Kept as a single
#: literal so the checks-layer AST index can recover the value without
#: importing this module.
METRIC_NAMES = frozenset(
    {
        "agreements",
        "coin_flip_rounds",
        "coin_share_msgs",
        "crypto_ops",
        "decisions",
        "fault_hits",
        "messages",
        "messages_corrupt",
        "messages_honest",
        "round_messages",
        "rounds_to_decision",
        "sig_combine_ops",
        "sig_verify_ops",
        "signatures_corrupt",
        "signatures_honest",
        "slot_occupancy",
        "trial_messages",
        "trial_signatures",
        "trials",
    }
)

#: Fixed bucket upper bounds per histogram metric (values above the last
#: bound land in the overflow bucket).  Fixed buckets are what make the
#: merge order-independent: merging histograms is element-wise addition.
HISTOGRAM_BUCKETS: Dict[str, Tuple[int, ...]] = {
    "rounds_to_decision": (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128),
    "slot_occupancy": (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64),
    "trial_messages": (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
    "trial_signatures": (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
}

#: Message-kind labels produced by :func:`summary_kind` (the label space
#: of the ``messages*`` counters).
MESSAGE_KINDS = frozenset(
    {
        "bool",
        "bytes",
        "collection",
        "int",
        "none",
        "object",
        "parallel",
        "sequence",
        "signature",
        "str",
    }
)

#: The trace-recoverable subset: metrics derived purely from delivery
#: summaries and fault records, therefore identical between live
#: collection and :func:`metrics_from_trace` replay (pinned by
#: ``tests/obs/test_metrics.py``).
DELIVERY_METRIC_NAMES = frozenset(
    {
        "coin_flip_rounds",
        "coin_share_msgs",
        "fault_hits",
        "messages",
        "messages_corrupt",
        "messages_honest",
        "round_messages",
        "sig_verify_ops",
        "signatures_corrupt",
        "signatures_honest",
        "trial_messages",
        "trial_signatures",
    }
)

_COUNTER_NAMES = METRIC_NAMES - frozenset(HISTOGRAM_BUCKETS)

if not frozenset(HISTOGRAM_BUCKETS) <= METRIC_NAMES:  # pragma: no cover
    raise AssertionError("HISTOGRAM_BUCKETS names must be in METRIC_NAMES")
if not DELIVERY_METRIC_NAMES <= METRIC_NAMES:  # pragma: no cover
    raise AssertionError("DELIVERY_METRIC_NAMES must be in METRIC_NAMES")


def summary_kind(summary: str) -> str:
    """Classify a ``summarize_payload`` string into a message kind.

    This is the bridge that lets trace replay and live collection share
    one vocabulary: both see the same summary string, so both label a
    message the same way.
    """
    if summary == "∅":
        return "none"
    if summary in ("True", "False"):
        return "bool"
    if summary.startswith("∥"):
        return "parallel"
    if summary.startswith("bytes["):
        return "bytes"
    if summary.startswith("{"):
        return "collection"
    if summary.startswith("("):
        return "sequence"
    if summary.startswith("'"):
        return "str"
    if summary.startswith("<"):
        return "signature"
    if summary.startswith("int(") or summary.lstrip("-").isdigit():
        return "int"
    return "object"


# ── varint codec (LEB128, same wire idiom as repro.engine.transport; the
#    obs layer cannot import engine, so the ~10 lines are duplicated) ───


def _write_varint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_varint(blob: bytes, at: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if at >= len(blob):
            raise ObsFormatError("truncated metrics blob: varint runs past end")
        byte = blob[at]
        at += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, at
        shift += 7


def _write_str(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _write_varint(buf, len(raw))
    buf.extend(raw)


def _read_str(blob: bytes, at: int) -> Tuple[str, int]:
    length, at = _read_varint(blob, at)
    end = at + length
    if end > len(blob):
        raise ObsFormatError("truncated metrics blob: string runs past end")
    return blob[at:end].decode("utf-8"), end


_PACK_VERSION = 1


class Histogram:
    """A fixed-bucket integer histogram with exact count/total/min/max."""

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: Sequence[int]) -> None:
        self.buckets: Tuple[int, ...] = tuple(buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        # counts has one slot per bucket plus a final overflow slot.
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, fraction: float) -> Optional[int]:
        """Upper-bound estimate of the ``fraction`` quantile.

        Returns the upper bound of the first bucket whose cumulative
        count reaches the target rank; observations in the overflow
        bucket resolve to the exact maximum.  Deterministic and
        monotone in ``fraction``.
        """
        if not self.count:
            return None
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        target = fraction * self.count
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            if running >= target and n:
                # An exact histogram never reports a quantile below the
                # minimum or above the maximum it actually saw.
                assert self.minimum is not None and self.maximum is not None
                return min(max(bound, self.minimum), self.maximum)
        return self.maximum

    def copy(self) -> "Histogram":
        dup = Histogram(self.buckets)
        dup.merge(self)
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.counts == other.counts
            and self.count == other.count
            and self.total == other.total
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, total={self.total}, "
            f"min={self.minimum}, max={self.maximum})"
        )

    def as_payload(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Histogram":
        hist = cls(payload["buckets"])
        counts = list(payload["counts"])
        if len(counts) != len(hist.buckets) + 1:
            raise ObsFormatError(
                f"histogram counts length {len(counts)} does not match "
                f"{len(hist.buckets)} buckets + overflow"
            )
        hist.counts = counts
        hist.count = int(payload["count"])
        hist.total = int(payload["total"])
        hist.minimum = payload.get("min")
        hist.maximum = payload.get("max")
        return hist


class MetricsRegistry:
    """Deterministic counters + histograms over one or many trials.

    The simulator-facing hooks (:meth:`on_message`, :meth:`on_fault`)
    mirror the ``Tracer`` seam; the engine calls :meth:`finalize_trial`
    once per execution to fold per-trial transients (coin rounds,
    message/signature totals) and run-level outcomes (rounds to
    decision, agreement, decided values) into the registry.  ``merge``
    is commutative and associative over finalized registries, and
    ``pack``/``unpack`` round-trip losslessly — both pinned by
    hypothesis property tests.
    """

    __slots__ = (
        "counters",
        "histograms",
        "_coin_rounds",
        "_trial_messages",
        "_trial_signatures",
        "_memo_round",
        "_memo",
    )

    def __init__(self) -> None:
        #: (name, label) → count.  Labels refine a metric (message kind,
        #: fault kind, crypto class, decided value); unlabelled metrics
        #: use the empty string.
        self.counters: Dict[Tuple[str, str], int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._coin_rounds: Set[int] = set()
        self._trial_messages = 0
        self._trial_signatures = 0
        self._memo_round = -1
        self._memo: Dict[int, Tuple[str, int, Tuple[Tuple[str, int], ...], int]] = {}

    # ── core mutation API (name vocabulary enforced) ──────────────────

    def inc(self, name: str, label: str = "", by: int = 1) -> None:
        if name not in _COUNTER_NAMES:
            raise ValueError(f"unknown counter metric {name!r}")
        if by < 0:
            raise ValueError(f"counter increments must be >= 0, got {by}")
        if not by:
            return
        key = (name, label)
        self.counters[key] = self.counters.get(key, 0) + by

    def observe(self, name: str, value: int) -> None:
        buckets = HISTOGRAM_BUCKETS.get(name)
        if buckets is None:
            raise ValueError(f"unknown histogram metric {name!r}")
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets)
        hist.observe(value)

    # ── simulator delivery seam (Tracer-shaped hooks) ─────────────────

    def on_message(
        self,
        round_index: int,
        sender: int,
        recipient: int,
        payload: Any,
        sender_honest: bool,
    ) -> None:
        """Tally one delivered message (live collection).

        The summary/signature reduction is memoized per distinct payload
        *object* per round — a sender multicasting one payload to n
        recipients costs one walk, exactly like the delivery loop's own
        signature dedup.
        """
        if round_index != self._memo_round:
            self._memo.clear()
            self._memo_round = round_index
        cached = self._memo.get(id(payload))
        if cached is None:
            from ..network.metrics import count_signatures

            slots = len(payload) if isinstance(payload, dict) else -1
            cached = self._memo[id(payload)] = (
                summarize_payload(payload),
                count_signatures(payload),
                _crypto_class_counts(payload),
                slots,
            )
        summary, signatures, classes, slots = cached
        self.observe_delivery(round_index, summary, signatures, sender_honest)
        # Live-only extras: payload internals a trace summary cannot
        # recover (composite slot occupancy, per-class crypto objects).
        if slots >= 0:
            self.observe("slot_occupancy", slots)
        for class_name, count in classes:
            self.inc("crypto_ops", class_name, count)
            if "Signature" in class_name and "Share" not in class_name:
                self.inc("sig_combine_ops", class_name, count)

    def on_fault(self, round_index: int, kind: str) -> None:
        self.inc("fault_hits", kind)

    def observe_delivery(
        self, round_index: int, summary: str, signatures: int, sender_honest: bool
    ) -> None:
        """Tally one delivery from its trace summary (shared live/replay path)."""
        kind = summary_kind(summary)
        self.inc("messages", kind)
        self.inc("round_messages", f"{round_index:04d}/{kind}")
        if sender_honest:
            self.inc("messages_honest", kind)
            self.inc("signatures_honest", "", signatures)
        else:
            self.inc("messages_corrupt", kind)
            self.inc("signatures_corrupt", "", signatures)
        self.inc("sig_verify_ops", "", signatures)
        if "coin_share" in summary:
            self.inc("coin_share_msgs")
            self._coin_rounds.add(round_index)
        self._trial_messages += 1
        self._trial_signatures += signatures

    def finalize_delivery(self) -> None:
        """Fold per-trial delivery transients; call once per execution."""
        self.inc("coin_flip_rounds", "", len(self._coin_rounds))
        self.observe("trial_messages", self._trial_messages)
        self.observe("trial_signatures", self._trial_signatures)
        self._coin_rounds = set()
        self._trial_messages = 0
        self._trial_signatures = 0
        self._memo_round = -1
        self._memo = {}

    def finalize_trial(self, result: Any) -> None:
        """Fold one finished ``ExecutionResult`` into run-level metrics."""
        self.finalize_delivery()
        self.inc("trials")
        self.inc("agreements", "agree" if result.honest_agree() else "disagree")
        for pid in result.honest_parties:
            finish = result.finish_rounds.get(pid)
            if finish is not None:
                self.observe("rounds_to_decision", finish)
        outputs = result.honest_outputs
        for pid in sorted(outputs):
            self.inc("decisions", summarize_payload(outputs[pid]))

    # ── merge / views ─────────────────────────────────────────────────

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (element-wise addition)."""
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = hist.copy()
            else:
                mine.merge(hist)

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        total = cls()
        for registry in registries:
            total.merge(registry)
        return total

    def copy(self) -> "MetricsRegistry":
        return MetricsRegistry.merged([self])

    def delivery_view(self) -> "MetricsRegistry":
        """Restrict to :data:`DELIVERY_METRIC_NAMES` (the trace-recoverable
        subset used by the live-vs-replayed equivalence tests)."""
        view = MetricsRegistry()
        view.counters = {
            key: value
            for key, value in self.counters.items()
            if key[0] in DELIVERY_METRIC_NAMES
        }
        view.histograms = {
            name: hist.copy()
            for name, hist in self.histograms.items()
            if name in DELIVERY_METRIC_NAMES
        }
        return view

    def counter_total(self, name: str) -> int:
        return sum(
            value for (metric, _), value in self.counters.items() if metric == name
        )

    def labels(self, name: str) -> Dict[str, int]:
        """Sorted label → count mapping for one counter metric."""
        return {
            label: self.counters[(metric, label)]
            for metric, label in sorted(self.counters)
            if metric == name
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return (
            self.counters == other.counters and self.histograms == other.histograms
        )

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"histograms={len(self.histograms)})"
        )

    # ── canonical wire form (ChunkSummary transport) ──────────────────

    def pack(self) -> bytes:
        """Canonical varint encoding: equal registries pack identically."""
        buf = bytearray()
        _write_varint(buf, _PACK_VERSION)
        _write_varint(buf, len(self.counters))
        for (name, label) in sorted(self.counters):
            _write_str(buf, name)
            _write_str(buf, label)
            _write_varint(buf, self.counters[(name, label)])
        _write_varint(buf, len(self.histograms))
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            _write_str(buf, name)
            _write_varint(buf, len(hist.buckets))
            for bound in hist.buckets:
                _write_varint(buf, bound)
            for count in hist.counts:
                _write_varint(buf, count)
            _write_varint(buf, hist.count)
            _write_varint(buf, hist.total)
            if hist.count:
                _write_varint(buf, hist.minimum or 0)
                _write_varint(buf, hist.maximum or 0)
        return bytes(buf)

    @classmethod
    def unpack(cls, blob: bytes) -> "MetricsRegistry":
        registry = cls()
        version, at = _read_varint(blob, 0)
        if version != _PACK_VERSION:
            raise ObsFormatError(f"unknown metrics pack version {version}")
        n_counters, at = _read_varint(blob, at)
        for _ in range(n_counters):
            name, at = _read_str(blob, at)
            label, at = _read_str(blob, at)
            value, at = _read_varint(blob, at)
            registry.counters[(name, label)] = value
        n_hists, at = _read_varint(blob, at)
        for _ in range(n_hists):
            name, at = _read_str(blob, at)
            n_buckets, at = _read_varint(blob, at)
            buckets = []
            for _ in range(n_buckets):
                bound, at = _read_varint(blob, at)
                buckets.append(bound)
            hist = Histogram(buckets)
            counts = []
            for _ in range(n_buckets + 1):
                count, at = _read_varint(blob, at)
                counts.append(count)
            hist.counts = counts
            hist.count, at = _read_varint(blob, at)
            hist.total, at = _read_varint(blob, at)
            if hist.count:
                hist.minimum, at = _read_varint(blob, at)
                hist.maximum, at = _read_varint(blob, at)
            registry.histograms[name] = hist
        if at != len(blob):
            raise ObsFormatError(
                f"metrics blob has {len(blob) - at} trailing bytes"
            )
        return registry

    # ── JSON artifact form ────────────────────────────────────────────

    def as_payload(self) -> Dict[str, Any]:
        counters: Dict[str, Dict[str, int]] = {}
        for (name, label) in sorted(self.counters):
            counters.setdefault(name, {})[label] = self.counters[(name, label)]
        return {
            "counters": counters,
            "histograms": {
                name: self.histograms[name].as_payload()
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, labels in payload.get("counters", {}).items():
            for label, value in labels.items():
                registry.counters[(name, label)] = int(value)
        for name, hist_payload in payload.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_payload(hist_payload)
        return registry


def _crypto_class_counts(payload: Any) -> Tuple[Tuple[str, int], ...]:
    """Count crypto-layer objects inside a payload, by class name.

    Same walk shape as ``count_signatures`` (dicts by keys+values,
    sequences element-wise, dataclass fields), reduced to a sorted
    ``(class_name, count)`` tuple so the result is hashable and
    memo-friendly.  Class names are surfaced the way trace summaries
    spell them (leading underscores stripped).
    """
    import dataclasses

    counts: Dict[str, int] = {}
    stack = [payload]
    while stack:
        value = stack.pop()
        if value is None or isinstance(value, (bool, int, float, str, bytes)):
            continue
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            cls = type(value)
            if cls.__module__.startswith("repro.crypto"):
                name = cls.__name__.lstrip("_")
                counts[name] = counts.get(name, 0) + 1
            for field in dataclasses.fields(value):
                stack.append(getattr(value, field.name))
        elif isinstance(value, dict):
            stack.extend(value.keys())
            stack.extend(value.values())
        elif isinstance(value, (list, tuple, set, frozenset)):
            stack.extend(value)
    return tuple(sorted(counts.items()))


def metrics_from_trace(
    events: Iterable[TraceEvent], faults: Iterable[FaultEvent] = ()
) -> MetricsRegistry:
    """Recompute delivery metrics from replayed trace records.

    Uses the exact same :meth:`MetricsRegistry.observe_delivery` /
    :meth:`~MetricsRegistry.on_fault` path as live collection, so the
    result equals the live registry's :meth:`~MetricsRegistry.delivery_view`
    for the same execution.
    """
    registry = MetricsRegistry()
    for event in events:
        registry.observe_delivery(
            event.round_index, event.summary, event.signatures, event.sender_honest
        )
    for fault in faults:
        registry.on_fault(fault.round_index, fault.kind)
    registry.finalize_delivery()
    return registry


def build_metrics_payload(
    meta: Mapping[str, Any],
    configs: Mapping[str, Tuple[Mapping[str, Any], MetricsRegistry]],
) -> Dict[str, Any]:
    """Assemble the ``repro-metrics/1`` artifact document.

    ``configs`` maps config key → (config meta, merged registry); the
    totals section is the merge over all configs.  ``meta`` must be
    derived from the plan alone (never worker count or wall clock) so
    the artifact is identical across serial/pooled/vector runs.
    """
    totals = MetricsRegistry.merged(registry for _, registry in configs.values())
    return {
        "schema": METRICS_SCHEMA,
        "meta": dict(meta),
        "configs": {
            name: {"meta": dict(config_meta), "metrics": registry.as_payload()}
            for name, (config_meta, registry) in configs.items()
        },
        "totals": totals.as_payload(),
    }


def validate_metrics_payload(payload: Any) -> List[str]:
    """Schema violations in a parsed metrics artifact (empty = valid)."""
    violations: List[str] = []
    if not isinstance(payload, dict):
        return ["metrics artifact is not a JSON object"]
    schema = payload.get("schema")
    if schema != METRICS_SCHEMA:
        violations.append(f"schema is {schema!r}, expected {METRICS_SCHEMA!r}")
    sections: List[Tuple[str, Any]] = [("totals", payload.get("totals"))]
    configs = payload.get("configs", {})
    if not isinstance(configs, dict):
        violations.append("configs section is not an object")
        configs = {}
    for name, entry in configs.items():
        sections.append(
            (f"configs[{name}]", entry.get("metrics") if isinstance(entry, dict) else None)
        )
    for where, section in sections:
        if not isinstance(section, dict):
            violations.append(f"{where}: missing metrics object")
            continue
        try:
            registry = MetricsRegistry.from_payload(section)
        except (ObsFormatError, KeyError, TypeError, ValueError) as error:
            violations.append(f"{where}: malformed metrics ({error})")
            continue
        for metric, _ in registry.counters:
            if metric not in _COUNTER_NAMES:
                violations.append(f"{where}: unknown counter metric {metric!r}")
        for metric, hist in registry.histograms.items():
            expected = HISTOGRAM_BUCKETS.get(metric)
            if expected is None:
                violations.append(f"{where}: unknown histogram metric {metric!r}")
            elif hist.buckets != expected:
                violations.append(
                    f"{where}: histogram {metric!r} buckets diverge from the "
                    "pinned vocabulary"
                )
    return violations


def write_metrics_artifact(path: str, payload: Mapping[str, Any]) -> None:
    """Write a validated ``repro-metrics/1`` document, canonically."""
    violations = validate_metrics_payload(dict(payload))
    if violations:
        raise ObsFormatError(
            "refusing to write invalid metrics artifact: " + "; ".join(violations)
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True, indent=2))
        handle.write("\n")


def load_metrics_artifact(path: str) -> Dict[str, Any]:
    """Load and validate a ``repro-metrics/1`` document."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ObsFormatError(f"{path}: not valid JSON ({error})") from None
    violations = validate_metrics_payload(payload)
    if violations:
        raise ObsFormatError(f"{path}: " + "; ".join(violations))
    return payload
