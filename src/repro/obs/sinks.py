"""Streaming trace sinks: schema-versioned JSONL, bounded memory.

A :class:`JsonlTraceSink` writes one JSON object per line as records
arrive and keeps only counters in memory — tracing a thousand-trial plan
costs the same RAM as tracing one trial.  The file is self-describing
and self-checking:

* line 1 is a header ``{"t": "trace", "schema": "repro-trace/1", ...}``
  carrying optional metadata (protocol, seed, session — whatever the
  producer stamps);
* every message record is ``{"t": "msg", "r": round, "s": sender,
  "d": recipient, "h": 0|1, "g": signatures, "p": summary}`` and every
  corruption record ``{"t": "corr", "r": round, "pid": pid}``, in
  delivery order;
* fault-injected runs additionally write ``{"t": "fault", "r": round,
  "k": kind, "s": sender, "d": recipient}`` records (plus ``"x"`` for a
  delay length) — see :mod:`repro.network.faults`;
* the footer ``{"t": "end", "events": N, "corruptions": M}`` closes the
  stream — a file without it was truncated mid-run, and
  :func:`repro.obs.replay.load_trace` rejects it.  A run that injected
  faults also stamps ``"faults": K`` into the footer; fault-free traces
  omit the key, so they stay byte-identical to pre-fault-layer files.

Keys are single characters on the hot records deliberately: a traced
execution writes one line per delivered message.
"""

from __future__ import annotations

import json
from typing import IO, Any, Mapping, Optional, Sequence

from ..network.faults import FaultEvent
from ..network.trace import TraceEvent, TraceSink

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_RECORD_TYPES",
    "FanoutSink",
    "JsonlTraceSink",
    "ObsFormatError",
    "trace_filename",
]

#: Schema tag written into (and demanded from) every trace file.  Bump
#: the suffix when a record shape changes; readers reject other versions
#: loudly instead of misparsing them.
TRACE_SCHEMA = "repro-trace/1"

#: Every legal ``"t"`` discriminator in a ``repro-trace/1`` stream.
#: Writers and readers are both pinned to this set by ``repro check``
#: (OBS601) — a typo on either side silently drops records otherwise.
TRACE_RECORD_TYPES = frozenset({"trace", "msg", "corr", "fault", "end"})


class ObsFormatError(ValueError):
    """A trace/telemetry file is malformed, truncated, or wrong-schema."""


def trace_filename(index: int) -> str:
    """Canonical per-trial trace filename inside a run directory."""
    return f"trial-{index:05d}.trace.jsonl"


def _dump(record: Mapping[str, Any]) -> str:
    # Compact separators + sorted keys: one canonical byte sequence per
    # record, so identical executions produce identical trace files.
    return json.dumps(
        record, sort_keys=True, ensure_ascii=False, separators=(",", ":")
    )


class JsonlTraceSink(TraceSink):
    """Stream trace records to a JSONL file; hold nothing but counters.

    Usable as a context manager; :meth:`close` writes the footer and is
    idempotent.  ``meta`` lands in the header record — stamp whatever
    identifies the execution (spec index, protocol, seed).
    """

    def __init__(self, path: str, meta: Optional[Mapping[str, Any]] = None) -> None:
        self.path = path
        self.events_written = 0
        self.corruptions_written = 0
        self.faults_written = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        header: dict = {"t": "trace", "schema": TRACE_SCHEMA}
        if meta:
            header["meta"] = dict(meta)
        self._write(header)

    def _write(self, record: Mapping[str, Any]) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path!r} is closed")
        self._handle.write(_dump(record) + "\n")

    def record_event(self, event: TraceEvent) -> None:
        self._write(
            {
                "t": "msg",
                "r": event.round_index,
                "s": event.sender,
                "d": event.recipient,
                "h": 1 if event.sender_honest else 0,
                "g": event.signatures,
                "p": event.summary,
            }
        )
        self.events_written += 1

    def record_corruption(self, round_index: int, pid: int) -> None:
        self._write({"t": "corr", "r": round_index, "pid": pid})
        self.corruptions_written += 1

    def record_fault(self, event: FaultEvent) -> None:
        record = {
            "t": "fault",
            "r": event.round_index,
            "k": event.kind,
            "s": event.sender,
            "d": event.recipient,
        }
        if event.detail is not None:
            record["x"] = event.detail
        self._write(record)
        self.faults_written += 1

    def close(self) -> None:
        if self._handle is None:
            return
        footer = {
            "t": "end",
            "events": self.events_written,
            "corruptions": self.corruptions_written,
        }
        # Stamped only when nonzero: fault-free trace files must stay
        # byte-identical to those written before fault injection existed.
        if self.faults_written:
            footer["faults"] = self.faults_written
        self._write(footer)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class FanoutSink(TraceSink):
    """Tee every record to several sinks (e.g. memory for rendering now
    plus JSONL for replay later)."""

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        self.sinks = list(sinks)

    def record_event(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record_event(event)

    def record_corruption(self, round_index: int, pid: int) -> None:
        for sink in self.sinks:
            sink.record_corruption(round_index, pid)

    def record_fault(self, event: FaultEvent) -> None:
        for sink in self.sinks:
            sink.record_fault(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
