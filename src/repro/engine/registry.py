"""Name → builder registries for picklable trial specifications.

A :class:`~repro.engine.plan.TrialSpec` must cross a process boundary, so
it cannot carry closures.  Instead it names its protocol and adversary;
worker processes resolve the names through these registries and build the
actual program factory / adversary instance locally.

Both registries are extensible: library users register their own programs
with :func:`register_protocol` / :func:`register_adversary` before
building a plan.  (With ``fork``-start process pools the registrations are
inherited by workers; under ``spawn``, register at module import time.)

Protocol builders have signature ``builder(**params) -> ProgramFactory``.
Adversary builders have signature ``builder(factory, **params) ->
Adversary`` — the resolved protocol factory is passed in because generic
adversaries like ``two_face`` simulate honest behavior and need it; most
builders ignore it.  Fault-plan builders have signature
``builder(**params) -> FaultPlan`` (see :mod:`repro.network.faults`) —
fault scenarios name adversarial *network* behavior the same way
adversary names describe adversarial *parties*.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..adversary.base import Adversary
from ..adversary.coin_bias import WithholdingCoinAdversary
from ..adversary.straddle import (
    BareLinearHalfStraddleAdversary,
    LinearHalfStraddleAdversary,
    OneThirdStraddleAdversary,
)
from ..adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from ..adversary.termination import GradeSplitAdversary
from ..core.ablation import ba_one_half_generalized, ba_one_third_chunked
from ..core.ba import ba_one_half_program, ba_one_third_program
from ..core.dolev_strong import dolev_strong_ba_program
from ..core.feldman_micali import feldman_micali_program
from ..core.micali_vaikuntanathan import (
    micali_vaikuntanathan_program,
    mv_pki_program,
)
from ..core.probabilistic import fm_probabilistic_program
from ..core.turpin_coan import (
    multivalued_ba_program,
    turpin_coan_classic_program,
)
from ..crypto.coin import threshold_coin_program
from ..crypto.vrf_coin import vrf_coin_program
from ..network.faults import Crash, FaultPlan, Partition
from ..network.party import ProgramFactory
from ..proxcensus.gradecast_cert import certificate_gradecast_program
from ..proxcensus.linear_half import prox_linear_half_program
from ..proxcensus.one_third import (
    prox_expand_once_program,
    prox_one_third_program,
)
from ..proxcensus.proxcast import proxcast_program
from ..proxcensus.quadratic_half import prox_quadratic_half_program

__all__ = [
    "build_adversary",
    "build_fault_plan",
    "build_protocol_factory",
    "protocol_names",
    "adversary_names",
    "fault_plan_names",
    "register_adversary",
    "register_fault_plan",
    "register_protocol",
    "register_vector_model",
    "vector_model_for",
    "vector_model_pairs",
]

ProtocolBuilder = Callable[..., ProgramFactory]
AdversaryBuilder = Callable[..., Adversary]
FaultPlanBuilder = Callable[..., FaultPlan]

_PROTOCOLS: Dict[str, ProtocolBuilder] = {}
_ADVERSARIES: Dict[str, AdversaryBuilder] = {}
_FAULT_PLANS: Dict[str, FaultPlanBuilder] = {}
# (protocol name, adversary name or None) → vector batch-model class.
# Populated by repro.engine.vectorized at import time; the runner's
# backend="vector" path consults it per spec and falls back to the
# object simulator for unregistered pairs.
_VECTOR_MODELS: Dict[tuple, Any] = {}


def register_vector_model(protocol: str, adversary: Optional[str], model: Any) -> None:
    """Register a vector batch model for one (protocol, adversary) pair.

    ``model`` must expose ``unsupported_reason(spec) -> Optional[str]``
    (a class-level eligibility check) and ``run_batch(specs) ->
    List[ExecutionResult]`` producing results bit-identical to the
    object simulator for every spec the eligibility check admits.

    Re-registering the *same* model object is a no-op (module re-imports
    must stay idempotent); registering a *different* model for an
    already-claimed pair raises — a silent overwrite would let one
    import order quietly change which batch executor a sweep runs on.
    """
    existing = _VECTOR_MODELS.get((protocol, adversary))
    if existing is not None and existing is not model:
        raise ValueError(
            f"vector model for ({protocol!r}, {adversary!r}) is already "
            f"registered as {existing!r}; unregister or rename before "
            f"registering {model!r}"
        )
    _VECTOR_MODELS[(protocol, adversary)] = model


def vector_model_for(protocol: str, adversary: Optional[str]) -> Optional[Any]:
    """The registered vector model for a pair, or ``None``."""
    return _VECTOR_MODELS.get((protocol, adversary))


def vector_model_pairs() -> List[tuple]:
    """Registered (protocol, adversary) vector-model pairs, sorted."""
    return sorted(_VECTOR_MODELS, key=repr)


def register_protocol(name: str, builder: ProtocolBuilder) -> None:
    """Register ``builder(**params) -> factory(ctx, value)`` under ``name``."""
    if not callable(builder):
        raise TypeError(f"protocol builder for {name!r} is not callable")
    _PROTOCOLS[name] = builder


def register_adversary(name: str, builder: AdversaryBuilder) -> None:
    """Register ``builder(factory, **params) -> Adversary`` under ``name``."""
    if not callable(builder):
        raise TypeError(f"adversary builder for {name!r} is not callable")
    _ADVERSARIES[name] = builder


def register_fault_plan(name: str, builder: FaultPlanBuilder) -> None:
    """Register ``builder(**params) -> FaultPlan`` under ``name``."""
    if not callable(builder):
        raise TypeError(f"fault-plan builder for {name!r} is not callable")
    _FAULT_PLANS[name] = builder


def protocol_names() -> List[str]:
    """Registered protocol names, sorted."""
    return sorted(_PROTOCOLS)


def adversary_names() -> List[str]:
    """Registered adversary names, sorted."""
    return sorted(_ADVERSARIES)


def fault_plan_names() -> List[str]:
    """Registered fault-scenario names, sorted."""
    return sorted(_FAULT_PLANS)


def build_protocol_factory(name: str, params: Dict[str, Any]) -> ProgramFactory:
    """Resolve a protocol name to a ``factory(ctx, value)`` callable."""
    try:
        builder = _PROTOCOLS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; registered: {protocol_names()}"
        ) from None
    return builder(**params)


def build_adversary(
    name: Optional[str], params: Dict[str, Any], factory: ProgramFactory
) -> Optional[Adversary]:
    """Resolve an adversary name (or ``None``) to a fresh instance."""
    if name is None:
        return None
    try:
        builder = _ADVERSARIES[name]
    except KeyError:
        raise KeyError(
            f"unknown adversary {name!r}; registered: {adversary_names()}"
        ) from None
    return builder(factory, **params)


def build_fault_plan(
    name: Optional[str], params: Dict[str, Any]
) -> Optional[FaultPlan]:
    """Resolve a fault-scenario name (or ``None``) to a fresh plan."""
    if name is None:
        return None
    try:
        builder = _FAULT_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault scenario {name!r}; registered: {fault_plan_names()}"
        ) from None
    return builder(**params)


# ── Built-in protocols ───────────────────────────────────────────────────
# Every program the stock benchmarks sweep.  Builders close over only
# module-level callables, so the returned factories are fork-safe.

register_protocol(
    "ba_one_third",
    lambda kappa: (lambda ctx, bit: ba_one_third_program(ctx, bit, kappa)),
)
register_protocol(
    "ba_one_half",
    lambda kappa: (lambda ctx, bit: ba_one_half_program(ctx, bit, kappa)),
)
register_protocol(
    "feldman_micali",
    lambda kappa: (lambda ctx, bit: feldman_micali_program(ctx, bit, kappa)),
)
register_protocol(
    "micali_vaikuntanathan",
    lambda kappa: (
        lambda ctx, bit: micali_vaikuntanathan_program(ctx, bit, kappa)
    ),
)
register_protocol(
    "mv_pki",
    lambda kappa: (lambda ctx, bit: mv_pki_program(ctx, bit, kappa)),
)
register_protocol(
    "dolev_strong",
    lambda: (lambda ctx, value: dolev_strong_ba_program(ctx, value)),
)
register_protocol(
    "fm_probabilistic",
    lambda: (lambda ctx, bit: fm_probabilistic_program(ctx, bit)),
)
register_protocol(
    "prox_one_third",
    lambda rounds: (
        lambda ctx, value: prox_one_third_program(ctx, value, rounds=rounds)
    ),
)
register_protocol(
    "prox_linear_half",
    lambda rounds: (
        lambda ctx, value: prox_linear_half_program(ctx, value, rounds=rounds)
    ),
)
register_protocol(
    "prox_quadratic_half",
    lambda rounds: (
        lambda ctx, value: prox_quadratic_half_program(ctx, value, rounds=rounds)
    ),
)
register_protocol(
    # One expansion step Prox_s -> Prox_{2s-1}: inputs are (value, grade)
    # pairs (the state a party carries between rounds), `slots` the
    # *source* slot count.  Used by the FIG2 expansion benchmark.
    "prox_expand_once",
    lambda slots: (
        lambda ctx, pair: prox_expand_once_program(ctx, pair[0], pair[1], slots)
    ),
)
register_protocol(
    # Lemma 1 proxcast: only the dealer's input is read.
    "proxcast",
    lambda slots, dealer, default=0: (
        lambda ctx, value: proxcast_program(ctx, value, slots, dealer, default)
    ),
)
register_protocol(
    "certificate_gradecast",
    lambda dealer, default=0: (
        lambda ctx, value: certificate_gradecast_program(
            ctx, value, dealer, default
        )
    ),
)
register_protocol(
    # Ablation axes (docs/EXPERIMENTS FIG-ABL): chunked Prox expansion
    # for t<n/3 and the generalized Prox_{2r-1} family for t<n/2.
    "ba_one_third_chunked",
    lambda kappa, chunk: (
        lambda ctx, bit: ba_one_third_chunked(ctx, bit, kappa, chunk)
    ),
)
register_protocol(
    "ba_one_half_generalized",
    lambda kappa, prox_rounds=3, family="linear": (
        lambda ctx, bit: ba_one_half_generalized(
            ctx, bit, kappa, prox_rounds, family
        )
    ),
)


def _binary_for(regime: str, kappa: int) -> ProgramFactory:
    """The binary BA matching a multivalued lift's corruption regime."""
    if regime == "one_half":
        return lambda ctx, bit: ba_one_half_program(ctx, bit, kappa)
    return lambda ctx, bit: ba_one_third_program(ctx, bit, kappa)


register_protocol(
    "turpin_coan_classic",
    lambda kappa, default="∅": (
        lambda ctx, value: turpin_coan_classic_program(
            ctx, value, _binary_for("one_third", kappa), default=default
        )
    ),
)
register_protocol(
    "multivalued_ba",
    lambda kappa, regime="one_third", default="∅": (
        lambda ctx, value: multivalued_ba_program(
            ctx, value, _binary_for(regime, kappa), regime=regime, default=default
        )
    ),
)


def _vrf_coin_factory(index=0, low=0, high=1):
    """Factory for one VRF common-coin flip (inputs are ignored)."""

    def factory(ctx, _value):
        value = yield from vrf_coin_program(ctx, index, low, high)
        return value

    return factory


def _threshold_coin_factory(index=0, low=0, high=1):
    """Factory for one threshold-signature coin flip (inputs ignored)."""

    def factory(ctx, _value):
        value = yield from threshold_coin_program(ctx, index, low, high)
        return value

    return factory


register_protocol("vrf_coin", _vrf_coin_factory)
register_protocol("threshold_coin", _threshold_coin_factory)


# ── Built-in adversaries ─────────────────────────────────────────────────

register_adversary(
    "straddle13",
    lambda factory, victims, down_group=None: OneThirdStraddleAdversary(
        list(victims), set(down_group) if down_group is not None else None
    ),
)
register_adversary(
    "straddle12",
    lambda factory, victims, iteration_rounds=3: LinearHalfStraddleAdversary(
        list(victims), iteration_rounds
    ),
)
register_adversary(
    "bare_straddle12",
    lambda factory, victims, iteration_rounds=3: BareLinearHalfStraddleAdversary(
        list(victims), iteration_rounds
    ),
)
register_adversary(
    "crash",
    lambda factory, victims, crash_round=1: CrashAdversary(
        list(victims), crash_round
    ),
)
register_adversary(
    "malformed",
    lambda factory, victims: MalformedAdversary(list(victims)),
)
register_adversary(
    "two_face",
    lambda factory, victims: TwoFaceAdversary(list(victims), factory=factory),
)
register_adversary(
    "grade_split",
    lambda factory, victims, target=0, boost_value=0: GradeSplitAdversary(
        list(victims), target=target, boost_value=boost_value
    ),
)
register_adversary(
    "withhold_coin",
    lambda factory, victims, index=0, low=0, high=1, preferred=1,
    session=None: WithholdingCoinAdversary(
        list(victims), index=index, low=low, high=high,
        preferred=preferred, session=session,
    ),
)


# ── Built-in fault scenarios ─────────────────────────────────────────────
# Adversarial networks, named like adversaries so TrialSpec can carry
# them across process boundaries.  Params arrive as plain values or the
# frozen-tuple form TrialSpec normalizes to; FaultPlan re-freezes them.


def _as_crashes(crashes) -> tuple:
    return tuple(Crash(pid=p, down=d, up=u) for p, d, u in crashes)


register_fault_plan(
    "lossy",
    lambda rate=0.1: FaultPlan(loss=rate),
)
register_fault_plan(
    "delaying",
    lambda rate=0.1, max_delay=2: FaultPlan(delay=rate, max_delay=max_delay),
)
register_fault_plan(
    "partitioned",
    lambda groups, start=1, heal=None: FaultPlan(
        partitions=(
            Partition(
                groups=tuple(tuple(g) for g in groups), start=start, heal=heal
            ),
        )
    ),
)
register_fault_plan(
    "crash_recover",
    lambda crashes: FaultPlan(crashes=_as_crashes(crashes)),
)
register_fault_plan(
    "rotating_membership",
    lambda epoch_length, disabled: FaultPlan(
        epoch_length=epoch_length,
        disabled=tuple(tuple(g) for g in disabled),
    ),
)
register_fault_plan(
    "degraded",
    # The benchmark composite: background loss/delay plus one healing
    # split (bench_fault_tolerance sweeps rate × partition length).
    lambda rate=0.05, max_delay=2, split=(), heal=None: FaultPlan(
        loss=rate,
        delay=rate,
        max_delay=max_delay,
        partitions=(
            (Partition(groups=(tuple(split),), start=1, heal=heal),)
            if split
            else ()
        ),
    ),
)
