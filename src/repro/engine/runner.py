"""Parallel Monte-Carlo execution: fan a :class:`TrialPlan` across workers.

The runner exploits the one structural fact every experiment shares:
trials are *independent* executions whose outcomes are pure functions of
their :class:`~repro.engine.plan.TrialSpec`.  So the fan-out is
embarrassingly parallel, and the contract is strict determinism:

    ``ParallelRunner(workers=k).run(plan)`` is byte-identical for every
    ``k`` — same outputs, same corrupted sets, same metrics, same order.

How that is kept true:

* every per-trial random stream (party RNGs, adversary RNG) derives from
  ``spec.seed``, fixed at plan-build time;
* key material derives from ``spec.setup_seed`` — dealing is a pure
  function of ``spec.suite_key``, cached per process, so it does not
  matter *where* a suite is dealt: a worker dealing on miss and the
  parent pre-dealing produce bit-identical keys;
* results are reassembled in plan order, whatever the completion order.

Two overheads are kept off the critical path:

* **IPC**: workers return one compact
  :class:`~repro.engine.transport.ChunkSummary` per chunk (varint-packed
  tallies and decisions) instead of pickled ``ExecutionResult`` trees;
  the parent rebuilds the dataclasses losslessly
  (``transport="pickle"`` restores the legacy payload for benchmarking).
* **Setup**: for ``backend="real"`` plans the parent pre-deals each
  distinct ``suite_key`` once — fanning distinct keys across a dealing
  pool when there are several — and broadcasts the dealt suites to
  workers through the pool initializer, so threshold-RSA setup no longer
  repeats per worker process.

Dispatch is chunked: contiguous runs of trials ship as one task so the
per-task pickling/IPC overhead amortizes, with enough chunks per worker
(4 by default) to keep the pool load-balanced when trial durations vary.

``workers=1`` (the default) executes inline — no pool, no pickling — and
is exactly the legacy serial harness.

Observability is opt-in and off the results path: ``trace_dir`` streams
one bounded-memory JSONL trace per trial (:mod:`repro.obs`) straight
from whichever process runs it to disk, and ``telemetry`` records
run/predeal/chunk scheduling spans for ``repro bench --telemetry``.
Neither changes what the trials compute — trace files are a pure
function of the spec, so serial and pooled runs write identical bytes.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..crypto.keys import CryptoSuite
from ..network.metrics import RunMetrics
from ..network.simulator import ExecutionResult, SyncSimulator
from ..network.trace import Tracer
from ..obs.metrics import MetricsRegistry, build_metrics_payload
from ..obs.sinks import JsonlTraceSink, trace_filename
from ..obs.telemetry import TelemetryWriter
from .plan import TrialPlan, TrialSpec
from .registry import build_adversary, build_fault_plan, build_protocol_factory
from .transport import ChunkSummary
from .vectorized import execute_chunk

__all__ = [
    "ParallelRunner",
    "PlanResult",
    "run_trial",
    "run_traced_trial",
    "run_measured_trial",
    "clamp_workers",
    "deal_suite",
    "default_workers",
    "predeal_suites",
    "clear_suite_cache",
]

logger = logging.getLogger(__name__)

SuiteKey = Tuple[str, int, int, int, int]


def default_workers() -> int:
    """A sensible worker count for this machine (never more than trials need)."""
    return max(1, os.cpu_count() or 1)


def clamp_workers(requested: Optional[int] = None) -> int:
    """Clamp a requested worker count to the CPUs actually present.

    ``None`` means "auto": use :func:`default_workers`.  A request above
    ``os.cpu_count()`` is clamped down — extra processes on a saturated
    machine are pure scheduling overhead (the committed 1-CPU benchmark
    artifact measured a 0.79x "speedup" from a 4-process pool) — and the
    decision is logged so sweeps record why the pool shrank.  On a 1-CPU
    machine this returns 1, which makes the runner take the inline serial
    path: no pool, no IPC, no overhead.
    """
    cpus = os.cpu_count() or 1
    if requested is None:
        return cpus
    if requested < 1:
        raise ValueError("need at least one worker")
    if requested > cpus:
        logger.info(
            "clamping workers %d -> %d (cpu_count=%d): processes beyond the "
            "CPU count are pure overhead%s",
            requested,
            cpus,
            cpus,
            "; falling back to the inline serial path" if cpus == 1 else "",
        )
        return cpus
    return requested


# Per-process cache of dealt key material.  Worker processes are reused
# across chunks, so each (backend, n, t, setup_seed, rsa_bits) combination
# is dealt at most once per worker — for the real RSA backend this is the
# difference between usable and useless parallelism.  The cache is a
# small LRU: an n-sweep with the real backend visits many (n, t)
# combinations, and pinning every dealt RSA suite for the life of a
# long-lived worker process is a memory leak.
_SUITE_CACHE: "OrderedDict[SuiteKey, CryptoSuite]" = OrderedDict()
_SUITE_CACHE_MAX = 8


def clear_suite_cache() -> None:
    """Drop every cached suite (tests, memory-sensitive sweeps)."""
    _SUITE_CACHE.clear()


def deal_suite(suite_key: SuiteKey) -> CryptoSuite:
    """Deal the key material for one ``TrialSpec.suite_key``, uncached.

    Pure function of the key — the same derivation whether it runs in a
    worker on cache miss, in the parent for a pre-dealt broadcast, or in
    a dealing-pool task — which is what keeps every execution path
    bit-identical.
    """
    import random

    backend, num_parties, max_faulty, setup_seed, rsa_bits = suite_key
    rng = random.Random(setup_seed + 0x5E7)
    if backend == "real":
        return CryptoSuite.real(num_parties, max_faulty, rng, bits=rsa_bits)
    return CryptoSuite.ideal(num_parties, max_faulty, rng)


def _cache_suite(key: SuiteKey, suite: CryptoSuite) -> None:
    """Insert one dealt suite, evicting LRU entries past the bound."""
    _SUITE_CACHE[key] = suite
    _SUITE_CACHE.move_to_end(key)
    while len(_SUITE_CACHE) > _SUITE_CACHE_MAX:
        _SUITE_CACHE.popitem(last=False)


def _suite_for(spec: TrialSpec) -> CryptoSuite:
    key = spec.suite_key
    suite = _SUITE_CACHE.get(key)
    if suite is not None:
        _SUITE_CACHE.move_to_end(key)
        return suite
    suite = deal_suite(key)
    _cache_suite(key, suite)
    return suite


def _seed_suite_cache(dealt: Sequence[Tuple[SuiteKey, CryptoSuite]]) -> None:
    """Pool-worker initializer: preload pre-dealt key material.

    Runs once per worker process before any chunk; the broadcast suites
    land in the ordinary per-process cache, so chunk execution is
    oblivious to whether a suite was pre-dealt or dealt on miss (a miss
    — e.g. after LRU eviction — re-deals bit-identically).
    """
    for key, suite in dealt:
        _cache_suite(key, suite)


def predeal_suites(
    plan: TrialPlan, workers: int = 1
) -> List[Tuple[SuiteKey, CryptoSuite]]:
    """Deal every distinct real-backend suite the plan needs, once.

    Ideal-backend suites are microseconds to deal and are left to the
    workers; real (threshold-RSA) suites are the setup bottleneck, so
    each distinct ``suite_key`` is dealt exactly once here — reusing the
    parent's cache when warm, fanning *distinct keys* across a dealing
    pool when there are several and ``workers`` allows — and the dealt
    material is returned for broadcast through the pool initializer.
    Dealing in the parent versus in a pool task is indistinguishable in
    the results: :func:`deal_suite` is a pure function of the key.
    """
    keys: List[SuiteKey] = []
    for spec in plan.trials:
        if spec.backend == "real" and spec.suite_key not in keys:
            keys.append(spec.suite_key)
    if not keys:
        return []

    dealt: "OrderedDict[SuiteKey, Optional[CryptoSuite]]" = OrderedDict()
    for key in keys:
        dealt[key] = _SUITE_CACHE.get(key)
    missing = [key for key, suite in dealt.items() if suite is None]
    if len(missing) > 1 and workers > 1:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(missing))
        ) as dealing_pool:
            for key, suite in zip(missing, dealing_pool.map(deal_suite, missing)):
                dealt[key] = suite
    else:
        for key in missing:
            dealt[key] = deal_suite(key)
    for key, suite in dealt.items():
        _cache_suite(key, suite)
    return [(key, suite) for key, suite in dealt.items()]


def run_trial(
    spec: TrialSpec,
    legacy_metrics: bool = False,
    tracer: Optional[Tracer] = None,
    collector: Optional[MetricsRegistry] = None,
) -> ExecutionResult:
    """Execute one trial in this process (suite cached per-process)."""
    factory = build_protocol_factory(spec.protocol, spec.param_dict)
    adversary = build_adversary(spec.adversary, spec.adversary_param_dict, factory)
    simulator = SyncSimulator(
        num_parties=spec.num_parties,
        max_faulty=spec.max_faulty,
        crypto=_suite_for(spec),
        adversary=adversary,
        seed=spec.seed,
        session=spec.session,
        max_rounds=spec.max_rounds,
        collect_signatures=spec.collect_signatures,
        legacy_metrics=legacy_metrics,
        tracer=tracer,
        faults=build_fault_plan(spec.faults, spec.fault_param_dict),
        collector=collector,
    )
    return simulator.run(factory, list(spec.inputs))


def run_traced_trial(
    spec: TrialSpec,
    trace_dir: str,
    index: int,
    legacy_metrics: bool = False,
    collector: Optional[MetricsRegistry] = None,
) -> ExecutionResult:
    """Run one trial with a streaming per-trial trace attached.

    The trace lands in ``trace_dir`` under :func:`trace_filename`
    (``trial-00042.trace.jsonl``), headed with enough metadata to
    identify the spec.  Memory stays bounded — records stream straight
    to disk — and the file content is a pure function of the spec, so
    serial and pooled runs write byte-identical traces.

    If the trial raises, the half-written trace file is removed before
    the exception propagates: a truncated JSONL file fails
    :func:`repro.obs.replay.load_trace` anyway, and leaving it in
    ``trace_dir`` would make a failed pooled chunk litter the directory
    with orphans indistinguishable (by name) from good traces.  Trials
    that completed before the failure keep their complete files.
    """
    meta = {
        "index": index,
        "protocol": spec.protocol,
        "adversary": spec.adversary,
        "n": spec.num_parties,
        "t": spec.max_faulty,
        "seed": spec.seed,
        "session": spec.session,
    }
    if spec.faults is not None:
        meta["faults"] = spec.faults
    sink = JsonlTraceSink(os.path.join(trace_dir, trace_filename(index)), meta=meta)
    tracer = Tracer(sink)
    try:
        result = run_trial(spec, legacy_metrics, tracer=tracer, collector=collector)
    except BaseException:
        tracer.close()
        try:
            os.remove(sink.path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    tracer.close()
    return result


def run_measured_trial(
    spec: TrialSpec,
    trace_dir: Optional[str] = None,
    index: int = 0,
    legacy_metrics: bool = False,
) -> Tuple[ExecutionResult, MetricsRegistry]:
    """Run one trial with a fresh metrics collector attached.

    Returns the execution result plus its finalized per-trial
    :class:`~repro.obs.metrics.MetricsRegistry`.  The collector hook
    never consumes randomness, so the result is bit-identical to
    :func:`run_trial` for the same spec.
    """
    registry = MetricsRegistry()
    if trace_dir is not None:
        result = run_traced_trial(
            spec, trace_dir, index, legacy_metrics, collector=registry
        )
    else:
        result = run_trial(spec, legacy_metrics, collector=registry)
    registry.finalize_trial(result)
    return result, registry


def _run_chunk(
    chunk: Sequence[Tuple[int, TrialSpec]],
    legacy_metrics: bool,
    compact: bool = False,
    trace_dir: Optional[str] = None,
    backend: str = "object",
    metrics: bool = False,
) -> Union[List[Tuple[int, ExecutionResult]], ChunkSummary]:
    """Worker entry point: run a contiguous slice of the plan.

    With ``compact`` the whole chunk returns as one packed
    :class:`ChunkSummary` — the parent rebuilds the ``ExecutionResult``
    trees from the specs it already holds, so only tallies and decisions
    cross the pipe.  With ``trace_dir`` each trial streams a per-trial
    JSONL trace into that directory as it runs (traces never ride the
    result pipe).  ``backend="vector"`` routes the chunk through the
    batch-vectorized executor (unsupported specs fall back per-spec to
    the object simulator inside the chunk); results and packing are
    bit-identical either way.  With ``metrics`` each trial collects a
    per-trial registry, packed into the summary's ``metrics`` field
    (metrics runs require the compact transport — enforced upstream).
    """
    registries: Dict[int, MetricsRegistry] = {}
    if backend == "vector":
        pairs, _ = execute_chunk(
            chunk, legacy_metrics, trace_dir,
            metrics=registries if metrics else None,
        )
    elif metrics:
        pairs = []
        for index, spec in chunk:
            result, registry = run_measured_trial(
                spec, trace_dir, index, legacy_metrics
            )
            registries[index] = registry
            pairs.append((index, result))
    elif trace_dir is None:
        pairs = [(index, run_trial(spec, legacy_metrics)) for index, spec in chunk]
    else:
        pairs = [
            (index, run_traced_trial(spec, trace_dir, index, legacy_metrics))
            for index, spec in chunk
        ]
    if compact:
        return ChunkSummary.pack(pairs, metrics=registries if metrics else None)
    return pairs


def _run_chunk_timed(
    chunk: Sequence[Tuple[int, TrialSpec]],
    legacy_metrics: bool,
    compact: bool = False,
    trace_dir: Optional[str] = None,
    backend: str = "object",
    metrics: bool = False,
    profile_path: Optional[str] = None,
) -> Tuple[float, Union[List[Tuple[int, ExecutionResult]], ChunkSummary]]:
    """Worker entry point for telemetry runs: payload plus in-worker
    execution seconds.  Timed *inside* the worker because the parent only
    sees dispatch→completion spans, which include queue wait — summing
    those would overstate busy-time whenever chunks outnumber workers.

    With ``profile_path`` the chunk additionally runs under ``cProfile``
    and dumps its stats there — the profiled region is exactly the timed
    region, so profile seconds attribute directly to the chunk's
    ``chunk_complete`` telemetry span."""
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        started = time.perf_counter()
        profiler.enable()
        try:
            payload = _run_chunk(
                chunk, legacy_metrics, compact, trace_dir, backend, metrics
            )
        finally:
            profiler.disable()
        # The timed region is exactly the profiled region — the stats
        # dump stays outside it so profile seconds attribute cleanly to
        # the chunk's telemetry span.
        seconds = round(time.perf_counter() - started, 6)
        profiler.dump_stats(profile_path)
        return seconds, payload
    started = time.perf_counter()
    payload = _run_chunk(
        chunk, legacy_metrics, compact, trace_dir, backend, metrics
    )
    return round(time.perf_counter() - started, 6), payload


def _safe_label(name: str) -> str:
    """Plan name reduced to filename-safe characters for profile dumps."""
    return "".join(c if c.isalnum() or c in "-_." else "-" for c in name) or "plan"


def _fault_field(plan: TrialPlan) -> dict:
    """``run_start`` telemetry extras: fault scenarios the plan sweeps.

    Empty for fault-free plans, so their spans keep the historical shape.
    """
    names = sorted({spec.faults for spec in plan.trials if spec.faults is not None})
    return {"faults": names} if names else {}


@dataclass
class PlanResult:
    """All trial outcomes of one plan run, in plan order."""

    plan: TrialPlan
    results: List[ExecutionResult]
    workers: int
    wall_seconds: float
    chunk_size: int = 1
    transport: str = "compact"
    trace_dir: Optional[str] = None
    # Per-trial metrics registries in plan order, present iff the runner
    # was built with metrics=True.  Deterministic for a given (seed,
    # plan): serial, pooled and vector-fallback runs all produce equal
    # registries (pinned by tests/engine/test_metrics_engine.py).
    trial_metrics: Optional[List[MetricsRegistry]] = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ExecutionResult]:
        return iter(self.results)

    def disagreement_rate(self) -> float:
        """Fraction of trials whose honest parties did not all agree."""
        if not self.results:
            raise ValueError("no results")
        failures = sum(1 for result in self.results if not result.honest_agree())
        return failures / len(self.results)

    def merged_metrics(self) -> RunMetrics:
        """Plan-wide aggregate of every trial's metrics."""
        return RunMetrics.merged(result.metrics for result in self.results)

    def mean_rounds(self) -> float:
        """Average simulated rounds per trial."""
        if not self.results:
            raise ValueError("no results")
        return sum(result.metrics.rounds for result in self.results) / len(
            self.results
        )

    def metrics_registry(self) -> MetricsRegistry:
        """Plan-wide merge of every trial's metrics registry."""
        if self.trial_metrics is None:
            raise ValueError(
                "run was not collected with metrics=True; no registries"
            )
        return MetricsRegistry.merged(self.trial_metrics)

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``repro-metrics/1`` artifact document for this run.

        Metadata is derived from the plan alone — never worker count,
        backend or wall clock — so the document is identical across
        serial, pooled and vector runs of the same ``(seed, plan)``.
        """
        if self.trial_metrics is None:
            raise ValueError(
                "run was not collected with metrics=True; no registries"
            )
        configs: "OrderedDict[str, Tuple[Dict[str, Any], MetricsRegistry]]"
        configs = OrderedDict()
        for name, indices in self.plan.configs().items():
            spec = self.plan.trials[indices[0]]
            config_meta = {
                "protocol": spec.protocol,
                "adversary": spec.adversary,
                "num_parties": spec.num_parties,
                "max_faulty": spec.max_faulty,
                "backend": spec.backend,
                "faults": spec.faults,
                "trials": len(indices),
            }
            configs[name] = (
                config_meta,
                MetricsRegistry.merged(
                    self.trial_metrics[index] for index in indices
                ),
            )
        meta = {"plan": self.plan.name, "trials": len(self.plan)}
        return build_metrics_payload(meta, configs)


class ParallelRunner:
    """Runs :class:`TrialPlan`s, serially or across worker processes.

    ``workers=1`` executes inline; ``workers>1`` fans chunks out over a
    ``ProcessPoolExecutor``.  ``transport`` selects what workers send
    back: ``"compact"`` (default) ships one packed :class:`ChunkSummary`
    per chunk, rebuilt losslessly on the parent side; ``"pickle"`` ships
    the full ``ExecutionResult`` trees (the legacy payload, kept for
    benchmarking the difference).  ``legacy_metrics=True`` selects the
    pre-optimization simulator metrics path (baseline benchmarking only).
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        legacy_metrics: bool = False,
        transport: str = "compact",
        trace_dir: Optional[str] = None,
        telemetry: Optional[TelemetryWriter] = None,
        backend: str = "object",
        metrics: bool = False,
        profile_dir: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if transport not in ("compact", "pickle"):
            raise ValueError(
                f"transport must be 'compact' or 'pickle', got {transport!r}"
            )
        if backend not in ("object", "vector"):
            raise ValueError(
                f"backend must be 'object' or 'vector', got {backend!r}"
            )
        if metrics and legacy_metrics:
            raise ValueError(
                "metrics collection does not support the legacy baseline"
            )
        if metrics and transport == "pickle":
            raise ValueError(
                "metrics collection requires the compact transport"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.legacy_metrics = legacy_metrics
        self.transport = transport
        self.trace_dir = trace_dir
        self.telemetry = telemetry
        # backend="vector" batches same-config supported trials through
        # repro.engine.vectorized; everything else (and every trial, with
        # "object") takes the reference simulator.  Bit-identical results.
        self.backend = backend
        # metrics=True attaches a per-trial MetricsRegistry collector to
        # every simulator (repro.obs.metrics); registries ride back on
        # the compact transport and land on PlanResult.trial_metrics.
        self.metrics = metrics
        # profile_dir wraps worker chunks (or the inline run) in cProfile
        # and dumps one .pstats file per chunk there (repro bench
        # --profile); profiling never touches what the trials compute.
        self.profile_dir = profile_dir

    def _run_one(self, index: int, spec: TrialSpec) -> ExecutionResult:
        """One inline trial, traced iff the runner collects traces."""
        if self.trace_dir is not None:
            return run_traced_trial(
                spec, self.trace_dir, index, self.legacy_metrics
            )
        return run_trial(spec, self.legacy_metrics)

    def _prepare_trace_dir(self) -> None:
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
        if self.profile_dir is not None:
            os.makedirs(self.profile_dir, exist_ok=True)

    def _trial_metrics_list(
        self, sink: Optional[Dict[int, MetricsRegistry]], total: int
    ) -> Optional[List[MetricsRegistry]]:
        if sink is None:
            return None
        missing = [index for index in range(total) if index not in sink]
        if missing:  # pragma: no cover - would indicate a dropped chunk
            raise RuntimeError(f"trials {missing} produced no metrics")
        return [sink[index] for index in range(total)]

    def run(self, plan: TrialPlan) -> PlanResult:
        """Execute every trial; results return in plan order."""
        started = time.perf_counter()
        self._prepare_trace_dir()
        tele = self.telemetry
        sink: Optional[Dict[int, MetricsRegistry]] = {} if self.metrics else None
        if self.workers == 1 or len(plan) <= 1:
            if tele is not None:
                tele.emit(
                    "run_start", label=plan.name, mode="inline",
                    workers=1, trials=len(plan), backend=self.backend,
                    **_fault_field(plan),
                )
            profiler = None
            if self.profile_dir is not None:
                import cProfile

                profiler = cProfile.Profile()
                profiler.enable()
            try:
                results = [
                    result for _, result in self._run_inline(plan, tele, sink)
                ]
            finally:
                if profiler is not None:
                    profiler.disable()
            if profiler is not None:
                path = os.path.join(
                    self.profile_dir, f"inline-{_safe_label(plan.name)}.pstats"
                )
                profiler.dump_stats(path)
                if tele is not None:
                    tele.emit(
                        "profile", label=plan.name, path=path,
                        seconds=round(time.perf_counter() - started, 6),
                    )
            if tele is not None:
                tele.emit("run_complete", label=plan.name, trials=len(results))
            return PlanResult(
                plan=plan,
                results=results,
                workers=1,
                wall_seconds=time.perf_counter() - started,
                transport=self.transport,
                trace_dir=self.trace_dir,
                trial_metrics=self._trial_metrics_list(sink, len(plan)),
            )

        chunk_size = self.chunk_size or self._auto_chunk_size(len(plan))
        collected: List[Optional[ExecutionResult]] = [None] * len(plan)
        for index, result in self._iter_pooled(plan, chunk_size, sink):
            collected[index] = result
        missing = [i for i, result in enumerate(collected) if result is None]
        if missing:  # pragma: no cover - pool misbehavior, not reachable normally
            raise RuntimeError(f"trials {missing} produced no result")
        return PlanResult(
            plan=plan,
            results=collected,  # type: ignore[arg-type]
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            chunk_size=chunk_size,
            transport=self.transport,
            trace_dir=self.trace_dir,
            trial_metrics=self._trial_metrics_list(sink, len(plan)),
        )

    def run_iter(
        self,
        plan: TrialPlan,
        metrics_sink: Optional[Dict[int, MetricsRegistry]] = None,
    ) -> Iterator[Tuple[int, ExecutionResult]]:
        """Stream ``(plan_index, result)`` pairs as trials complete.

        The streaming form of :meth:`run`: chunks are yielded in
        *completion* order (plan order within a chunk), so a consumer —
        the adaptive runner, a progress bar, an incremental estimator —
        sees results as soon as any worker finishes rather than after
        the whole plan.  Re-running the pairs through a plan-indexed
        buffer reproduces :meth:`run` exactly; that is how :meth:`run`
        is implemented.

        A worker exception is re-raised at the first completed failure
        and outstanding work is cancelled — late chunks cannot hide an
        early crash behind hours of remaining work.

        With ``metrics=True`` pass ``metrics_sink``: per-trial registries
        land there keyed by plan index as their chunks complete.
        """
        if self.metrics and metrics_sink is None:
            raise ValueError(
                "metrics=True streaming needs a metrics_sink (or use run())"
            )
        sink = metrics_sink if self.metrics else None
        self._prepare_trace_dir()
        if self.workers == 1 or len(plan) <= 1:
            tele = self.telemetry
            if tele is not None:
                tele.emit(
                    "run_start", label=plan.name, mode="inline",
                    workers=1, trials=len(plan), backend=self.backend,
                    **_fault_field(plan),
                )
            yield from self._run_inline(plan, tele, sink)
            if tele is not None:
                tele.emit("run_complete", label=plan.name, trials=len(plan))
            return
        chunk_size = self.chunk_size or self._auto_chunk_size(len(plan))
        yield from self._iter_pooled(plan, chunk_size, sink)

    def _run_inline(
        self,
        plan: TrialPlan,
        tele: Optional[TelemetryWriter],
        sink: Optional[Dict[int, MetricsRegistry]] = None,
    ) -> Iterator[Tuple[int, ExecutionResult]]:
        """Inline (no-pool) execution, in plan order.

        The vector backend runs the whole plan as one chunk — that is
        what lets a serial ``repro bench --vector`` batch each
        configuration's trials in lockstep — and emits one
        ``vector_batch`` telemetry span describing the batching.
        """
        if self.backend == "vector":
            started = time.perf_counter()
            pairs, stats = execute_chunk(
                list(enumerate(plan.trials)), self.legacy_metrics, self.trace_dir,
                metrics=sink,
            )
            if tele is not None:
                tele.emit(
                    "vector_batch", label=plan.name,
                    batched=stats["batched"], fallback=stats["fallback"],
                    batches=len(stats["batches"]),
                    seconds=round(time.perf_counter() - started, 6),
                    fallback_reasons=stats.get("fallback_reasons", {}),
                )
                tele.emit(
                    "probe_cache", label=plan.name,
                    hits=stats.get("cache_hits", 0),
                    misses=stats.get("cache_misses", 0),
                )
            yield from pairs
            return
        for index, spec in enumerate(plan.trials):
            if sink is not None:
                result, registry = run_measured_trial(
                    spec, self.trace_dir, index, self.legacy_metrics
                )
                sink[index] = registry
                yield index, result
            else:
                yield index, self._run_one(index, spec)

    def _iter_pooled(
        self,
        plan: TrialPlan,
        chunk_size: int,
        sink: Optional[Dict[int, MetricsRegistry]] = None,
    ) -> Iterator[Tuple[int, ExecutionResult]]:
        """Fan chunks across the pool; yield results as chunks complete."""
        indexed = list(enumerate(plan.trials))
        chunks = [
            indexed[start : start + chunk_size]
            for start in range(0, len(indexed), chunk_size)
        ]
        compact = self.transport == "compact"
        tele = self.telemetry
        if tele is not None:
            tele.emit(
                "run_start", label=plan.name, mode="pool",
                workers=self.workers, trials=len(plan),
                chunks=len(chunks), chunk_size=chunk_size,
                transport=self.transport, **_fault_field(plan),
            )
        predeal_started = time.perf_counter()
        dealt = predeal_suites(plan, self.workers)
        if tele is not None and dealt:
            tele.emit(
                "predeal", suites=len(dealt),
                seconds=round(time.perf_counter() - predeal_started, 6),
            )
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_seed_suite_cache,
            initargs=(dealt,),
        )
        timed = tele is not None or self.profile_dir is not None
        futures = []
        dispatched = {}
        profile_paths = {}
        for number, chunk in enumerate(chunks):
            if timed:
                profile_path = None
                if self.profile_dir is not None:
                    profile_path = os.path.join(
                        self.profile_dir, f"chunk-{number:05d}.pstats"
                    )
                future = pool.submit(
                    _run_chunk_timed, chunk, self.legacy_metrics, compact,
                    self.trace_dir, self.backend, self.metrics, profile_path,
                )
                profile_paths[future] = profile_path
            else:
                future = pool.submit(
                    _run_chunk, chunk, self.legacy_metrics, compact,
                    self.trace_dir, self.backend, self.metrics,
                )
            futures.append(future)
            dispatched[future] = (number, tele.elapsed() if tele else 0.0)
            if tele is not None:
                tele.emit(
                    "chunk_dispatch", chunk=number, trials=len(chunk),
                    first_index=chunk[0][0],
                )
        try:
            for future in as_completed(futures):
                # .result() re-raises the first worker failure promptly;
                # the finally block then cancels everything still queued.
                payload = future.result()
                if timed:
                    seconds, payload = payload
                    number, opened = dispatched[future]
                    if tele is not None:
                        tele.emit(
                            "chunk_complete", chunk=number, seconds=seconds,
                            span=round(tele.elapsed() - opened, 6),
                            payload_bytes=len(pickle.dumps(payload)),
                        )
                        profile_path = profile_paths.get(future)
                        if profile_path is not None:
                            tele.emit(
                                "profile", chunk=number, path=profile_path,
                                seconds=seconds,
                            )
                if compact:
                    if sink is not None:
                        sink.update(payload.unpack_metrics())
                    yield from payload.unpack(plan.trials)
                else:
                    for index, result in payload:
                        yield index, result
            if tele is not None:
                tele.emit("run_complete", label=plan.name, trials=len(plan))
        finally:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)

    def _auto_chunk_size(self, total: int) -> int:
        """~4 chunks per worker: amortizes IPC, keeps the pool balanced."""
        return max(1, total // (self.workers * 4))
