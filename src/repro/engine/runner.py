"""Parallel Monte-Carlo execution: fan a :class:`TrialPlan` across workers.

The runner exploits the one structural fact every experiment shares:
trials are *independent* executions whose outcomes are pure functions of
their :class:`~repro.engine.plan.TrialSpec`.  So the fan-out is
embarrassingly parallel, and the contract is strict determinism:

    ``ParallelRunner(workers=k).run(plan)`` is byte-identical for every
    ``k`` — same outputs, same corrupted sets, same metrics, same order.

How that is kept true:

* every per-trial random stream (party RNGs, adversary RNG) derives from
  ``spec.seed``, fixed at plan-build time;
* key material derives from ``spec.setup_seed`` — each worker process
  deals it locally (once, via a per-process cache keyed by
  ``spec.suite_key``) instead of receiving pickled keys, because for the
  real RSA backend dealing dominates runtime and for both backends the
  derivation is deterministic;
* results are reassembled in plan order, whatever the completion order.

Dispatch is chunked: contiguous runs of trials ship as one task so the
per-task pickling/IPC overhead amortizes, with enough chunks per worker
(4 by default) to keep the pool load-balanced when trial durations vary.

``workers=1`` (the default) executes inline — no pool, no pickling — and
is exactly the legacy serial harness.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..crypto.keys import CryptoSuite
from ..network.metrics import RunMetrics
from ..network.simulator import ExecutionResult, SyncSimulator
from .plan import TrialPlan, TrialSpec
from .registry import build_adversary, build_protocol_factory

__all__ = [
    "ParallelRunner",
    "PlanResult",
    "run_trial",
    "default_workers",
    "clear_suite_cache",
]


def default_workers() -> int:
    """A sensible worker count for this machine (never more than trials need)."""
    return max(1, os.cpu_count() or 1)


# Per-process cache of dealt key material.  Worker processes are reused
# across chunks, so each (backend, n, t, setup_seed) combination is dealt
# at most once per worker — for the real RSA backend this is the
# difference between usable and useless parallelism.  The cache is a
# small LRU: an n-sweep with the real backend visits many (n, t)
# combinations, and pinning every dealt RSA suite for the life of a
# long-lived worker process is a memory leak.
_SUITE_CACHE: "OrderedDict[Tuple[str, int, int, int], CryptoSuite]" = OrderedDict()
_SUITE_CACHE_MAX = 8


def clear_suite_cache() -> None:
    """Drop every cached suite (tests, memory-sensitive sweeps)."""
    _SUITE_CACHE.clear()


def _suite_for(spec: TrialSpec) -> CryptoSuite:
    import random

    key = spec.suite_key
    suite = _SUITE_CACHE.get(key)
    if suite is not None:
        _SUITE_CACHE.move_to_end(key)
        return suite
    rng = random.Random(spec.setup_seed + 0x5E7)
    if spec.backend == "real":
        suite = CryptoSuite.real(spec.num_parties, spec.max_faulty, rng)
    else:
        suite = CryptoSuite.ideal(spec.num_parties, spec.max_faulty, rng)
    _SUITE_CACHE[key] = suite
    while len(_SUITE_CACHE) > _SUITE_CACHE_MAX:
        _SUITE_CACHE.popitem(last=False)
    return suite


def run_trial(spec: TrialSpec, legacy_metrics: bool = False) -> ExecutionResult:
    """Execute one trial in this process (suite cached per-process)."""
    factory = build_protocol_factory(spec.protocol, spec.param_dict)
    adversary = build_adversary(spec.adversary, spec.adversary_param_dict, factory)
    simulator = SyncSimulator(
        num_parties=spec.num_parties,
        max_faulty=spec.max_faulty,
        crypto=_suite_for(spec),
        adversary=adversary,
        seed=spec.seed,
        session=spec.session,
        max_rounds=spec.max_rounds,
        collect_signatures=spec.collect_signatures,
        legacy_metrics=legacy_metrics,
    )
    return simulator.run(factory, list(spec.inputs))


def _run_chunk(
    chunk: Sequence[Tuple[int, TrialSpec]], legacy_metrics: bool
) -> List[Tuple[int, ExecutionResult]]:
    """Worker entry point: run a contiguous slice of the plan."""
    return [(index, run_trial(spec, legacy_metrics)) for index, spec in chunk]


@dataclass
class PlanResult:
    """All trial outcomes of one plan run, in plan order."""

    plan: TrialPlan
    results: List[ExecutionResult]
    workers: int
    wall_seconds: float
    chunk_size: int = 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def disagreement_rate(self) -> float:
        """Fraction of trials whose honest parties did not all agree."""
        if not self.results:
            raise ValueError("no results")
        failures = sum(1 for result in self.results if not result.honest_agree())
        return failures / len(self.results)

    def merged_metrics(self) -> RunMetrics:
        """Plan-wide aggregate of every trial's metrics."""
        return RunMetrics.merged(result.metrics for result in self.results)

    def mean_rounds(self) -> float:
        """Average simulated rounds per trial."""
        if not self.results:
            raise ValueError("no results")
        return sum(result.metrics.rounds for result in self.results) / len(
            self.results
        )


class ParallelRunner:
    """Runs :class:`TrialPlan`s, serially or across worker processes.

    ``workers=1`` executes inline; ``workers>1`` fans chunks out over a
    ``ProcessPoolExecutor``.  ``legacy_metrics=True`` selects the
    pre-optimization simulator metrics path (baseline benchmarking only).
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        legacy_metrics: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.workers = workers
        self.chunk_size = chunk_size
        self.legacy_metrics = legacy_metrics

    def run(self, plan: TrialPlan) -> PlanResult:
        """Execute every trial; results return in plan order."""
        started = time.perf_counter()
        if self.workers == 1 or len(plan) <= 1:
            results = [
                run_trial(spec, self.legacy_metrics) for spec in plan.trials
            ]
            return PlanResult(
                plan=plan,
                results=results,
                workers=1,
                wall_seconds=time.perf_counter() - started,
            )

        chunk_size = self.chunk_size or self._auto_chunk_size(len(plan))
        collected: List[Optional[ExecutionResult]] = [None] * len(plan)
        for index, result in self._iter_pooled(plan, chunk_size):
            collected[index] = result
        missing = [i for i, result in enumerate(collected) if result is None]
        if missing:  # pragma: no cover - pool misbehavior, not reachable normally
            raise RuntimeError(f"trials {missing} produced no result")
        return PlanResult(
            plan=plan,
            results=collected,  # type: ignore[arg-type]
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            chunk_size=chunk_size,
        )

    def run_iter(
        self, plan: TrialPlan
    ) -> Iterator[Tuple[int, ExecutionResult]]:
        """Stream ``(plan_index, result)`` pairs as trials complete.

        The streaming form of :meth:`run`: chunks are yielded in
        *completion* order (plan order within a chunk), so a consumer —
        the adaptive runner, a progress bar, an incremental estimator —
        sees results as soon as any worker finishes rather than after
        the whole plan.  Re-running the pairs through a plan-indexed
        buffer reproduces :meth:`run` exactly; that is how :meth:`run`
        is implemented.

        A worker exception is re-raised at the first completed failure
        and outstanding work is cancelled — late chunks cannot hide an
        early crash behind hours of remaining work.
        """
        if self.workers == 1 or len(plan) <= 1:
            for index, spec in enumerate(plan.trials):
                yield index, run_trial(spec, self.legacy_metrics)
            return
        chunk_size = self.chunk_size or self._auto_chunk_size(len(plan))
        yield from self._iter_pooled(plan, chunk_size)

    def _iter_pooled(
        self, plan: TrialPlan, chunk_size: int
    ) -> Iterator[Tuple[int, ExecutionResult]]:
        """Fan chunks across the pool; yield results as chunks complete."""
        indexed = list(enumerate(plan.trials))
        chunks = [
            indexed[start : start + chunk_size]
            for start in range(0, len(indexed), chunk_size)
        ]
        pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = [
            pool.submit(_run_chunk, chunk, self.legacy_metrics)
            for chunk in chunks
        ]
        try:
            for future in as_completed(futures):
                # .result() re-raises the first worker failure promptly;
                # the finally block then cancels everything still queued.
                for index, result in future.result():
                    yield index, result
        finally:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=True, cancel_futures=True)

    def _auto_chunk_size(self, total: int) -> int:
        """~4 chunks per worker: amortizes IPC, keeps the pool balanced."""
        return max(1, total // (self.workers * 4))
