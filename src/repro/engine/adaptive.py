"""Adaptive trial allocation: stop configs when the statistics decide.

The fixed-budget :class:`~repro.engine.runner.ParallelRunner` spends the
same number of trials on every configuration of a sweep, even after a
config's Wilson interval has clearly separated from (or confidently
matched) the bound under test.  For error-probability sweeps — where
every table is a Bernoulli-rate estimate against ``1/(s-1)`` or
``2^-κ`` — that is pure waste, and for ``backend="real"`` sweeps it is
the difference between affordable and not.

:class:`AdaptiveRunner` executes a plan's configurations in incremental
batches and feeds each batch into a per-config
:class:`~repro.analysis.stats.SequentialEstimate`:

* a config stops early once its interval *excludes* the bound (proven
  better or proven violated) or *confidently contains* it (the
  tight-adversary case, where the bound is realized exactly);
* the freed budget flows to the configs with the widest intervals —
  each allocation round hands batches to the noisiest undecided configs
  first, so hard configs (tiny bounds, slow separation) can run past
  the fixed-mode trial count up to their per-config cap.

Determinism is preserved by construction.  Scheduling decisions are
made only at round boundaries from the accumulated per-config counts —
which are order-independent — while *within* a round batches stream
through ``as_completed`` futures, so worker count and completion order
never change which trials run or what they return.  With early stopping
disabled and a budget covering the plan, every trial runs and the
reassembled results are byte-identical to ``ParallelRunner.run`` (pinned
by ``tests/engine/test_adaptive.py``).
"""

from __future__ import annotations

import pickle
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..analysis.stats import _Z995, SequentialEstimate
from ..network.simulator import ExecutionResult
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import TelemetryWriter
from .plan import TrialPlan, TrialSpec
from .runner import (
    _run_chunk,
    _run_chunk_timed,
    _seed_suite_cache,
    predeal_suites,
    run_measured_trial,
    run_trial,
)
from .vectorized import execute_chunk

__all__ = ["AdaptiveRunner", "AdaptiveResult", "ConfigOutcome"]

BoundSpec = Union[float, Mapping[str, float]]


def _disagreement(result: ExecutionResult) -> bool:
    """Default event: the trial's honest parties failed to agree."""
    return not result.honest_agree()


@dataclass
class ConfigOutcome:
    """One configuration's allocation record and final verdict."""

    name: str
    indices: Tuple[int, ...]
    estimate: SequentialEstimate
    stopped_early: bool = False

    @property
    def bound(self) -> float:
        return self.estimate.bound

    @property
    def executed(self) -> int:
        """Trials actually run (≤ the per-config cap ``len(indices)``)."""
        return self.estimate.trials

    @property
    def hits(self) -> int:
        return self.estimate.hits

    @property
    def rate(self) -> float:
        return self.estimate.rate

    @property
    def interval(self) -> Tuple[float, float]:
        return self.estimate.interval

    @property
    def status(self) -> str:
        return self.estimate.status

    @property
    def accepted(self) -> bool:
        return self.estimate.accepted


@dataclass
class AdaptiveResult:
    """Everything one adaptive run produced.

    ``results`` is plan-ordered with ``None`` for trials the allocator
    never ran; when nothing stopped early and the budget covered the
    plan it is exactly ``ParallelRunner.run(plan).results``.
    """

    plan: TrialPlan
    results: List[Optional[ExecutionResult]]
    configs: "OrderedDict[str, ConfigOutcome]"
    workers: int
    wall_seconds: float
    budget: int
    spent: int
    # Per-trial metrics registries, plan-ordered with None for trials
    # the allocator never ran; present iff the runner was built with
    # metrics=True.
    trial_metrics: Optional[List[Optional[MetricsRegistry]]] = None

    def __len__(self) -> int:
        return len(self.results)

    @property
    def saved(self) -> int:
        """Trials the budget allowed but the statistics made unnecessary."""
        return self.budget - self.spent

    def verdicts(self) -> Dict[str, bool]:
        """Per-config accept/reject against its bound."""
        return {name: outcome.accepted for name, outcome in self.configs.items()}

    def executed_results(self) -> List[ExecutionResult]:
        """The results that exist, still in plan order."""
        return [result for result in self.results if result is not None]

    def metrics_registry(self) -> MetricsRegistry:
        """Merge of every executed trial's metrics registry."""
        if self.trial_metrics is None:
            raise ValueError(
                "run was not collected with metrics=True; no registries"
            )
        return MetricsRegistry.merged(
            registry for registry in self.trial_metrics if registry is not None
        )


class AdaptiveRunner:
    """Budget-aware streaming executor for :class:`TrialPlan` sweeps.

    Parameters
    ----------
    workers:
        Process count; ``1`` executes inline like ``ParallelRunner``.
    batch_size:
        Trials handed to one config per allocation round.  Smaller
        batches stop sooner after the statistics are decided but pay
        more scheduling overhead.
    early_stop:
        ``False`` disables the separation predicate entirely: every
        config runs until its cap or the budget, which (budget
        permitting) reproduces ``ParallelRunner`` byte-for-byte.
    transport:
        What pool workers send back: ``"compact"`` (default) ships one
        packed :class:`~repro.engine.transport.ChunkSummary` per batch,
        rebuilt losslessly on the parent side; ``"pickle"`` ships the
        full ``ExecutionResult`` trees (legacy payload, benchmarking).
    telemetry:
        Optional :class:`~repro.obs.TelemetryWriter`.  When set, every
        allocation round emits an ``adaptive_round`` record (which
        configs got batches, interval widths, remaining budget) plus
        per-batch chunk dispatch/complete spans, and the run closes with
        ``adaptive_complete`` — the scheduler's decisions become
        auditable after the fact (``repro bench --telemetry``).
    min_trials / min_hits / precision / z:
        Forwarded to each config's :class:`SequentialEstimate`.  The
        defaults are deliberately more conservative than the reporting
        intervals: every batch is another look at the data, so stopping
        decisions use 99.5% intervals (``z≈2.807``) after at least 32
        trials — and a violation verdict needs at least ``min_hits``
        observed failures, so a rare-event config is never rejected on
        a couple of occurrences that clustered early in its sample.
        Together these keep the sequential false-exclusion rate low
        enough that early-stopped verdicts match fixed-budget verdicts.
    """

    def __init__(
        self,
        workers: int = 1,
        batch_size: int = 25,
        early_stop: bool = True,
        min_trials: int = 32,
        min_hits: int = 5,
        precision: Optional[float] = None,
        z: float = _Z995,
        transport: str = "compact",
        telemetry: Optional[TelemetryWriter] = None,
        backend: str = "object",
        metrics: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if transport not in ("compact", "pickle"):
            raise ValueError(
                f"transport must be 'compact' or 'pickle', got {transport!r}"
            )
        if backend not in ("object", "vector"):
            raise ValueError(
                f"backend must be 'object' or 'vector', got {backend!r}"
            )
        if metrics and transport == "pickle":
            raise ValueError(
                "metrics collection requires the compact transport"
            )
        self.workers = workers
        self.batch_size = batch_size
        self.early_stop = early_stop
        self.min_trials = min_trials
        self.min_hits = min_hits
        self.precision = precision
        self.z = z
        self.transport = transport
        self.telemetry = telemetry
        # Same semantics as ParallelRunner: "vector" batches each
        # allocation-round batch through the lockstep executor (per-spec
        # fallback inside), with bit-identical results either way.
        self.backend = backend
        # Same semantics as ParallelRunner: per-trial MetricsRegistry
        # collection, landing on AdaptiveResult.trial_metrics.
        self.metrics = metrics
        self._chunk_seq = 0

    def run(
        self,
        plan: TrialPlan,
        bounds: BoundSpec,
        budget: Optional[int] = None,
        event: Callable[[ExecutionResult], bool] = _disagreement,
    ) -> AdaptiveResult:
        """Execute ``plan`` adaptively against per-config ``bounds``.

        ``bounds`` is one float for every config or a mapping keyed by
        config name (see :meth:`TrialPlan.configs`); each config's trial
        cap is its spec count in the plan.  ``budget`` caps the *total*
        trials across configs (default: the whole plan) — budget freed
        by early-stopped configs is what lets wide-interval configs run
        past ``budget / num_configs``.  ``event`` maps a trial result to
        the Bernoulli outcome being estimated (default: honest
        disagreement).
        """
        started = time.perf_counter()
        groups = plan.configs()
        if not groups:
            raise ValueError("plan has no trials")
        budget = len(plan) if budget is None else min(budget, len(plan))
        if budget < 1:
            raise ValueError("budget must be positive")

        outcomes: "OrderedDict[str, ConfigOutcome]" = OrderedDict()
        for name, indices in groups.items():
            outcomes[name] = ConfigOutcome(
                name=name,
                indices=indices,
                estimate=self.estimate_for(name, bounds),
            )
        order = {name: position for position, name in enumerate(groups)}
        cursors = {name: 0 for name in groups}
        owner = {
            index: name for name, indices in groups.items() for index in indices
        }
        results: List[Optional[ExecutionResult]] = [None] * len(plan)
        sink: Optional[Dict[int, MetricsRegistry]] = {} if self.metrics else None
        spent = 0
        rounds = 0
        tele = self.telemetry
        if tele is not None:
            tele.emit(
                "run_start", label=plan.name,
                mode="pool" if self.workers > 1 else "inline",
                workers=self.workers, trials=len(plan),
                configs=len(groups), budget=budget,
                batch_size=self.batch_size,
            )

        pool: Optional[ProcessPoolExecutor] = None
        if self.workers > 1:
            # Pre-deal real-backend suites once and broadcast them, so
            # pool workers never repeat threshold-RSA setup per process.
            predeal_started = time.perf_counter()
            dealt = predeal_suites(plan, self.workers)
            if tele is not None and dealt:
                tele.emit(
                    "predeal", suites=len(dealt),
                    seconds=round(time.perf_counter() - predeal_started, 6),
                )
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_seed_suite_cache,
                initargs=(dealt,),
            )
        try:
            while True:
                allocations = self._allocate(
                    outcomes, cursors, order, budget - spent
                )
                if not allocations:
                    break
                if tele is not None:
                    tele.emit(
                        "adaptive_round", round=rounds,
                        remaining=budget - spent,
                        allocations=[
                            {
                                "config": name,
                                "trials": len(indices),
                                "width": round(
                                    outcomes[name].estimate.width, 6
                                ),
                            }
                            for name, indices in allocations
                        ],
                    )
                batches = [
                    [(index, plan.trials[index]) for index in indices]
                    for _name, indices in allocations
                ]
                for index, result in self._execute(batches, pool, sink):
                    results[index] = result
                    outcomes[owner[index]].estimate.observe(event(result))
                spent += sum(len(batch) for batch in batches)
                rounds += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

        for outcome in outcomes.values():
            if (
                self.early_stop
                and outcome.estimate.decided
                and outcome.executed < len(outcome.indices)
            ):
                outcome.stopped_early = True
        if tele is not None:
            tele.emit(
                "adaptive_complete", spent=spent, budget=budget,
                allocation_rounds=rounds,
                stopped_early=sum(
                    1 for o in outcomes.values() if o.stopped_early
                ),
            )
            tele.emit("run_complete", label=plan.name, trials=spent)
        return AdaptiveResult(
            plan=plan,
            results=results,
            configs=outcomes,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            budget=budget,
            spent=spent,
            trial_metrics=(
                [sink.get(index) for index in range(len(plan))]
                if sink is not None
                else None
            ),
        )

    # ── scheduling ───────────────────────────────────────────────────

    def estimate_for(self, name: str, bounds: BoundSpec) -> SequentialEstimate:
        """A fresh estimate configured like this runner's (shared classifier)."""
        if isinstance(bounds, Mapping):
            try:
                bound = bounds[name]
            except KeyError:
                raise KeyError(
                    f"no bound for config {name!r}; "
                    f"bounds cover {sorted(bounds)}"
                ) from None
        else:
            bound = float(bounds)
        return SequentialEstimate(
            bound=bound,
            z=self.z,
            min_trials=self.min_trials,
            min_hits=self.min_hits,
            precision=self.precision,
        )

    def _allocate(
        self,
        outcomes: "OrderedDict[str, ConfigOutcome]",
        cursors: Dict[str, int],
        order: Dict[str, int],
        remaining: int,
    ) -> List[Tuple[str, Tuple[int, ...]]]:
        """Pick this round's batches: widest undecided intervals first.

        Purely a function of the accumulated counts (plus plan order as
        the tie-break), so the schedule is identical for every worker
        count and completion order.
        """
        if remaining <= 0:
            return []
        active = [
            outcome
            for outcome in outcomes.values()
            if cursors[outcome.name] < len(outcome.indices)
            and not (self.early_stop and outcome.estimate.decided)
        ]
        active.sort(key=lambda o: (-o.estimate.width, order[o.name]))
        allocations: List[Tuple[str, Tuple[int, ...]]] = []
        for outcome in active:
            if remaining <= 0:
                break
            cursor = cursors[outcome.name]
            take = min(
                self.batch_size, len(outcome.indices) - cursor, remaining
            )
            allocations.append(
                (outcome.name, outcome.indices[cursor : cursor + take])
            )
            cursors[outcome.name] = cursor + take
            remaining -= take
        return allocations

    def _execute(
        self,
        batches: Sequence[Sequence[Tuple[int, TrialSpec]]],
        pool: Optional[ProcessPoolExecutor],
        sink: Optional[Dict[int, MetricsRegistry]] = None,
    ) -> Iterator[Tuple[int, ExecutionResult]]:
        """Run one round's batches; stream results as batches complete."""
        if pool is None:
            if self.backend == "vector":
                tele = self.telemetry
                for batch in batches:
                    pairs, stats = execute_chunk(
                        list(batch), False, None, metrics=sink
                    )
                    if tele is not None:
                        tele.emit(
                            "probe_cache",
                            hits=stats.get("cache_hits", 0),
                            misses=stats.get("cache_misses", 0),
                        )
                    yield from pairs
                return
            for batch in batches:
                for index, spec in batch:
                    if sink is not None:
                        result, registry = run_measured_trial(spec, None, index)
                        sink[index] = registry
                        yield index, result
                    else:
                        yield index, run_trial(spec)
            return
        compact = self.transport == "compact"
        tele = self.telemetry
        entry = _run_chunk if tele is None else _run_chunk_timed
        specs = {index: spec for batch in batches for index, spec in batch}
        futures = []
        dispatched = {}
        for batch in batches:
            future = pool.submit(
                entry, list(batch), False, compact, None, self.backend,
                sink is not None,
            )
            futures.append(future)
            if tele is not None:
                number = self._chunk_seq
                self._chunk_seq += 1
                dispatched[future] = (number, tele.elapsed())
                tele.emit(
                    "chunk_dispatch", chunk=number, trials=len(batch),
                    first_index=batch[0][0],
                )
        try:
            for future in as_completed(futures):
                payload = future.result()
                if tele is not None:
                    seconds, payload = payload
                    number, opened = dispatched[future]
                    tele.emit(
                        "chunk_complete", chunk=number, seconds=seconds,
                        span=round(tele.elapsed() - opened, 6),
                        payload_bytes=len(pickle.dumps(payload)),
                    )
                if compact:
                    if sink is not None:
                        sink.update(payload.unpack_metrics())
                    yield from payload.unpack(specs)
                else:
                    for index, result in payload:
                        yield index, result
        except BaseException:
            for future in futures:
                future.cancel()
            raise
