"""Parallel Monte-Carlo experiment engine.

The repo's experiments are hundreds of independent simulated executions;
this package turns them from ad-hoc serial loops into declarative
:class:`TrialPlan`s executed by a :class:`ParallelRunner` — serially or
fanned out across worker processes, with byte-identical results either
way.  See ``docs/performance.md`` for the architecture and determinism
guarantees, and ``repro bench`` for the CLI entry point.
"""

from .adaptive import AdaptiveResult, AdaptiveRunner, ConfigOutcome
from .plan import TrialPlan, TrialSpec, derive_trial_seed, derive_trial_session
from .registry import (
    adversary_names,
    build_fault_plan,
    fault_plan_names,
    protocol_names,
    register_adversary,
    register_fault_plan,
    register_protocol,
    register_vector_model,
    vector_model_for,
    vector_model_pairs,
)
from .runner import (
    ParallelRunner,
    PlanResult,
    clamp_workers,
    clear_suite_cache,
    deal_suite,
    default_workers,
    predeal_suites,
    run_measured_trial,
    run_traced_trial,
    run_trial,
)
from .transport import (
    ChunkSummary,
    TransportError,
    TrialSummary,
    measure_payload_bytes,
)
from .vectorized import (
    VectorModelError,
    clear_probe_cache,
    probe_cache_stats,
    run_vector_batch,
    supports as vector_supports,
    unsupported_reason as vector_unsupported_reason,
)

__all__ = [
    "AdaptiveResult",
    "AdaptiveRunner",
    "ChunkSummary",
    "ConfigOutcome",
    "ParallelRunner",
    "PlanResult",
    "TransportError",
    "TrialPlan",
    "TrialSpec",
    "TrialSummary",
    "VectorModelError",
    "adversary_names",
    "build_fault_plan",
    "clamp_workers",
    "clear_probe_cache",
    "clear_suite_cache",
    "deal_suite",
    "default_workers",
    "derive_trial_seed",
    "derive_trial_session",
    "fault_plan_names",
    "measure_payload_bytes",
    "predeal_suites",
    "probe_cache_stats",
    "protocol_names",
    "register_adversary",
    "register_fault_plan",
    "register_protocol",
    "register_vector_model",
    "run_measured_trial",
    "run_traced_trial",
    "run_trial",
    "run_vector_batch",
    "vector_model_for",
    "vector_model_pairs",
    "vector_supports",
    "vector_unsupported_reason",
]
