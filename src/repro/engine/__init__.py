"""Parallel Monte-Carlo experiment engine.

The repo's experiments are hundreds of independent simulated executions;
this package turns them from ad-hoc serial loops into declarative
:class:`TrialPlan`s executed by a :class:`ParallelRunner` — serially or
fanned out across worker processes, with byte-identical results either
way.  See ``docs/performance.md`` for the architecture and determinism
guarantees, and ``repro bench`` for the CLI entry point.
"""

from .adaptive import AdaptiveResult, AdaptiveRunner, ConfigOutcome
from .plan import TrialPlan, TrialSpec, derive_trial_seed, derive_trial_session
from .registry import (
    adversary_names,
    protocol_names,
    register_adversary,
    register_protocol,
)
from .runner import (
    ParallelRunner,
    PlanResult,
    clear_suite_cache,
    default_workers,
    run_trial,
)

__all__ = [
    "AdaptiveResult",
    "AdaptiveRunner",
    "ConfigOutcome",
    "ParallelRunner",
    "PlanResult",
    "TrialPlan",
    "TrialSpec",
    "adversary_names",
    "clear_suite_cache",
    "default_workers",
    "derive_trial_seed",
    "derive_trial_session",
    "protocol_names",
    "register_adversary",
    "register_protocol",
    "run_trial",
]
