"""Compact result transport: what workers send back through the pool.

A worker that pickles whole :class:`~repro.network.simulator.ExecutionResult`
trees pays for every ``RoundStats`` dataclass, every dict entry and every
class reference in the payload — for signature-heavy plans the metrics
dominate the IPC bytes, not the decisions.  This module defines the wire
format that replaces that: a :class:`TrialSummary` packs everything the
parent cannot rederive into one varint-encoded ``bytes`` blob (plus a
pickled fallback for non-integer protocol outputs), and the parent
rebuilds the ``ExecutionResult``/``RunMetrics`` tree **losslessly** from
the summary and the trial's :class:`~repro.engine.plan.TrialSpec`.

What makes the format small:

* ``inputs`` are never shipped — the parent rebuilds them from
  ``spec.inputs`` (the simulator defines them as exactly that);
* per-round tallies travel as LEB128 varints (~1–2 bytes per count)
  instead of pickled ``RoundStats`` instances (tens of bytes each);
* ``corrupted`` is a party-id bitmask in one varint;
* ``outputs``/``finish_rounds`` share one packed id sequence — the
  simulator always records them together — with insertion order
  preserved, so the rebuilt dicts iterate exactly like the originals.

Losslessness is the load-bearing property: ``unpack(pack(result), spec)``
compares equal to ``result`` field for field, for every registered
protocol × adversary combination (pinned by
``tests/engine/test_transport.py``), which is what lets
``ParallelRunner`` and ``AdaptiveRunner`` switch transports without
changing a single measured number.
"""

from __future__ import annotations

import pickle
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..network.metrics import RunMetrics
from ..network.simulator import ExecutionResult
from .plan import TrialSpec

__all__ = [
    "ChunkSummary",
    "SpecLookup",
    "TransportError",
    "TrialSummary",
    "measure_payload_bytes",
]


class TransportError(ValueError):
    """A packed summary blob is truncated or malformed.

    Raised instead of a bare ``IndexError`` so a corrupted worker payload
    — a half-written pipe, a bad pickle round-trip, bit rot in a cached
    artifact — surfaces as one well-named failure at the transport
    boundary, not an arbitrary exception deep in varint decoding.
    """

#: Anything indexable by plan index — ``plan.trials`` for the fixed
#: runner, the per-round ``{index: spec}`` dict for the adaptive runner.
SpecLookup = Union[Sequence["TrialSpec"], Mapping[int, "TrialSpec"]]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _write_varint(buf: bytearray, value: int) -> None:
    """Append one unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"varint values must be non-negative, got {value}")
    while True:
        low = value & 0x7F
        value >>= 7
        if value:
            buf.append(low | 0x80)
        else:
            buf.append(low)
            return


def _read_varint(blob: bytes, at: int) -> Tuple[int, int]:
    """Decode one varint starting at ``at``; returns ``(value, next_at)``.

    Every read is bounds-checked: a truncated blob — including one cut
    mid-varint, where the last byte still has its continuation bit set —
    raises :class:`TransportError` instead of ``IndexError``.
    """
    value = 0
    shift = 0
    size = len(blob)
    while True:
        if at >= size:
            raise TransportError(
                f"truncated varint payload: needed a byte at offset {at}, "
                f"blob is {size} bytes"
            )
        byte = blob[at]
        at += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, at
        shift += 7


class TrialSummary(NamedTuple):
    """One trial's outcome, packed for the trip back through the pool.

    ``blob`` holds (in order): rounds; the finished-party count and its
    ``(pid, finish_round)`` pairs; the corrupted-set bitmask; the tally
    count and per-round tallies (see :meth:`RunMetrics.as_tallies`); and
    an outputs tag.  Tag ``1`` means every output value was a plain
    non-negative ``int`` and the values follow in the blob (aligned with
    the finished-party id sequence); tag ``0`` means at least one output
    was something richer — a dataclass, a list, a negative int, a bool —
    and the exact objects ride in ``outputs`` through ordinary pickling.
    """

    blob: bytes
    outputs: Optional[Tuple[Tuple[int, Any], ...]] = None

    @classmethod
    def pack(cls, result: ExecutionResult) -> "TrialSummary":
        """Flatten an ``ExecutionResult`` into the wire form."""
        buf = bytearray()
        _write_varint(buf, result.metrics.rounds)

        finish_items = tuple(result.finish_rounds.items())
        _write_varint(buf, len(finish_items))
        for pid, finish_round in finish_items:
            _write_varint(buf, pid)
            _write_varint(buf, finish_round)

        mask = 0
        for pid in result.corrupted:
            mask |= 1 << pid
        _write_varint(buf, mask)

        tallies = result.metrics.as_tallies()
        _write_varint(buf, len(tallies) // 5)
        for value in tallies:
            _write_varint(buf, value)

        # The simulator records outputs and finish_rounds together, so
        # their key sequences coincide; when they do and every value is a
        # plain non-negative int (the overwhelmingly common case — BA
        # decisions are bits), the values pack into the blob aligned with
        # the finish sequence.  Anything else falls back to pickling the
        # exact output objects, order preserved.
        output_items = tuple(result.outputs.items())
        packable = len(output_items) == len(finish_items) and all(
            out_pid == fin_pid and type(value) is int and value >= 0
            for (out_pid, value), (fin_pid, _fin) in zip(
                output_items, finish_items
            )
        )
        if packable:
            _write_varint(buf, 1)
            for _pid, value in output_items:
                _write_varint(buf, value)
            return cls(blob=bytes(buf))
        _write_varint(buf, 0)
        return cls(blob=bytes(buf), outputs=output_items)

    def unpack(self, spec: TrialSpec) -> ExecutionResult:
        """Rebuild the exact ``ExecutionResult`` this summary was packed
        from, using ``spec`` for everything the parent can rederive."""
        blob = self.blob
        rounds, at = _read_varint(blob, 0)

        finished, at = _read_varint(blob, at)
        finish_pairs: List[Tuple[int, int]] = []
        for _ in range(finished):
            pid, at = _read_varint(blob, at)
            finish_round, at = _read_varint(blob, at)
            finish_pairs.append((pid, finish_round))

        mask, at = _read_varint(blob, at)
        corrupted = set()
        pid = 0
        while mask:
            if mask & 1:
                corrupted.add(pid)
            mask >>= 1
            pid += 1

        tally_rounds, at = _read_varint(blob, at)
        tallies: List[int] = []
        for _ in range(tally_rounds * 5):
            value, at = _read_varint(blob, at)
            tallies.append(value)

        packed_outputs, at = _read_varint(blob, at)
        if packed_outputs:
            outputs = {}
            for out_pid, _fin in finish_pairs:
                value, at = _read_varint(blob, at)
                outputs[out_pid] = value
        else:
            outputs = dict(self.outputs or ())

        return ExecutionResult(
            outputs=outputs,
            corrupted=corrupted,
            metrics=RunMetrics.from_tallies(rounds, tallies),
            inputs=dict(enumerate(spec.inputs)),
            finish_rounds=dict(finish_pairs),
        )


class ChunkSummary(NamedTuple):
    """One worker chunk's results, packed as a single blob.

    Per-trial :class:`TrialSummary` payloads are small enough (~60–140
    bytes) that pickling them individually wastes a measurable fraction
    of the chunk on framing — a class reference, a tuple, an index int
    and a ``bytes`` header per trial.  A chunk instead concatenates them:
    ``blob`` holds the trial count, then per trial its plan index, its
    summary-blob length and the summary blob itself — all varints — so
    the pickle framing is paid once per *chunk*.  ``fallbacks`` carries
    the rare non-integer output dicts, keyed by plan index.  ``metrics``
    carries optional per-trial packed
    :class:`~repro.obs.metrics.MetricsRegistry` blobs (canonical varint
    form), present only when the runner collects metrics — the field
    defaults keep old pickled summaries loadable.
    """

    blob: bytes
    fallbacks: Tuple[Tuple[int, Tuple[Tuple[int, Any], ...]], ...] = ()
    metrics: Tuple[Tuple[int, bytes], ...] = ()

    @classmethod
    def pack(
        cls,
        indexed_results: Sequence[Tuple[int, ExecutionResult]],
        metrics: Optional[Mapping[int, Any]] = None,
    ) -> "ChunkSummary":
        """Pack one chunk's ``(plan_index, result)`` pairs.

        ``metrics`` maps plan index → ``MetricsRegistry`` (anything with
        a canonical ``pack()``); registries ride along as packed blobs.
        """
        buf = bytearray()
        fallbacks: List[Tuple[int, Tuple[Tuple[int, Any], ...]]] = []
        _write_varint(buf, len(indexed_results))
        for index, result in indexed_results:
            summary = TrialSummary.pack(result)
            _write_varint(buf, index)
            _write_varint(buf, len(summary.blob))
            buf += summary.blob
            if summary.outputs is not None:
                fallbacks.append((index, summary.outputs))
        packed_metrics: Tuple[Tuple[int, bytes], ...] = ()
        if metrics is not None:
            packed_metrics = tuple(
                (index, metrics[index].pack())
                for index, _ in indexed_results
                if index in metrics
            )
        return cls(
            blob=bytes(buf), fallbacks=tuple(fallbacks), metrics=packed_metrics
        )

    def unpack(self, specs: SpecLookup) -> List[Tuple[int, ExecutionResult]]:
        """Rebuild the chunk's ``(plan_index, result)`` pairs.

        ``specs`` is anything indexable by plan index — ``plan.trials``
        for the fixed runner, the per-round spec dict for the adaptive
        runner.
        """
        fallback = dict(self.fallbacks)
        blob = self.blob
        count, at = _read_varint(blob, 0)
        pairs: List[Tuple[int, ExecutionResult]] = []
        for _ in range(count):
            index, at = _read_varint(blob, at)
            length, at = _read_varint(blob, at)
            if at + length > len(blob):
                raise TransportError(
                    f"truncated chunk payload: trial {index} declares a "
                    f"{length}-byte summary at offset {at}, blob is "
                    f"{len(blob)} bytes"
                )
            summary = TrialSummary(
                blob=blob[at : at + length], outputs=fallback.get(index)
            )
            at += length
            pairs.append((index, summary.unpack(specs[index])))
        return pairs

    def unpack_metrics(self) -> Dict[int, Any]:
        """Rebuild the chunk's plan index → ``MetricsRegistry`` mapping."""
        from ..obs.metrics import MetricsRegistry

        return {
            index: MetricsRegistry.unpack(blob) for index, blob in self.metrics
        }


def measure_payload_bytes(
    indexed_results: Sequence[Tuple[int, ExecutionResult]],
    chunk_size: Optional[int] = None,
) -> Tuple[int, int]:
    """Pickled bytes of one result batch under both transports.

    Returns ``(full_bytes, compact_bytes)`` — the size of the legacy
    payload (``(index, ExecutionResult)`` pairs, exactly what
    ``transport="pickle"`` ships) versus the compact payload (one
    :class:`ChunkSummary` per chunk).  ``chunk_size`` mirrors the
    runner's chunked dispatch (default: the whole batch as one chunk);
    both transports are summed over the same chunking, so the comparison
    is what actually crosses the pipe.  Used by ``repro bench`` to
    record ``payload_bytes_full`` / ``payload_bytes_compact``.
    """
    indexed = list(indexed_results)
    size = chunk_size or max(1, len(indexed))
    chunks = [indexed[start : start + size] for start in range(0, len(indexed), size)]
    full = sum(
        len(pickle.dumps(chunk, protocol=_PICKLE_PROTOCOL)) for chunk in chunks
    )
    compact = sum(
        len(pickle.dumps(ChunkSummary.pack(chunk), protocol=_PICKLE_PROTOCOL))
        for chunk in chunks
    )
    return full, compact
