"""Trial plans: declarative, picklable Monte-Carlo experiment descriptions.

A :class:`TrialSpec` is one simulated execution, fully determined by plain
data — protocol name + params, inputs, corruption budget, adversary name +
params, seeds, session tag.  A :class:`TrialPlan` is an ordered collection
of specs.  Both are frozen and picklable, which is what lets the
:class:`~repro.engine.runner.ParallelRunner` ship them to worker
processes.

Determinism is the load-bearing property:

* Per-trial seeds come from :func:`derive_trial_seed` — a pure function of
  ``(base seed, trial index)``, the same affine map
  :func:`repro.analysis.experiments.run_trials` has always used, so
  engine trials are bit-identical to the legacy serial harness.
* Per-trial sessions come from :func:`derive_trial_session`.  Distinct
  sessions per trial are **mandatory**: coin values are deterministic in
  (key material, session, index), and session reuse would replay
  identical coins across trials.
* Key material derives from ``setup_seed`` alone (dealt as
  ``random.Random(setup_seed + 0x5E7)``, the ``ExperimentSetup``
  convention), so every worker deals the same keys without shipping
  key material across process boundaries.

Nothing here depends on the executing process: running a plan with 1
worker or 16 yields byte-identical results (see
``tests/engine/test_determinism.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TrialPlan",
    "TrialSpec",
    "derive_trial_seed",
    "derive_trial_session",
]

# The affine seed schedule of the legacy serial harness (run_trials).
# 1_000_003 is prime and far larger than any trial count in use, so
# per-base-seed streams never collide for trials < 1_000_003.
_SEED_STRIDE = 1_000_003


def derive_trial_seed(base_seed: int, index: int) -> int:
    """Simulator seed for trial ``index`` of a plan seeded ``base_seed``."""
    return base_seed * _SEED_STRIDE + index


def derive_trial_session(base_seed: int, index: int) -> str:
    """Session tag for trial ``index`` (unique per trial — coins depend on it)."""
    return f"exp{base_seed}/{index}"


def _freeze_value(value: Any) -> Any:
    """Hashable form of one param value (lists/dicts become tuples)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze_value(item) for item in value))
    return value


def _freeze_params(params: Optional[Dict[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical, hashable form of a params dict (sorted key/value pairs)."""
    if not params:
        return ()
    return tuple(sorted((key, _freeze_value(value)) for key, value in params.items()))


def _coerce_params(value: Any, label: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a params field to the canonical frozen tuple form.

    Accepts ``None``, a mapping, or an iterable of ``(key, value)``
    pairs (the already-frozen form); anything else is rejected loudly —
    a spec that silently carried dict params would be unhashable and
    break the frozen/picklable contract the runner depends on.
    """
    if value is None:
        return ()
    if isinstance(value, Mapping):
        return _freeze_params(dict(value))
    if isinstance(value, (tuple, list)):
        pairs = list(value)
        if not all(
            isinstance(pair, (tuple, list)) and len(pair) == 2 for pair in pairs
        ):
            raise TypeError(
                f"{label} must be a mapping or (key, value) pairs, "
                f"got {value!r}"
            )
        return _freeze_params({key: item for key, item in pairs})
    raise TypeError(
        f"{label} must be a mapping or (key, value) pairs, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class TrialSpec:
    """One simulated execution, described by plain picklable data."""

    protocol: str
    inputs: Tuple[Any, ...]
    max_faulty: int
    params: Tuple[Tuple[str, Any], ...] = ()
    adversary: Optional[str] = None
    adversary_params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    session: str = "trial"
    setup_seed: int = 0
    backend: str = "ideal"
    max_rounds: int = 4096
    collect_signatures: bool = True
    config: str = ""
    # Modulus size for backend="real" threshold-RSA dealing.  Part of
    # suite_key: suites dealt at different sizes are different keys.
    rsa_bits: int = 256
    # Opt-out for the batch-vectorized executor: a runner with
    # backend="vector" only batches specs with this flag set (and whose
    # configuration the vector models support); everything else takes
    # the object simulator.  Results are bit-identical either way.
    vectorizable: bool = True
    # Fault-injection scenario: a registry name
    # (repro.engine.registry.fault_plan_names) resolved by workers to a
    # repro.network.faults.FaultPlan, like protocol/adversary names.
    # None = the clean synchronous network.  Vector models simulate the
    # fault-free lockstep dynamics only, so a faulted spec is never
    # vectorizable — forced off in __post_init__.
    faults: Optional[str] = None
    fault_params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "params", _coerce_params(self.params, "params"))
        object.__setattr__(
            self,
            "adversary_params",
            _coerce_params(self.adversary_params, "adversary_params"),
        )
        object.__setattr__(
            self,
            "fault_params",
            _coerce_params(self.fault_params, "fault_params"),
        )
        if self.fault_params and self.faults is None:
            raise ValueError("fault_params given without a faults scenario name")
        if self.faults is not None and self.vectorizable:
            object.__setattr__(self, "vectorizable", False)
        if self.backend not in ("ideal", "real"):
            raise ValueError(f"unknown crypto backend {self.backend!r}")
        if self.backend == "real" and self.rsa_bits < 64:
            raise ValueError(
                f"real backend needs rsa_bits >= 64, got {self.rsa_bits}"
            )
        if not (0 <= self.max_faulty < len(self.inputs)):
            raise ValueError(
                f"need 0 <= t < n, got t={self.max_faulty}, n={len(self.inputs)}"
            )

    @property
    def num_parties(self) -> int:
        return len(self.inputs)

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def adversary_param_dict(self) -> Dict[str, Any]:
        return dict(self.adversary_params)

    @property
    def fault_param_dict(self) -> Dict[str, Any]:
        return dict(self.fault_params)

    @property
    def suite_key(self) -> Tuple[str, int, int, int, int]:
        """Cache key for dealt key material — all trials sharing it reuse
        one :class:`~repro.crypto.keys.CryptoSuite` per worker process.
        :func:`repro.engine.runner.deal_suite` deals from this key alone."""
        return (
            self.backend,
            self.num_parties,
            self.max_faulty,
            self.setup_seed,
            self.rsa_bits,
        )

    @property
    def config_key(self) -> str:
        """Name of the configuration this trial repeats.

        ``TrialPlan.monte_carlo`` stamps its plan name onto every spec
        (the ``config`` field); specs built by hand fall back to a key
        derived from everything but the per-trial seed/session, so
        repetitions of one configuration always group together.
        """
        if self.config:
            return self.config
        key = (
            f"{self.protocol}{dict(self.params)}"
            f"|n{self.num_parties}t{self.max_faulty}"
            f"|{self.adversary}{dict(self.adversary_params)}"
            f"|{self.backend}"
        )
        if self.faults is not None:
            key += f"|{self.faults}{dict(self.fault_params)}"
        return key


@dataclass(frozen=True)
class TrialPlan:
    """An ordered, immutable batch of independent trials."""

    name: str
    trials: Tuple[TrialSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.trials, tuple):
            object.__setattr__(self, "trials", tuple(self.trials))

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self) -> Iterator[TrialSpec]:
        return iter(self.trials)

    @classmethod
    def monte_carlo(
        cls,
        name: str,
        protocol: str,
        inputs: Sequence[Any],
        max_faulty: int,
        trials: int,
        params: Optional[Dict[str, Any]] = None,
        adversary: Optional[str] = None,
        adversary_params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        setup_seed: int = 0,
        backend: str = "ideal",
        max_rounds: int = 4096,
        collect_signatures: bool = True,
        rsa_bits: int = 256,
        vectorizable: bool = True,
        faults: Optional[str] = None,
        fault_params: Optional[Dict[str, Any]] = None,
    ) -> "TrialPlan":
        """``trials`` independent repetitions of one configuration.

        Seeds and sessions follow the legacy ``run_trials`` schedule (see
        module docstring), so a monte-carlo plan executed serially
        reproduces the historical experiment numbers exactly.
        """
        if trials < 1:
            raise ValueError("need at least one trial")
        template = TrialSpec(
            protocol=protocol,
            inputs=tuple(inputs),
            max_faulty=max_faulty,
            params=_freeze_params(params),
            adversary=adversary,
            adversary_params=_freeze_params(adversary_params),
            setup_seed=setup_seed,
            backend=backend,
            max_rounds=max_rounds,
            collect_signatures=collect_signatures,
            config=name,
            rsa_bits=rsa_bits,
            vectorizable=vectorizable,
            faults=faults,
            fault_params=_freeze_params(fault_params),
        )
        return cls(
            name=name,
            trials=tuple(
                replace(
                    template,
                    seed=derive_trial_seed(seed, index),
                    session=derive_trial_session(seed, index),
                )
                for index in range(trials)
            ),
        )

    @classmethod
    def concat(cls, name: str, plans: Iterable["TrialPlan"]) -> "TrialPlan":
        """Fuse several plans into one (e.g. a κ-sweep of monte-carlo plans)."""
        trials: Tuple[TrialSpec, ...] = ()
        for plan in plans:
            trials += plan.trials
        return cls(name=name, trials=trials)

    def configs(self) -> "OrderedDict[str, Tuple[int, ...]]":
        """Plan indices grouped by configuration, in first-seen order.

        A configuration is a set of repetitions of one experimental
        setting (see :attr:`TrialSpec.config_key`); the adaptive runner
        allocates and stops trials per configuration.
        """
        groups: "OrderedDict[str, list]" = OrderedDict()
        for index, spec in enumerate(self.trials):
            groups.setdefault(spec.config_key, []).append(index)
        return OrderedDict(
            (name, tuple(indices)) for name, indices in groups.items()
        )

    def describe(self) -> Dict[str, Any]:
        """Human/JSON-facing summary (protocols, adversaries, sizes)."""
        protocols = sorted({spec.protocol for spec in self.trials})
        adversaries = sorted(
            {spec.adversary for spec in self.trials if spec.adversary is not None}
        )
        summary = {
            "name": self.name,
            "trials": len(self.trials),
            "protocols": protocols,
            "adversaries": adversaries,
            "num_parties": sorted({spec.num_parties for spec in self.trials}),
        }
        fault_names = sorted(
            {spec.faults for spec in self.trials if spec.faults is not None}
        )
        if fault_names:
            summary["faults"] = fault_names
        return summary
