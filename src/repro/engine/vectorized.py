"""Batch-vectorized trial execution: the ``backend="vector"`` engine path.

Monte-Carlo sweeps run hundreds of trials that differ *only* in
``(seed, session)``.  For the ideal-crypto backend those two fields are
nearly inert: party and adversary RNG streams are drawn but never consumed
by the paper's protocols, and the session string only enters HMAC tag
*bytes* — never the validity structure of shares and quorums.  One round of
a supported protocol therefore evolves identically across the whole batch
except for the coin values, and a coin value is a pure function of the
dealt coin key and the trial session:

    tag = HMAC(coin_key, encode(("combined", ("coin-flip", session, index))))
    c   = hash_to_range("coin-extract", (session, index, tag), low, high)

This module exploits that structure.  Per-party bits live in a ``(B, n)``
numpy array; each iteration groups rows by bit configuration, resolves the
iteration *transition* (per-party Proxcensus value/grade, per-round message
and signature tallies, coin-combine success) **once per distinct
configuration**, then applies the paper's extraction function as a
vectorized array expression over the batch's coin column.  Signature counts
come out of the per-configuration tallies arithmetically — no signature,
share or message object is ever materialized per trial.

The transition itself is not re-derived by hand: it is obtained by running
the *object simulator* once per configuration on a single-iteration probe
program (the exact wire behavior of one ``Π_iter`` segment, including the
real adversary instance).  That makes the vector backend bit-identical to
the reference by construction — the only arithmetic this module trusts is
the coin derivation above and :func:`repro.core.extraction.extract`'s
closed form, both covered by the equivalence suite in
``tests/engine/test_vectorized.py``.

Anything the model cannot express — the real-RSA backend, trace
collection, legacy metrics, protocols or adversaries without a registered
vector model, non-bit inputs, exotic adversary parameters — falls back
per-spec to :func:`repro.engine.runner.run_trial`, which is the same code
path ``backend="object"`` uses, so results are identical either way.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # numpy is an engine-layer acceleration; protocol code never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from ..crypto.coin import coin_message_tag, threshold_coin_program
from ..crypto.random_oracle import hash_to_range
from ..network.metrics import RunMetrics
from ..network.party import resume_with, run_parallel
from ..network.simulator import ExecutionResult, SyncSimulator
from ..proxcensus.linear_half import prox_linear_half_program
from ..proxcensus.one_third import prox_one_third_program
from .plan import TrialSpec
from .registry import build_adversary, register_vector_model, vector_model_for

__all__ = [
    "VectorModelError",
    "batch_key",
    "execute_chunk",
    "run_vector_batch",
    "unsupported_reason",
]


class VectorModelError(RuntimeError):
    """A vector-model invariant failed; callers fall back to the object path."""


# Probe executions run under a fixed session: transitions are
# session-independent (see module docstring), so any tag works.
_PROBE_SESSION = "vector-probe"

# (batch_key(spec), bits) → _IterationProbe.  Bounded: cleared wholesale
# when full, like the crypto tag memos.
_PROBE_MEMO: Dict[Any, "_IterationProbe"] = {}
_PROBE_MEMO_LIMIT = 1024


@dataclasses.dataclass(frozen=True)
class _IterationProbe:
    """The batch-invariant outcome of one iteration for one configuration.

    ``values``/``grades`` are the per-party Proxcensus outputs (already
    passed through ``Π_iter``'s non-bit guard), ``coin_ok`` whether each
    party's coin combine succeeds (a structural fact: share counts),
    ``tallies`` the iteration's per-round metric rows in execution order,
    and ``corrupted`` the corruption set after the iteration.
    """

    values: Tuple[int, ...]
    grades: Tuple[int, ...]
    coin_ok: Tuple[bool, ...]
    tallies: Tuple[Tuple[int, int, int, int, int], ...]
    corrupted: frozenset


def batch_key(spec: TrialSpec) -> TrialSpec:
    """The spec with per-trial identity erased: equal keys ⇒ one batch.

    Trials agreeing on everything but ``(seed, session, config)`` share
    dynamics (the module-docstring invariant), so the chunk executor
    groups by this key and the probe memo is keyed by it.
    """
    return dataclasses.replace(spec, seed=0, session="", config="")


def unsupported_reason(spec: TrialSpec) -> Optional[str]:
    """Why this spec cannot take the vector path (``None`` = it can).

    The checks are deliberately conservative: any configuration whose
    object-path behavior the vector models have not proven to reproduce —
    including ones where the object path would *raise* — is routed to the
    object simulator.
    """
    if _np is None:
        return "numpy unavailable"
    if not spec.vectorizable:
        return "spec opted out (vectorizable=False)"
    if spec.faults is not None:
        # Unreachable through TrialSpec (__post_init__ forces the flag
        # off), kept as a guard: the lockstep models simulate the clean
        # synchronous network only.
        return f"fault injection ({spec.faults!r}) is not vectorizable"
    if spec.backend != "ideal":
        return "real-RSA backend"
    model = vector_model_for(spec.protocol, spec.adversary)
    if model is None:
        return (
            f"no vector model registered for "
            f"({spec.protocol!r}, {spec.adversary!r})"
        )
    return model.unsupported_reason(spec)


def supports(spec: TrialSpec) -> bool:
    """``True`` iff the vector backend would batch this spec."""
    return unsupported_reason(spec) is None


def run_vector_batch(specs: Sequence[TrialSpec]) -> List[ExecutionResult]:
    """Execute same-configuration supported specs in one lockstep batch.

    All specs must share :func:`batch_key` and pass :func:`supports`;
    results come back in spec order and are bit-identical to
    ``run_trial`` on each spec.
    """
    specs = list(specs)
    if not specs:
        return []
    first = specs[0]
    key = batch_key(first)
    for spec in specs[1:]:
        if batch_key(spec) != key:
            raise VectorModelError("batch mixes configurations")
    reason = unsupported_reason(first)
    if reason is not None:
        raise VectorModelError(f"unsupported spec in vector batch: {reason}")
    model = vector_model_for(first.protocol, first.adversary)
    return model.run_batch(specs)


def execute_chunk(
    chunk: Sequence[Tuple[int, TrialSpec]],
    legacy_metrics: bool = False,
    trace_dir: Optional[str] = None,
) -> Tuple[List[Tuple[int, ExecutionResult]], Dict[str, Any]]:
    """Run a chunk of (index, spec) pairs, batching what the models support.

    The vector entry point the runner uses for ``backend="vector"``:
    eligible specs are grouped by :func:`batch_key` and executed in
    lockstep; everything else (plus whole batches whose probe invariants
    fail) takes the object simulator.  Returns the results in chunk order
    plus batching stats for telemetry: ``{"batched", "fallback",
    "batches": [{"config", "size"}, ...]}``.
    """
    from .runner import run_traced_trial, run_trial  # circular at import time

    def object_path(index: int, spec: TrialSpec) -> ExecutionResult:
        if trace_dir is not None:
            return run_traced_trial(spec, trace_dir, index, legacy_metrics)
        return run_trial(spec, legacy_metrics=legacy_metrics)

    results: Dict[int, ExecutionResult] = {}
    batches: Dict[TrialSpec, List[Tuple[int, TrialSpec]]] = {}
    fallback: List[Tuple[int, TrialSpec]] = []
    for index, spec in chunk:
        if legacy_metrics or trace_dir is not None or not supports(spec):
            fallback.append((index, spec))
        else:
            batches.setdefault(batch_key(spec), []).append((index, spec))

    stats: Dict[str, Any] = {"batched": 0, "fallback": len(fallback), "batches": []}
    for members in batches.values():
        specs = [spec for _, spec in members]
        try:
            outcomes = run_vector_batch(specs)
        except VectorModelError:
            # A probe invariant failed — the conservative answer is the
            # reference simulator, which is always correct.
            fallback.extend(members)
            stats["fallback"] += len(members)
            continue
        for (index, _), result in zip(members, outcomes):
            results[index] = result
        stats["batched"] += len(members)
        stats["batches"].append(
            {"config": specs[0].config_key, "size": len(members)}
        )
    for index, spec in fallback:
        results[index] = object_path(index, spec)
    return [(index, results[index]) for index, _ in chunk], stats


# ── Shared model machinery ───────────────────────────────────────────────


def _suite(spec: TrialSpec):
    from .runner import _suite_for  # circular at import time

    return _suite_for(spec)


def _coin_value(suite, session: str, index: Any, low: int, high: int) -> int:
    """The trial's coin value, derived without materializing shares.

    Mirrors ``threshold_coin_program`` + ``coin_value_from_signature``:
    combined ideal signatures are unique per (key, message), so when the
    probe proves the combine succeeds the value is this pure function.
    """
    message = coin_message_tag(session, index)
    tag = suite.coin.combined_bytes(message)
    return hash_to_range("coin-extract", (session, index, tag), low, high)


def _extract_array(values, grades_arr, coins, slots: int):
    """Vectorized :func:`repro.core.extraction.extract` over ``(B, n)`` arrays."""
    grades = (slots - 1) // 2
    parity = slots % 2
    hit_one = coins <= grades_arr + (grades + 1 - parity)
    hit_zero = coins <= (grades - grades_arr)
    return _np.where(values == 1, hit_one, hit_zero).astype(_np.int64)


def _run_probe(
    spec: TrialSpec,
    bits: Tuple[int, ...],
    factory,
    iteration_rounds: int,
) -> _IterationProbe:
    """One object-simulator execution of a single-iteration probe program.

    Memoized on ``(batch_key(spec), bits)``.  The probe runs under a fixed
    session and seed — legitimate because supported protocols never
    consume party/adversary RNG streams and signature *structure* is
    session-independent; only coin values differ, and those are computed
    per trial by :func:`_coin_value`.
    """
    memo_key = (batch_key(spec), bits)
    cached = _PROBE_MEMO.get(memo_key)
    if cached is not None:
        return cached

    adversary = build_adversary(spec.adversary, spec.adversary_param_dict, None)
    simulator = SyncSimulator(
        num_parties=spec.num_parties,
        max_faulty=spec.max_faulty,
        crypto=_suite(spec),
        adversary=adversary,
        seed=0,
        session=_PROBE_SESSION,
        max_rounds=spec.max_rounds,
        collect_signatures=spec.collect_signatures,
    )
    result = simulator.run(factory, list(bits))

    n = spec.num_parties
    values: List[int] = []
    grades: List[int] = []
    coin_ok: List[bool] = []
    for pid in range(n):
        if result.outputs.get(pid) is None or result.finish_rounds.get(
            pid
        ) != iteration_rounds:
            raise VectorModelError(
                f"probe party {pid} did not finish in {iteration_rounds} rounds"
            )
        prox_output, coin = result.outputs[pid]
        value, grade = prox_output
        if value not in (0, 1):  # Π_iter's defensive non-bit guard
            value, grade = 0, 0
        values.append(int(value))
        grades.append(int(grade))
        coin_ok.append(coin is not None)
    if result.metrics.rounds != iteration_rounds:
        raise VectorModelError("probe round count mismatch")
    tallies = tuple(
        (
            round_index,
            stats.honest_messages,
            stats.corrupt_messages,
            stats.honest_signatures,
            stats.corrupt_signatures,
        )
        for round_index, stats in result.metrics.per_round.items()
    )
    probe = _IterationProbe(
        values=tuple(values),
        grades=tuple(grades),
        coin_ok=tuple(coin_ok),
        tallies=tallies,
        corrupted=frozenset(result.corrupted),
    )
    if len(_PROBE_MEMO) >= _PROBE_MEMO_LIMIT:
        _PROBE_MEMO.clear()
    _PROBE_MEMO[memo_key] = probe
    return probe


def _bit_input_reason(spec: TrialSpec) -> Optional[str]:
    for value in spec.inputs:
        # Strict ints only: bool inputs pass the protocols' `bit in (0, 1)`
        # check but tangle value identity in repr-keyed tallies — the
        # object path handles them, so they simply are not vectorized.
        if type(value) is not int or value not in (0, 1):
            return f"non-bit input {value!r}"
    return None


def _kappa_reason(spec: TrialSpec) -> Optional[str]:
    params = spec.param_dict
    if set(params) != {"kappa"}:
        return f"unsupported protocol params {sorted(params)}"
    kappa = params["kappa"]
    if type(kappa) is not int or kappa < 1:
        return f"unsupported kappa {kappa!r}"
    return None


def _victims_reason(spec: TrialSpec, allowed_params: frozenset) -> Optional[str]:
    params = spec.adversary_param_dict
    if not set(params) <= allowed_params:
        return f"unsupported adversary params {sorted(params)}"
    victims = params.get("victims")
    if not isinstance(victims, tuple) or not victims:
        return "adversary victims missing or not a sequence"
    for victim in victims:
        if type(victim) is not int or not (0 <= victim < spec.num_parties):
            return f"victim {victim!r} out of range"
    if len(set(victims)) > spec.max_faulty:
        return "corruption budget exceeded (object path raises)"
    return None


# ── ba_one_third: one Prox_{2^κ+1} iteration, coin in round κ+1 ─────────


class _BaOneThirdModel:
    """Vector model for ``ba_one_third`` × {no adversary, ``straddle13``}.

    The whole protocol is a single ``Π_iter``: the probe covers all κ+1
    rounds, so the batch shares one transition and only the final
    extraction varies per trial.
    """

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _bit_input_reason(spec) or _kappa_reason(spec)
        if reason is not None:
            return reason
        n, t = spec.num_parties, spec.max_faulty
        if 3 * t >= n:
            return "regime violation 3t >= n (object path raises)"
        kappa = spec.param_dict["kappa"]
        if spec.max_rounds < kappa + 1:
            return "max_rounds below protocol length (object path raises)"
        if spec.adversary == "straddle13":
            reason = _victims_reason(
                spec, frozenset({"victims", "down_group"})
            )
            if reason is not None:
                return reason
            down_group = spec.adversary_param_dict.get("down_group")
            if down_group is not None and not isinstance(down_group, tuple):
                return "unsupported down_group value"
        elif spec.adversary is not None:
            return f"no ba_one_third vector model for {spec.adversary!r}"
        return None

    @staticmethod
    def _probe_factory(kappa: int):
        # Wire-identical to ba_one_third_program (Π_iter, overlap_coin
        # False), except it returns (prox_output, coin) instead of the
        # extracted bit — extraction happens vectorized, per trial.
        low, high = 1, 2 ** kappa

        def factory(ctx, bit):
            prox_output = yield from prox_one_third_program(ctx, bit, rounds=kappa)
            coin = yield from threshold_coin_program(
                ctx, ("ba13", kappa), low, high
            )
            return (prox_output, coin)

        return factory

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        kappa = first.param_dict["kappa"]
        n = first.num_parties
        rounds_total = kappa + 1
        slots = 2 ** kappa + 1
        low, high = 1, slots - 1

        probe = _run_probe(
            first, tuple(first.inputs), cls._probe_factory(kappa), rounds_total
        )

        batch = len(specs)
        coins = _np.fromiter(
            (
                _coin_value(suite, spec.session, ("ba13", kappa), low, high)
                for spec in specs
            ),
            dtype=_np.int64,
            count=batch,
        )
        values = _np.array(probe.values, dtype=_np.int64)[None, :]
        grades = _np.array(probe.grades, dtype=_np.int64)[None, :]
        ok = _np.array(probe.coin_ok, dtype=bool)[None, :]
        coin_matrix = _np.where(ok, coins[:, None], low)
        out_bits = _extract_array(values, grades, coin_matrix, slots)

        inputs_map = dict(enumerate(first.inputs))
        results = []
        for row in range(batch):
            results.append(
                ExecutionResult(
                    outputs={pid: int(out_bits[row, pid]) for pid in range(n)},
                    corrupted=set(probe.corrupted),
                    metrics=RunMetrics.from_round_tallies(
                        rounds_total, probe.tallies
                    ),
                    inputs=dict(inputs_map),
                    finish_rounds={pid: rounds_total for pid in range(n)},
                )
            )
        return results


# ── ba_one_half: ⌈κ/2⌉ iterations of Π_iter^5, coin ∥ Prox round 3 ──────


class _BaOneHalfModel:
    """Vector model for ``ba_one_half`` × {no adversary, ``straddle12``}.

    Iterations are independent 3-round segments (the adversary's state is
    per-iteration), so each is one probe per distinct bit configuration;
    bit configurations are tracked lockstep in a ``(B, n)`` array and
    re-grouped per iteration as coins split the batch.
    """

    ITERATION_ROUNDS = 3

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _bit_input_reason(spec) or _kappa_reason(spec)
        if reason is not None:
            return reason
        n, t = spec.num_parties, spec.max_faulty
        if 2 * t >= n:
            return "regime violation 2t >= n (object path raises)"
        kappa = spec.param_dict["kappa"]
        iterations = -(-kappa // 2)
        if spec.max_rounds < 3 * iterations:
            return "max_rounds below protocol length (object path raises)"
        if spec.adversary == "straddle12":
            reason = _victims_reason(
                spec, frozenset({"victims", "iteration_rounds"})
            )
            if reason is not None:
                return reason
            rounds = spec.adversary_param_dict.get("iteration_rounds", 3)
            if rounds != _BaOneHalfModel.ITERATION_ROUNDS:
                return "straddle12 with non-standard iteration_rounds"
        elif spec.adversary is not None:
            return f"no ba_one_half vector model for {spec.adversary!r}"
        return None

    @staticmethod
    def _probe_factory():
        # Wire-identical to one ba_one_half iteration: Π_iter^5 with the
        # 3-round Prox (rounds 1–2 driven directly, round 3 parallel with
        # the coin), under the iter0 subsession the fresh per-iteration
        # adversary also derives.  Returns (prox_output, coin) raw.
        def factory(ctx, bit):
            iteration_ctx = ctx.subsession("iter0")
            prox = prox_linear_half_program(iteration_ctx, bit, rounds=3)
            outbox = next(prox)
            for _ in range(2):
                inbox = yield outbox
                outbox = prox.send(inbox)
            results = yield from run_parallel(
                iteration_ctx,
                {
                    "prox": resume_with(prox, outbox),
                    "coin": threshold_coin_program(
                        iteration_ctx, ("ba12", 0), 1, 4
                    ),
                },
            )
            return (results["prox"], results["coin"])

        return factory

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        kappa = first.param_dict["kappa"]
        n = first.num_parties
        iterations = -(-kappa // 2)
        rounds_total = cls.ITERATION_ROUNDS * iterations
        factory = cls._probe_factory()

        batch = len(specs)
        bits = _np.tile(_np.array(first.inputs, dtype=_np.int64), (batch, 1))
        rows_per_trial: List[List[Tuple[int, int, int, int, int]]] = [
            [] for _ in range(batch)
        ]
        corrupted: frozenset = frozenset()

        for iteration in range(iterations):
            # Group batch rows by bit configuration; probe each once.
            group_of: Dict[bytes, int] = {}
            inverse = _np.empty(batch, dtype=_np.int64)
            probes: List[_IterationProbe] = []
            for row in range(batch):
                config = bits[row].tobytes()
                group = group_of.get(config)
                if group is None:
                    group = group_of[config] = len(probes)
                    probes.append(
                        _run_probe(
                            first,
                            tuple(int(b) for b in bits[row]),
                            factory,
                            cls.ITERATION_ROUNDS,
                        )
                    )
                inverse[row] = group
            corrupted = probes[0].corrupted

            coins = _np.fromiter(
                (
                    _coin_value(
                        suite,
                        f"{spec.session}/iter{iteration}",
                        ("ba12", iteration),
                        1,
                        4,
                    )
                    for spec in specs
                ),
                dtype=_np.int64,
                count=batch,
            )
            values = _np.array([p.values for p in probes], dtype=_np.int64)
            grades = _np.array([p.grades for p in probes], dtype=_np.int64)
            ok = _np.array([p.coin_ok for p in probes], dtype=bool)
            coin_matrix = _np.where(ok[inverse], coins[:, None], 1)
            bits = _extract_array(
                values[inverse], grades[inverse], coin_matrix, 5
            )

            offset = cls.ITERATION_ROUNDS * iteration
            for row in range(batch):
                rows_per_trial[row].extend(
                    (r + offset, hm, cm, hs, cs)
                    for r, hm, cm, hs, cs in probes[inverse[row]].tallies
                )

        inputs_map = dict(enumerate(first.inputs))
        results = []
        for row, spec in enumerate(specs):
            results.append(
                ExecutionResult(
                    outputs={pid: int(bits[row, pid]) for pid in range(n)},
                    corrupted=set(corrupted),
                    metrics=RunMetrics.from_round_tallies(
                        rounds_total, rows_per_trial[row]
                    ),
                    inputs=dict(inputs_map),
                    finish_rounds={pid: rounds_total for pid in range(n)},
                )
            )
        return results


register_vector_model("ba_one_third", None, _BaOneThirdModel)
register_vector_model("ba_one_third", "straddle13", _BaOneThirdModel)
register_vector_model("ba_one_half", None, _BaOneHalfModel)
register_vector_model("ba_one_half", "straddle12", _BaOneHalfModel)
