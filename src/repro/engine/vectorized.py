"""Batch-vectorized trial execution: the ``backend="vector"`` engine path.

Monte-Carlo sweeps run hundreds of trials that differ *only* in
``(seed, session)``.  For the ideal-crypto backend those two fields are
nearly inert: party and adversary RNG streams are drawn but never consumed
by the paper's protocols, and the session string only enters HMAC tag
*bytes* — never the validity structure of shares and quorums.  One round of
a supported protocol therefore evolves identically across the whole batch
except for the coin values, and a coin value is a pure function of the
dealt coin key and the trial session:

    tag = HMAC(coin_key, encode(("combined", ("coin-flip", session, index))))
    c   = hash_to_range("coin-extract", (session, index, tag), low, high)

This module exploits that structure.  Per-party bits live in a ``(B, n)``
numpy array; each iteration groups rows by bit configuration, resolves the
iteration *transition* (per-party Proxcensus value/grade, per-round message
and signature tallies, coin-combine success) **once per distinct
configuration**, then applies the paper's extraction function as a
vectorized array expression over the batch's coin column.  Signature counts
come out of the per-configuration tallies arithmetically — no signature,
share or message object is ever materialized per trial.

The transition itself is not re-derived by hand: it is obtained by running
the *object simulator* once per configuration on a single-iteration probe
program (the exact wire behavior of one ``Π_iter`` segment, including the
real adversary instance).  That makes the vector backend bit-identical to
the reference by construction — the only arithmetic this module trusts is
the coin derivation above and :func:`repro.core.extraction.extract`'s
closed form, both covered by the equivalence suite in
``tests/engine/test_vectorized.py``.

Anything the model cannot express — the real-RSA backend, trace
collection, legacy metrics, protocols or adversaries without a registered
vector model, non-bit inputs, exotic adversary parameters — falls back
per-spec to :func:`repro.engine.runner.run_trial`, which is the same code
path ``backend="object"`` uses, so results are identical either way.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # numpy is an engine-layer acceleration; protocol code never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from ..core.extraction import extract
from ..core.probabilistic import ProbTermOutput
from ..crypto.coin import coin_message_tag, threshold_coin_program
from ..crypto.random_oracle import hash_to_range
from ..crypto.vrf_coin import vrf_coin_from_evaluations, vrf_evaluate
from ..network.messages import get_field
from ..network.metrics import RunMetrics
from ..network.party import resume_with, run_parallel
from ..network.simulator import ExecutionResult, SyncSimulator
from ..proxcensus.linear_half import prox_linear_half_program
from ..proxcensus.one_third import prox_one_third_program
from .plan import TrialSpec
from .registry import build_adversary, register_vector_model, vector_model_for

__all__ = [
    "VectorModelError",
    "batch_key",
    "clear_probe_cache",
    "execute_chunk",
    "probe_cache_stats",
    "run_vector_batch",
    "unsupported_reason",
]


class VectorModelError(RuntimeError):
    """A vector-model invariant failed; callers fall back to the object path."""


# Probe executions run under a fixed session: transitions are
# session-independent (see module docstring), so any tag works.
_PROBE_SESSION = "vector-probe"

# (batch_key(spec), probe token) → probe.  A bounded LRU, shared across
# chunks and batches: AdaptiveRunner streams many small batches of the
# same configurations, so evicting least-recently-used entries (rather
# than clearing wholesale) keeps the per-config probes hot across the
# whole run.  Hit/miss counters feed the ``probe_cache`` telemetry spans.
_PROBE_CACHE: "OrderedDict[Any, Any]" = OrderedDict()
_PROBE_CACHE_LIMIT = 1024
_PROBE_CACHE_HITS = 0
_PROBE_CACHE_MISSES = 0


def _probe_cached(key: Any, build) -> Any:
    """LRU-memoized probe lookup; ``build()`` runs on a miss."""
    global _PROBE_CACHE_HITS, _PROBE_CACHE_MISSES
    entry = _PROBE_CACHE.get(key)
    if entry is not None:
        _PROBE_CACHE.move_to_end(key)
        _PROBE_CACHE_HITS += 1
        return entry
    _PROBE_CACHE_MISSES += 1
    entry = build()
    _PROBE_CACHE[key] = entry
    while len(_PROBE_CACHE) > _PROBE_CACHE_LIMIT:
        _PROBE_CACHE.popitem(last=False)
    return entry


def probe_cache_stats() -> Dict[str, int]:
    """Lifetime probe-cache counters for this process."""
    return {
        "hits": _PROBE_CACHE_HITS,
        "misses": _PROBE_CACHE_MISSES,
        "size": len(_PROBE_CACHE),
        "limit": _PROBE_CACHE_LIMIT,
    }


def clear_probe_cache() -> None:
    """Drop all cached probes and reset the hit/miss counters."""
    global _PROBE_CACHE_HITS, _PROBE_CACHE_MISSES
    _PROBE_CACHE.clear()
    _PROBE_CACHE_HITS = 0
    _PROBE_CACHE_MISSES = 0


@dataclasses.dataclass(frozen=True)
class _IterationProbe:
    """The batch-invariant outcome of one iteration for one configuration.

    ``values``/``grades`` are the per-party Proxcensus outputs (already
    passed through ``Π_iter``'s non-bit guard), ``coin_ok`` whether each
    party's coin combine succeeds (a structural fact: share counts),
    ``tallies`` the iteration's per-round metric rows in execution order,
    and ``corrupted`` the corruption set after the iteration.
    """

    values: Tuple[int, ...]
    grades: Tuple[int, ...]
    coin_ok: Tuple[bool, ...]
    tallies: Tuple[Tuple[int, int, int, int, int], ...]
    corrupted: frozenset


def batch_key(spec: TrialSpec) -> TrialSpec:
    """The spec with per-trial identity erased: equal keys ⇒ one batch.

    Trials agreeing on everything but ``(seed, session, config)`` share
    dynamics (the module-docstring invariant), so the chunk executor
    groups by this key and the probe memo is keyed by it.
    """
    return dataclasses.replace(spec, seed=0, session="", config="")


#: The complete vocabulary of exact fallback-reason strings the
#: ``*_reason`` helpers may return.  ``repro check`` (VEC503) pins every
#: constant return in this module to this set, so a reworded reason
#: cannot silently fork from the strings that dashboards and tests
#: aggregate on.  Parameterized reasons are covered by the prefix tuple
#: below instead.
FALLBACK_REASONS = frozenset(
    {
        "numpy unavailable",
        "spec opted out (vectorizable=False)",
        "real-RSA backend",
        "adversary victims missing or not a sequence",
        "corruption budget exceeded (object path raises)",
        "regime violation 3t >= n (object path raises)",
        "regime violation 2t >= n (object path raises)",
        "max_rounds below protocol length (object path raises)",
        "max_rounds below the iteration cap (object path may raise)",
        "unsupported down_group value",
        "straddle12 with non-standard iteration_rounds",
        "unhashable inputs",
        "invalid coin range (object path raises)",
        "invalid adversary coin range (object path raises)",
        "session-pinned withhold_coin not modeled",
        "adversary coin index differs from protocol (not modeled)",
    }
)

#: Allowed heads for parameterized (f-string) fallback reasons.  A
#: reason that interpolates spec details must start with one of these.
FALLBACK_REASON_PREFIXES = (
    "fault injection",
    "no ",
    "non-bit input",
    "unsupported ",
    "victim ",
    "regime ",
    "invalid ",
    "vector model error:",
)


def unsupported_reason(spec: TrialSpec) -> Optional[str]:
    """Why this spec cannot take the vector path (``None`` = it can).

    The checks are deliberately conservative: any configuration whose
    object-path behavior the vector models have not proven to reproduce —
    including ones where the object path would *raise* — is routed to the
    object simulator.
    """
    if _np is None:
        return "numpy unavailable"
    if not spec.vectorizable:
        return "spec opted out (vectorizable=False)"
    if spec.faults is not None:
        # Unreachable through TrialSpec (__post_init__ forces the flag
        # off), kept as a guard: the lockstep models simulate the clean
        # synchronous network only.
        return f"fault injection ({spec.faults!r}) is not vectorizable"
    if spec.backend != "ideal":
        return "real-RSA backend"
    model = vector_model_for(spec.protocol, spec.adversary)
    if model is None:
        return (
            f"no vector model registered for "
            f"({spec.protocol!r}, {spec.adversary!r})"
        )
    return model.unsupported_reason(spec)


def supports(spec: TrialSpec) -> bool:
    """``True`` iff the vector backend would batch this spec."""
    return unsupported_reason(spec) is None


def run_vector_batch(specs: Sequence[TrialSpec]) -> List[ExecutionResult]:
    """Execute same-configuration supported specs in one lockstep batch.

    All specs must share :func:`batch_key` and pass :func:`supports`;
    results come back in spec order and are bit-identical to
    ``run_trial`` on each spec.
    """
    specs = list(specs)
    if not specs:
        return []
    first = specs[0]
    key = batch_key(first)
    for spec in specs[1:]:
        if batch_key(spec) != key:
            raise VectorModelError("batch mixes configurations")
    reason = unsupported_reason(first)
    if reason is not None:
        raise VectorModelError(f"unsupported spec in vector batch: {reason}")
    model = vector_model_for(first.protocol, first.adversary)
    return model.run_batch(specs)


def execute_chunk(
    chunk: Sequence[Tuple[int, TrialSpec]],
    legacy_metrics: bool = False,
    trace_dir: Optional[str] = None,
    metrics: Optional[Dict[int, Any]] = None,
) -> Tuple[List[Tuple[int, ExecutionResult]], Dict[str, Any]]:
    """Run a chunk of (index, spec) pairs, batching what the models support.

    The vector entry point the runner uses for ``backend="vector"``:
    eligible specs are grouped by :func:`batch_key` and executed in
    lockstep; everything else (plus whole batches whose probe invariants
    fail) takes the object simulator.  Returns the results in chunk order
    plus batching stats for telemetry: ``{"batched", "fallback",
    "batches": [{"config", "size"}, ...], "cache_hits", "cache_misses",
    "fallback_reasons": {reason: count}}`` — the reason audit is what
    makes a silent fallback visible in ``repro bench --telemetry``.

    ``metrics`` (a mutable index → registry mapping, filled in place)
    requests per-trial metrics collection.  The lockstep models compute
    decisions without materializing per-message deliveries, so metrics
    collection — like tracing — forces every spec through the object
    simulator, accounted per-spec under the ``"metrics collection
    requested"`` fallback reason.  Results stay bit-identical; that is
    what makes vector-with-metrics artifacts equal serial/pooled ones.
    """
    from .runner import (  # circular at import time
        run_measured_trial,
        run_traced_trial,
        run_trial,
    )

    def object_path(index: int, spec: TrialSpec) -> ExecutionResult:
        if metrics is not None:
            result, registry = run_measured_trial(
                spec, trace_dir, index, legacy_metrics
            )
            metrics[index] = registry
            return result
        if trace_dir is not None:
            return run_traced_trial(spec, trace_dir, index, legacy_metrics)
        return run_trial(spec, legacy_metrics=legacy_metrics)

    cache_before = probe_cache_stats()
    results: Dict[int, ExecutionResult] = {}
    batches: Dict[TrialSpec, List[Tuple[int, TrialSpec]]] = {}
    fallback: List[Tuple[int, TrialSpec]] = []
    reasons: Counter = Counter()
    for index, spec in chunk:
        if legacy_metrics:
            reasons["legacy metrics requested"] += 1
            fallback.append((index, spec))
            continue
        if metrics is not None:
            reasons["metrics collection requested"] += 1
            fallback.append((index, spec))
            continue
        if trace_dir is not None:
            reasons["trace collection requested"] += 1
            fallback.append((index, spec))
            continue
        reason = unsupported_reason(spec)
        if reason is not None:
            reasons[reason] += 1
            fallback.append((index, spec))
        else:
            batches.setdefault(batch_key(spec), []).append((index, spec))

    stats: Dict[str, Any] = {"batched": 0, "fallback": len(fallback), "batches": []}
    for members in batches.values():
        specs = [spec for _, spec in members]
        try:
            outcomes = run_vector_batch(specs)
        except VectorModelError as exc:
            # A probe invariant failed — the conservative answer is the
            # reference simulator, which is always correct.
            reasons[f"vector model error: {exc}"] += len(members)
            fallback.extend(members)
            stats["fallback"] += len(members)
            continue
        for (index, _), result in zip(members, outcomes):
            results[index] = result
        stats["batched"] += len(members)
        stats["batches"].append(
            {"config": specs[0].config_key, "size": len(members)}
        )
    for index, spec in fallback:
        results[index] = object_path(index, spec)
    cache_after = probe_cache_stats()
    stats["cache_hits"] = cache_after["hits"] - cache_before["hits"]
    stats["cache_misses"] = cache_after["misses"] - cache_before["misses"]
    stats["fallback_reasons"] = dict(reasons)
    return [(index, results[index]) for index, _ in chunk], stats


# ── Shared model machinery ───────────────────────────────────────────────


def _suite(spec: TrialSpec):
    from .runner import _suite_for  # circular at import time

    return _suite_for(spec)


def _coin_value(suite, session: str, index: Any, low: int, high: int) -> int:
    """The trial's coin value, derived without materializing shares.

    Mirrors ``threshold_coin_program`` + ``coin_value_from_signature``:
    combined ideal signatures are unique per (key, message), so when the
    probe proves the combine succeeds the value is this pure function.
    """
    message = coin_message_tag(session, index)
    tag = suite.coin.combined_bytes(message)
    return hash_to_range("coin-extract", (session, index, tag), low, high)


def _extract_array(values, grades_arr, coins, slots: int):
    """Vectorized :func:`repro.core.extraction.extract` over ``(B, n)`` arrays."""
    grades = (slots - 1) // 2
    parity = slots % 2
    hit_one = coins <= grades_arr + (grades + 1 - parity)
    hit_zero = coins <= (grades - grades_arr)
    return _np.where(values == 1, hit_one, hit_zero).astype(_np.int64)


def _run_probe(
    spec: TrialSpec,
    bits: Tuple[int, ...],
    factory,
    iteration_rounds: int,
) -> _IterationProbe:
    """One object-simulator execution of a single-iteration probe program.

    Memoized on ``(batch_key(spec), bits)``.  The probe runs under a fixed
    session and seed — legitimate because supported protocols never
    consume party/adversary RNG streams and signature *structure* is
    session-independent; only coin values differ, and those are computed
    per trial by :func:`_coin_value`.
    """
    memo_key = (batch_key(spec), bits)
    return _probe_cached(
        memo_key, lambda: _execute_probe(spec, bits, factory, iteration_rounds)
    )


def _execute_probe(
    spec: TrialSpec,
    bits: Tuple[int, ...],
    factory,
    iteration_rounds: int,
) -> _IterationProbe:
    adversary = build_adversary(spec.adversary, spec.adversary_param_dict, None)
    simulator = SyncSimulator(
        num_parties=spec.num_parties,
        max_faulty=spec.max_faulty,
        crypto=_suite(spec),
        adversary=adversary,
        seed=0,
        session=_PROBE_SESSION,
        max_rounds=spec.max_rounds,
        collect_signatures=spec.collect_signatures,
    )
    result = simulator.run(factory, list(bits))

    n = spec.num_parties
    values: List[int] = []
    grades: List[int] = []
    coin_ok: List[bool] = []
    for pid in range(n):
        if result.outputs.get(pid) is None or result.finish_rounds.get(
            pid
        ) != iteration_rounds:
            raise VectorModelError(
                f"probe party {pid} did not finish in {iteration_rounds} rounds"
            )
        prox_output, coin = result.outputs[pid]
        value, grade = prox_output
        if value not in (0, 1):  # Π_iter's defensive non-bit guard
            value, grade = 0, 0
        values.append(int(value))
        grades.append(int(grade))
        coin_ok.append(coin is not None)
    if result.metrics.rounds != iteration_rounds:
        raise VectorModelError("probe round count mismatch")
    tallies = tuple(
        (
            round_index,
            stats.honest_messages,
            stats.corrupt_messages,
            stats.honest_signatures,
            stats.corrupt_signatures,
        )
        for round_index, stats in result.metrics.per_round.items()
    )
    return _IterationProbe(
        values=tuple(values),
        grades=tuple(grades),
        coin_ok=tuple(coin_ok),
        tallies=tallies,
        corrupted=frozenset(result.corrupted),
    )


# ── Replay probes: one full reference execution, replicated per trial ────


@dataclasses.dataclass(frozen=True)
class _ReplayProbe:
    """A complete object-simulator execution, frozen for replication.

    ``outputs`` and ``finish`` preserve the simulator's recording order
    (parties return in (round, pid) order) so replicated results are
    bit-identical down to dict insertion order.
    """

    outputs: Tuple[Tuple[int, Any], ...]
    finish: Tuple[Tuple[int, int], ...]
    corrupted: frozenset
    rounds: int
    tallies: Tuple[Tuple[int, int, int, int, int], ...]

    def replicate(self, inputs: Sequence[Any]) -> ExecutionResult:
        """A fresh :class:`ExecutionResult` carrying this probe's outcome."""
        return ExecutionResult(
            outputs={pid: value for pid, value in self.outputs},
            corrupted=set(self.corrupted),
            metrics=RunMetrics.from_round_tallies(self.rounds, self.tallies),
            inputs=dict(enumerate(inputs)),
            finish_rounds={pid: r for pid, r in self.finish},
        )


def _freeze_result(result: ExecutionResult) -> _ReplayProbe:
    tallies = tuple(
        (
            round_index,
            stats.honest_messages,
            stats.corrupt_messages,
            stats.honest_signatures,
            stats.corrupt_signatures,
        )
        for round_index, stats in result.metrics.per_round.items()
    )
    return _ReplayProbe(
        outputs=tuple(result.outputs.items()),
        finish=tuple(result.finish_rounds.items()),
        corrupted=frozenset(result.corrupted),
        rounds=result.metrics.rounds,
        tallies=tallies,
    )


def _run_replay_probe(spec: TrialSpec, token: Any) -> _ReplayProbe:
    """One real ``run_trial`` on ``spec``, frozen and LRU-cached.

    Unlike :func:`_run_probe` this runs the spec *as given* (its own seed
    and session) through the full object path — registry-resolved factory
    and adversary included — so the probe trial's result is correct by
    definition; replication to the rest of the batch rests on the
    session-invariance argument of the module docstring, pinned by the
    equivalence grid.
    """
    from .runner import run_trial  # circular at import time

    memo_key = (batch_key(spec), token)
    return _probe_cached(memo_key, lambda: _freeze_result(run_trial(spec)))


def _bit_input_reason(spec: TrialSpec) -> Optional[str]:
    for value in spec.inputs:
        # Strict ints only: bool inputs pass the protocols' `bit in (0, 1)`
        # check but tangle value identity in repr-keyed tallies — the
        # object path handles them, so they simply are not vectorized.
        if type(value) is not int or value not in (0, 1):
            return f"non-bit input {value!r}"
    return None


def _kappa_reason(spec: TrialSpec) -> Optional[str]:
    params = spec.param_dict
    if set(params) != {"kappa"}:
        return f"unsupported protocol params {sorted(params)}"
    kappa = params["kappa"]
    if type(kappa) is not int or kappa < 1:
        return f"unsupported kappa {kappa!r}"
    return None


def _victims_reason(spec: TrialSpec, allowed_params: frozenset) -> Optional[str]:
    params = spec.adversary_param_dict
    if not set(params) <= allowed_params:
        return f"unsupported adversary params {sorted(params)}"
    victims = params.get("victims")
    if not isinstance(victims, tuple) or not victims:
        return "adversary victims missing or not a sequence"
    for victim in victims:
        if type(victim) is not int or not (0 <= victim < spec.num_parties):
            return f"victim {victim!r} out of range"
    if len(set(victims)) > spec.max_faulty:
        return "corruption budget exceeded (object path raises)"
    return None


# ── ba_one_third: one Prox_{2^κ+1} iteration, coin in round κ+1 ─────────


class _BaOneThirdModel:
    """Vector model for ``ba_one_third`` × {no adversary, ``straddle13``}.

    The whole protocol is a single ``Π_iter``: the probe covers all κ+1
    rounds, so the batch shares one transition and only the final
    extraction varies per trial.
    """

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _bit_input_reason(spec) or _kappa_reason(spec)
        if reason is not None:
            return reason
        n, t = spec.num_parties, spec.max_faulty
        if 3 * t >= n:
            return "regime violation 3t >= n (object path raises)"
        kappa = spec.param_dict["kappa"]
        if spec.max_rounds < kappa + 1:
            return "max_rounds below protocol length (object path raises)"
        if spec.adversary == "straddle13":
            reason = _victims_reason(
                spec, frozenset({"victims", "down_group"})
            )
            if reason is not None:
                return reason
            down_group = spec.adversary_param_dict.get("down_group")
            if down_group is not None and not isinstance(down_group, tuple):
                return "unsupported down_group value"
        elif spec.adversary is not None:
            return f"no ba_one_third vector model for {spec.adversary!r}"
        return None

    @staticmethod
    def _probe_factory(kappa: int):
        # Wire-identical to ba_one_third_program (Π_iter, overlap_coin
        # False), except it returns (prox_output, coin) instead of the
        # extracted bit — extraction happens vectorized, per trial.
        low, high = 1, 2 ** kappa

        def factory(ctx, bit):
            prox_output = yield from prox_one_third_program(ctx, bit, rounds=kappa)
            coin = yield from threshold_coin_program(
                ctx, ("ba13", kappa), low, high
            )
            return (prox_output, coin)

        return factory

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        kappa = first.param_dict["kappa"]
        n = first.num_parties
        rounds_total = kappa + 1
        slots = 2 ** kappa + 1
        low, high = 1, slots - 1

        probe = _run_probe(
            first, tuple(first.inputs), cls._probe_factory(kappa), rounds_total
        )

        batch = len(specs)
        coins = _np.fromiter(
            (
                _coin_value(suite, spec.session, ("ba13", kappa), low, high)
                for spec in specs
            ),
            dtype=_np.int64,
            count=batch,
        )
        values = _np.array(probe.values, dtype=_np.int64)[None, :]
        grades = _np.array(probe.grades, dtype=_np.int64)[None, :]
        ok = _np.array(probe.coin_ok, dtype=bool)[None, :]
        coin_matrix = _np.where(ok, coins[:, None], low)
        out_bits = _extract_array(values, grades, coin_matrix, slots)

        inputs_map = dict(enumerate(first.inputs))
        results = []
        for row in range(batch):
            results.append(
                ExecutionResult(
                    outputs={pid: int(out_bits[row, pid]) for pid in range(n)},
                    corrupted=set(probe.corrupted),
                    metrics=RunMetrics.from_round_tallies(
                        rounds_total, probe.tallies
                    ),
                    inputs=dict(inputs_map),
                    finish_rounds={pid: rounds_total for pid in range(n)},
                )
            )
        return results


# ── ba_one_half: ⌈κ/2⌉ iterations of Π_iter^5, coin ∥ Prox round 3 ──────


class _BaOneHalfModel:
    """Vector model for ``ba_one_half`` × {no adversary, ``straddle12``}.

    Iterations are independent 3-round segments (the adversary's state is
    per-iteration), so each is one probe per distinct bit configuration;
    bit configurations are tracked lockstep in a ``(B, n)`` array and
    re-grouped per iteration as coins split the batch.
    """

    ITERATION_ROUNDS = 3

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _bit_input_reason(spec) or _kappa_reason(spec)
        if reason is not None:
            return reason
        n, t = spec.num_parties, spec.max_faulty
        if 2 * t >= n:
            return "regime violation 2t >= n (object path raises)"
        kappa = spec.param_dict["kappa"]
        iterations = -(-kappa // 2)
        if spec.max_rounds < 3 * iterations:
            return "max_rounds below protocol length (object path raises)"
        if spec.adversary == "straddle12":
            reason = _victims_reason(
                spec, frozenset({"victims", "iteration_rounds"})
            )
            if reason is not None:
                return reason
            rounds = spec.adversary_param_dict.get("iteration_rounds", 3)
            if rounds != _BaOneHalfModel.ITERATION_ROUNDS:
                return "straddle12 with non-standard iteration_rounds"
        elif spec.adversary is not None:
            return f"no ba_one_half vector model for {spec.adversary!r}"
        return None

    @staticmethod
    def _probe_factory():
        # Wire-identical to one ba_one_half iteration: Π_iter^5 with the
        # 3-round Prox (rounds 1–2 driven directly, round 3 parallel with
        # the coin), under the iter0 subsession the fresh per-iteration
        # adversary also derives.  Returns (prox_output, coin) raw.
        def factory(ctx, bit):
            iteration_ctx = ctx.subsession("iter0")
            prox = prox_linear_half_program(iteration_ctx, bit, rounds=3)
            outbox = next(prox)
            for _ in range(2):
                inbox = yield outbox
                outbox = prox.send(inbox)
            results = yield from run_parallel(
                iteration_ctx,
                {
                    "prox": resume_with(prox, outbox),
                    "coin": threshold_coin_program(
                        iteration_ctx, ("ba12", 0), 1, 4
                    ),
                },
            )
            return (results["prox"], results["coin"])

        return factory

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        kappa = first.param_dict["kappa"]
        n = first.num_parties
        iterations = -(-kappa // 2)
        rounds_total = cls.ITERATION_ROUNDS * iterations
        factory = cls._probe_factory()

        batch = len(specs)
        bits = _np.tile(_np.array(first.inputs, dtype=_np.int64), (batch, 1))
        rows_per_trial: List[List[Tuple[int, int, int, int, int]]] = [
            [] for _ in range(batch)
        ]
        corrupted: frozenset = frozenset()

        for iteration in range(iterations):
            # Group batch rows by bit configuration; probe each once.
            group_of: Dict[bytes, int] = {}
            inverse = _np.empty(batch, dtype=_np.int64)
            probes: List[_IterationProbe] = []
            for row in range(batch):
                config = bits[row].tobytes()
                group = group_of.get(config)
                if group is None:
                    group = group_of[config] = len(probes)
                    probes.append(
                        _run_probe(
                            first,
                            tuple(int(b) for b in bits[row]),
                            factory,
                            cls.ITERATION_ROUNDS,
                        )
                    )
                inverse[row] = group
            corrupted = probes[0].corrupted

            coins = _np.fromiter(
                (
                    _coin_value(
                        suite,
                        f"{spec.session}/iter{iteration}",
                        ("ba12", iteration),
                        1,
                        4,
                    )
                    for spec in specs
                ),
                dtype=_np.int64,
                count=batch,
            )
            values = _np.array([p.values for p in probes], dtype=_np.int64)
            grades = _np.array([p.grades for p in probes], dtype=_np.int64)
            ok = _np.array([p.coin_ok for p in probes], dtype=bool)
            coin_matrix = _np.where(ok[inverse], coins[:, None], 1)
            bits = _extract_array(
                values[inverse], grades[inverse], coin_matrix, 5
            )

            offset = cls.ITERATION_ROUNDS * iteration
            for row in range(batch):
                rows_per_trial[row].extend(
                    (r + offset, hm, cm, hs, cs)
                    for r, hm, cm, hs, cs in probes[inverse[row]].tallies
                )

        inputs_map = dict(enumerate(first.inputs))
        results = []
        for row, spec in enumerate(specs):
            results.append(
                ExecutionResult(
                    outputs={pid: int(bits[row, pid]) for pid in range(n)},
                    corrupted=set(corrupted),
                    metrics=RunMetrics.from_round_tallies(
                        rounds_total, rows_per_trial[row]
                    ),
                    inputs=dict(inputs_map),
                    finish_rounds={pid: rounds_total for pid in range(n)},
                )
            )
        return results


# ── fm_probabilistic: per-iteration lockstep with halting parties ───────


_FM_HALTED = "h"  # probe token for a party that has already returned
_FM_MAX_ITERATIONS = 64  # fm_probabilistic_program's default cap


@dataclasses.dataclass(frozen=True)
class _FmIterationProbe:
    """One fm iteration's transition for a (bit/halted) token configuration.

    Halted parties hold ``None`` values/grades (they sent nothing); the
    tallies cover the remaining active parties' three rounds.
    """

    values: Tuple[Optional[int], ...]
    grades: Tuple[Optional[int], ...]
    coin_ok: Tuple[bool, ...]
    tallies: Tuple[Tuple[int, int, int, int, int], ...]


def _fm_probe_factory():
    # Wire-identical to one fm_probabilistic iteration: the 2-round
    # Prox_5 followed by the coin, under the pt1 subsession (structure is
    # iteration-independent; only coin *values* differ, derived per
    # trial/iteration).  A halted token returns before the first yield —
    # exactly what a returned party contributes to later rounds: nothing.
    def factory(ctx, token):
        if token == _FM_HALTED:
            return None
        iteration_ctx = ctx.subsession("pt1")
        value, grade = yield from prox_one_third_program(
            iteration_ctx, token, rounds=2
        )
        coin = yield from threshold_coin_program(iteration_ctx, ("pt", 1), 1, 4)
        return (value, grade, coin)

    return factory


def _run_fm_probe(spec: TrialSpec, tokens: Tuple[Any, ...]) -> _FmIterationProbe:
    memo_key = (batch_key(spec), ("fm-state", tokens))
    return _probe_cached(memo_key, lambda: _execute_fm_probe(spec, tokens))


def _execute_fm_probe(spec: TrialSpec, tokens: Tuple[Any, ...]) -> _FmIterationProbe:
    simulator = SyncSimulator(
        num_parties=spec.num_parties,
        max_faulty=spec.max_faulty,
        crypto=_suite(spec),
        adversary=None,
        seed=0,
        session=_PROBE_SESSION,
        max_rounds=spec.max_rounds,
        collect_signatures=spec.collect_signatures,
    )
    result = simulator.run(_fm_probe_factory(), list(tokens))
    rounds = 3
    values: List[Optional[int]] = []
    grades: List[Optional[int]] = []
    coin_ok: List[bool] = []
    for pid, token in enumerate(tokens):
        if token == _FM_HALTED:
            if result.finish_rounds.get(pid) != 0:
                raise VectorModelError(f"halted probe party {pid} sent messages")
            values.append(None)
            grades.append(None)
            coin_ok.append(False)
            continue
        if (
            result.outputs.get(pid) is None
            or result.finish_rounds.get(pid) != rounds
        ):
            raise VectorModelError(
                f"fm probe party {pid} did not finish in {rounds} rounds"
            )
        value, grade, coin = result.outputs[pid]
        values.append(value)
        grades.append(grade)
        coin_ok.append(coin is not None)
    if result.metrics.rounds != rounds:
        raise VectorModelError("fm probe round count mismatch")
    tallies = tuple(
        (
            round_index,
            stats.honest_messages,
            stats.corrupt_messages,
            stats.honest_signatures,
            stats.corrupt_signatures,
        )
        for round_index, stats in result.metrics.per_round.items()
    )
    return _FmIterationProbe(
        values=tuple(values),
        grades=tuple(grades),
        coin_ok=tuple(coin_ok),
        tallies=tallies,
    )


class _FmProbabilisticModel:
    """Vector model for ``fm_probabilistic`` × no adversary.

    The probabilistic-termination loop is simulated iteration by
    iteration: each iteration's wire dynamics come from one probe per
    distinct (bit, halted) token configuration, the per-trial coin is the
    usual pure function of (key material, session, iteration), and the
    decide/adopt/coin-flip branching of
    :func:`~repro.core.probabilistic.fm_probabilistic_program` is applied
    in plain arithmetic.  Parties halt in *different* rounds — the model
    reproduces the termination spread, per-party finish rounds included.
    """

    ITERATION_ROUNDS = 3

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _bit_input_reason(spec)
        if reason is not None:
            return reason
        if spec.param_dict:
            return f"unsupported protocol params {sorted(spec.param_dict)}"
        if spec.adversary is not None:
            return f"no fm_probabilistic vector model for {spec.adversary!r}"
        n, t = spec.num_parties, spec.max_faulty
        if 3 * t >= n:
            return "regime violation 3t >= n (object path raises)"
        if spec.max_rounds < 3 * _FM_MAX_ITERATIONS:
            return "max_rounds below the iteration cap (object path may raise)"
        return None

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        n = first.num_parties
        inputs_map = dict(enumerate(first.inputs))

        results = []
        for spec in specs:
            bits = [int(b) for b in first.inputs]
            decided: Dict[int, Tuple[int, int]] = {}  # pid -> (value, iteration)
            halted: set = set()
            outputs: Dict[int, ProbTermOutput] = {}
            finish: Dict[int, int] = {}
            rows: List[Tuple[int, int, int, int, int]] = []
            rounds_total = 0
            for iteration in range(1, _FM_MAX_ITERATIONS + 1):
                if len(halted) == n:
                    break
                tokens = tuple(
                    _FM_HALTED if pid in halted else bits[pid] for pid in range(n)
                )
                probe = _run_fm_probe(first, tokens)
                coin = _coin_value(
                    suite,
                    f"{spec.session}/pt{iteration}",
                    ("pt", iteration),
                    1,
                    4,
                )
                offset = cls.ITERATION_ROUNDS * (iteration - 1)
                rows.extend(
                    (r + offset, hm, cm, hs, cs)
                    for r, hm, cm, hs, cs in probe.tallies
                )
                rounds_total = cls.ITERATION_ROUNDS * iteration
                for pid in range(n):
                    if pid in halted:
                        continue
                    value, grade = probe.values[pid], probe.grades[pid]
                    trial_coin = coin if probe.coin_ok[pid] else 1
                    if pid in decided and decided[pid][1] < iteration:
                        # The post-decision helper iteration is done.
                        outputs[pid] = ProbTermOutput(*decided[pid])
                        finish[pid] = rounds_total
                        halted.add(pid)
                    elif value in (0, 1) and grade == 2:
                        decided[pid] = (value, iteration)
                        bits[pid] = value
                    elif value in (0, 1) and grade >= 1:
                        bits[pid] = value
                    else:
                        bits[pid] = extract(0, 0, trial_coin, 5)
                if iteration == _FM_MAX_ITERATIONS:
                    # The program's cap: still-running parties return the
                    # working value with decided_iteration = the cap.
                    for pid in range(n):
                        if pid not in halted:
                            outputs[pid] = ProbTermOutput(
                                value=bits[pid],
                                decided_iteration=_FM_MAX_ITERATIONS,
                            )
                            finish[pid] = rounds_total
                            halted.add(pid)
            order = sorted(range(n), key=lambda pid: (finish[pid], pid))
            results.append(
                ExecutionResult(
                    outputs={pid: outputs[pid] for pid in order},
                    corrupted=set(),
                    metrics=RunMetrics.from_round_tallies(rounds_total, rows),
                    inputs=dict(inputs_map),
                    finish_rounds={pid: finish[pid] for pid in order},
                )
            )
        return results


# ── turpin_coan_classic / multivalued_ba: deterministic + one inner coin ─


@dataclasses.dataclass(frozen=True)
class _LiftProbe:
    """Per-party (candidate value, inner-BA prox value/grade, coin_ok)."""

    candidates: Tuple[Any, ...]
    values: Tuple[int, ...]
    grades: Tuple[int, ...]
    coin_ok: Tuple[bool, ...]
    tallies: Tuple[Tuple[int, int, int, int, int], ...]
    corrupted: frozenset


def _run_lift_probe(
    spec: TrialSpec, token: Any, factory, total_rounds: int
) -> _LiftProbe:
    memo_key = (batch_key(spec), token)
    return _probe_cached(
        memo_key, lambda: _execute_lift_probe(spec, factory, total_rounds)
    )


def _execute_lift_probe(spec: TrialSpec, factory, total_rounds: int) -> _LiftProbe:
    simulator = SyncSimulator(
        num_parties=spec.num_parties,
        max_faulty=spec.max_faulty,
        crypto=_suite(spec),
        adversary=None,
        seed=0,
        session=_PROBE_SESSION,
        max_rounds=spec.max_rounds,
        collect_signatures=spec.collect_signatures,
    )
    result = simulator.run(factory, list(spec.inputs))
    candidates: List[Any] = []
    values: List[int] = []
    grades: List[int] = []
    coin_ok: List[bool] = []
    for pid in range(spec.num_parties):
        if result.outputs.get(pid) is None or result.finish_rounds.get(
            pid
        ) != total_rounds:
            raise VectorModelError(
                f"lift probe party {pid} did not finish in {total_rounds} rounds"
            )
        candidate, prox_output, coin = result.outputs[pid]
        value, grade = prox_output
        if value not in (0, 1):  # Π_iter's defensive non-bit guard
            value, grade = 0, 0
        candidates.append(candidate)
        values.append(int(value))
        grades.append(int(grade))
        coin_ok.append(coin is not None)
    if result.metrics.rounds != total_rounds:
        raise VectorModelError("lift probe round count mismatch")
    tallies = tuple(
        (
            round_index,
            stats.honest_messages,
            stats.corrupt_messages,
            stats.honest_signatures,
            stats.corrupt_signatures,
        )
        for round_index, stats in result.metrics.per_round.items()
    )
    return _LiftProbe(
        candidates=tuple(candidates),
        values=tuple(values),
        grades=tuple(grades),
        coin_ok=tuple(coin_ok),
        tallies=tallies,
        corrupted=frozenset(result.corrupted),
    )


def _hashable_inputs_reason(spec: TrialSpec) -> Optional[str]:
    try:
        hash(spec.inputs)
    except TypeError:
        return "unhashable inputs"
    return None


def _lift_params_reason(spec: TrialSpec, allowed: frozenset) -> Optional[str]:
    params = spec.param_dict
    if not set(params) <= allowed or "kappa" not in params:
        return f"unsupported protocol params {sorted(params)}"
    kappa = params["kappa"]
    if type(kappa) is not int or kappa < 1:
        return f"unsupported kappa {kappa!r}"
    return None


class _TurpinCoanModel:
    """Vector model for ``turpin_coan_classic`` × no adversary.

    The two echo rounds and the inner BA's Proxcensus are deterministic
    and session-invariant; only the inner coin varies per trial.  The
    probe mirrors the program but returns ``(candidate, prox_output,
    coin)`` instead of extracting, so extraction (and the candidate vs
    default choice) happens per trial from the derived coin value.
    """

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _hashable_inputs_reason(spec) or _lift_params_reason(
            spec, frozenset({"kappa", "default"})
        )
        if reason is not None:
            return reason
        if spec.adversary is not None:
            return f"no turpin_coan_classic vector model for {spec.adversary!r}"
        n, t = spec.num_parties, spec.max_faulty
        if 3 * t >= n:
            return "regime violation 3t >= n (object path raises)"
        kappa = spec.param_dict["kappa"]
        if spec.max_rounds < kappa + 3:
            return "max_rounds below protocol length (object path raises)"
        return None

    @staticmethod
    def _probe_factory(kappa: int):
        # Rounds 1–2 are copied from turpin_coan_classic_program; the
        # inner ba_one_third is unrolled to its Π_iter components so the
        # probe can return the pre-extraction state.
        def factory(ctx, value):
            n, t = ctx.num_parties, ctx.max_faulty
            bottom = ("tc-bottom",)
            inbox = yield ctx.broadcast({"tc1": value})
            tally = Counter()
            for payload in inbox.values():
                v = get_field(payload, "tc1")
                try:
                    hash(v)
                except TypeError:
                    continue
                tally[v] += 1
            echo = next((v for v, c in tally.items() if c >= n - t), bottom)

            inbox = yield ctx.broadcast({"tc2": echo})
            tally = Counter()
            for payload in inbox.values():
                v = get_field(payload, "tc2")
                try:
                    hash(v)
                except TypeError:
                    continue
                if v != bottom:
                    tally[v] += 1
            if tally:
                candidate, count = max(
                    tally.items(), key=lambda kv: (kv[1], repr(kv[0]))
                )
            else:
                candidate, count = None, 0
            bit = 1 if count >= n - t else 0
            ba_ctx = ctx.subsession("tc-ba")
            prox_output = yield from prox_one_third_program(
                ba_ctx, bit, rounds=kappa
            )
            coin = yield from threshold_coin_program(
                ba_ctx, ("ba13", kappa), 1, 2 ** kappa
            )
            return (candidate, prox_output, coin)

        return factory

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        kappa = first.param_dict["kappa"]
        default = first.param_dict.get("default", "∅")
        n = first.num_parties
        rounds_total = kappa + 3
        slots = 2 ** kappa + 1

        probe = _run_lift_probe(
            first, "tc", cls._probe_factory(kappa), rounds_total
        )
        return _finish_lift_batch(
            specs,
            probe,
            suite,
            coin_session=lambda spec: f"{spec.session}/tc-ba",
            coin_index=("ba13", kappa),
            slots=slots,
            rounds_total=rounds_total,
            n=n,
            default=default,
            inputs=first.inputs,
            tally_is_candidate=True,
        )


class _MultivaluedBaModel:
    """Vector model for ``multivalued_ba`` × no adversary (t < n/3 regime).

    Same structure as the Turpin–Coan model: a deterministic multivalued
    Proxcensus, then the inner binary BA whose single coin is the only
    per-trial variation.  The ``one_half`` regime is not modeled (its
    inner BA runs ⌈κ/2⌉ coins; those sweeps fall back per spec).
    """

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _hashable_inputs_reason(spec) or _lift_params_reason(
            spec, frozenset({"kappa", "regime", "default"})
        )
        if reason is not None:
            return reason
        regime = spec.param_dict.get("regime", "one_third")
        if regime != "one_third":
            return f"regime {regime!r} not modeled (multi-coin inner BA)"
        if spec.adversary is not None:
            return f"no multivalued_ba vector model for {spec.adversary!r}"
        n, t = spec.num_parties, spec.max_faulty
        if 3 * t >= n:
            return "regime violation 3t >= n (object path raises)"
        kappa = spec.param_dict["kappa"]
        if spec.max_rounds < kappa + 3:
            return "max_rounds below protocol length (object path raises)"
        return None

    @staticmethod
    def _probe_factory(kappa: int):
        def factory(ctx, value):
            prox_ctx = ctx.subsession("mv-prox")
            output = yield from prox_one_third_program(prox_ctx, value, rounds=2)
            bit = 1 if output.grade == 2 else 0
            ba_ctx = ctx.subsession("mv-ba")
            prox_output = yield from prox_one_third_program(
                ba_ctx, bit, rounds=kappa
            )
            coin = yield from threshold_coin_program(
                ba_ctx, ("ba13", kappa), 1, 2 ** kappa
            )
            return (output.value, prox_output, coin)

        return factory

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        kappa = first.param_dict["kappa"]
        default = first.param_dict.get("default", "∅")
        n = first.num_parties
        rounds_total = kappa + 3
        slots = 2 ** kappa + 1

        probe = _run_lift_probe(
            first, "mv", cls._probe_factory(kappa), rounds_total
        )
        return _finish_lift_batch(
            specs,
            probe,
            suite,
            coin_session=lambda spec: f"{spec.session}/mv-ba",
            coin_index=("ba13", kappa),
            slots=slots,
            rounds_total=rounds_total,
            n=n,
            default=default,
            inputs=first.inputs,
            tally_is_candidate=False,
        )


def _finish_lift_batch(
    specs,
    probe: _LiftProbe,
    suite,
    coin_session,
    coin_index,
    slots: int,
    rounds_total: int,
    n: int,
    default: Any,
    inputs,
    tally_is_candidate: bool,
) -> List[ExecutionResult]:
    """Apply the per-trial coin + extraction to a multivalued-lift probe.

    ``tally_is_candidate`` distinguishes Turpin–Coan (a ``None``
    candidate means the echo tally was empty, so the *default* is the
    candidate too) from the Proxcensus lift (the candidate is the
    party's graded value, never substituted).
    """
    low, high = 1, slots - 1
    batch = len(specs)
    coins = _np.fromiter(
        (
            _coin_value(suite, coin_session(spec), coin_index, low, high)
            for spec in specs
        ),
        dtype=_np.int64,
        count=batch,
    )
    values = _np.array(probe.values, dtype=_np.int64)[None, :]
    grades = _np.array(probe.grades, dtype=_np.int64)[None, :]
    ok = _np.array(probe.coin_ok, dtype=bool)[None, :]
    coin_matrix = _np.where(ok, coins[:, None], low)
    decisions = _extract_array(values, grades, coin_matrix, slots)

    inputs_map = dict(enumerate(inputs))
    results = []
    for row in range(batch):
        outputs = {}
        for pid in range(n):
            if decisions[row, pid] == 1:
                candidate = probe.candidates[pid]
                if tally_is_candidate and candidate is None:
                    candidate = default
                outputs[pid] = candidate
            else:
                outputs[pid] = default
        results.append(
            ExecutionResult(
                outputs=outputs,
                corrupted=set(probe.corrupted),
                metrics=RunMetrics.from_round_tallies(rounds_total, probe.tallies),
                inputs=dict(inputs_map),
                finish_rounds={pid: rounds_total for pid in range(n)},
            )
        )
    return results


# ── coin protocols: one round, value is a pure function of the keys ─────


_COIN_PARAMS = frozenset({"index", "low", "high"})
_WITHHOLD_PARAMS = frozenset(
    {"victims", "index", "low", "high", "preferred", "session"}
)


def _coin_params_reason(spec: TrialSpec) -> Optional[str]:
    params = spec.param_dict
    if not set(params) <= _COIN_PARAMS:
        return f"unsupported protocol params {sorted(params)}"
    low = params.get("low", 0)
    high = params.get("high", 1)
    if type(low) is not int or type(high) is not int or low > high:
        return "invalid coin range (object path raises)"
    return None


def _coin_protocol_params(spec: TrialSpec) -> Tuple[Any, int, int]:
    params = spec.param_dict
    return params.get("index", 0), params.get("low", 0), params.get("high", 1)


class _ThresholdCoinModel:
    """Vector model for ``threshold_coin`` × {no adversary, ``withhold_coin``}.

    The threshold coin's value is a deterministic function of the key
    material, the session and the index — withholding shares can fail a
    flip but never steer it.  One probe trial pins *which* parties reach
    the threshold (session-invariant share delivery); the per-trial value
    is derived arithmetically.  ``withhold_coin`` never sees a ``"vrf"``
    payload here, so it degenerates to silencing its victims — covered by
    the same probe.
    """

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _hashable_inputs_reason(spec) or _coin_params_reason(spec)
        if reason is not None:
            return reason
        if spec.adversary is None:
            return None
        if spec.adversary != "withhold_coin":
            return f"no threshold_coin vector model for {spec.adversary!r}"
        return _victims_reason(spec, _WITHHOLD_PARAMS)

    @staticmethod
    def run_batch(specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        index, low, high = _coin_protocol_params(first)

        def build() -> _ReplayProbe:
            from .runner import run_trial

            frozen = _freeze_result(run_trial(first))
            expected = _coin_value(suite, first.session, index, low, high)
            ok: List[Tuple[int, Any]] = []
            for pid, output in frozen.outputs:
                if output is not None and output != expected:
                    raise VectorModelError(
                        f"threshold coin probe mismatch for party {pid}"
                    )
                ok.append((pid, output is not None))
            # Replace the session-bound coin values with the ok mask so a
            # cross-batch cache hit (different session) stays valid.
            return dataclasses.replace(frozen, outputs=tuple(ok))

        probe = _probe_cached((batch_key(first), "coin-ok"), build)
        results = []
        for spec in specs:
            value = _coin_value(suite, spec.session, index, low, high)
            results.append(
                ExecutionResult(
                    outputs={
                        pid: (value if ok else None) for pid, ok in probe.outputs
                    },
                    corrupted=set(probe.corrupted),
                    metrics=RunMetrics.from_round_tallies(
                        probe.rounds, probe.tallies
                    ),
                    inputs=dict(enumerate(spec.inputs)),
                    finish_rounds=dict(probe.finish),
                )
            )
        return results


class _VrfCoinModel:
    """Vector model for ``vrf_coin`` × {no adversary, ``withhold_coin``}.

    The VRF coin is pure arithmetic per trial: every party's evaluation
    is the hash of its unique signature on the coin tag, and the coin is
    derived from the minimum.  The withholding adversary's reveal scan is
    replicated exactly (same reference outcomes, same stable sort), so
    the model reproduces the *biased* coin, not the honest one.  One
    probe per reveal-count pins the wire dynamics and cross-checks the
    prediction against the object simulator.
    """

    @staticmethod
    def unsupported_reason(spec: TrialSpec) -> Optional[str]:
        reason = _hashable_inputs_reason(spec) or _coin_params_reason(spec)
        if reason is not None:
            return reason
        if spec.adversary is None:
            return None
        if spec.adversary != "withhold_coin":
            return f"no vrf_coin vector model for {spec.adversary!r}"
        reason = _victims_reason(spec, _WITHHOLD_PARAMS)
        if reason is not None:
            return reason
        adversary = spec.adversary_param_dict
        if adversary.get("session") is not None:
            return "session-pinned withhold_coin not modeled"
        index, _low, _high = _coin_protocol_params(spec)
        if adversary.get("index", 0) != index:
            return "adversary coin index differs from protocol (not modeled)"
        adv_low = adversary.get("low", 0)
        adv_high = adversary.get("high", 1)
        if type(adv_low) is not int or type(adv_high) is not int or (
            adv_low > adv_high
        ):
            return "invalid adversary coin range (object path raises)"
        return None

    @classmethod
    def run_batch(cls, specs: List[TrialSpec]) -> List[ExecutionResult]:
        first = specs[0]
        suite = _suite(first)
        scheme = suite.plain
        n = first.num_parties
        index, low, high = _coin_protocol_params(first)
        adversary = first.adversary_param_dict if first.adversary else {}
        victims = tuple(dict.fromkeys(adversary.get("victims", ())))
        corrupted = frozenset(victims)
        honest = [pid for pid in range(n) if pid not in corrupted]

        def outcome(spec: TrialSpec) -> Tuple[Tuple[int, ...], Optional[int]]:
            """(revealed victims, coin value) for one trial's session."""
            session = spec.session
            honest_evals = {
                pid: vrf_evaluate(scheme, pid, session, index)[0]
                for pid in honest
            }
            reveal: Tuple[int, ...] = ()
            if first.adversary is not None and honest_evals:
                # Mirror WithholdingCoinAdversary.decide: the reveal scan
                # uses the adversary's own range/preference parameters.
                adv_low = adversary.get("low", 0)
                adv_high = adversary.get("high", 1)
                preferred = adversary.get("preferred", 1)
                corrupt_evals = {
                    pid: vrf_evaluate(scheme, pid, session, index)
                    for pid in victims
                }
                baseline = vrf_coin_from_evaluations(
                    dict(honest_evals), session, index, adv_low, adv_high
                )
                if baseline != preferred:
                    for pid, (value, _proof) in sorted(
                        corrupt_evals.items(), key=lambda kv: kv[1][0]
                    ):
                        candidate = vrf_coin_from_evaluations(
                            {**honest_evals, pid: value},
                            session, index, adv_low, adv_high,
                        )
                        if candidate == preferred:
                            reveal = (pid,)
                            break
            valid = dict(honest_evals)
            for pid in reveal:
                valid[pid] = vrf_evaluate(scheme, pid, session, index)[0]
            if first.adversary is None:
                valid = {
                    pid: vrf_evaluate(scheme, pid, session, index)[0]
                    for pid in range(n)
                }
            return reveal, vrf_coin_from_evaluations(
                valid, session, index, low, high
            )

        outcomes = [outcome(spec) for spec in specs]

        def probe_for(spec: TrialSpec, reveal_count: int) -> _ReplayProbe:
            def build() -> _ReplayProbe:
                from .runner import run_trial

                frozen = _freeze_result(run_trial(spec))
                _reveal, predicted = outcome(spec)
                for pid, output in frozen.outputs:
                    if output != predicted:
                        raise VectorModelError(
                            f"vrf coin probe mismatch for party {pid}: "
                            f"{output!r} != {predicted!r}"
                        )
                # Outputs are session-bound; keep only the recording order
                # so cross-batch cache hits stay valid.
                return dataclasses.replace(
                    frozen,
                    outputs=tuple((pid, None) for pid, _out in frozen.outputs),
                )

            memo_key = (batch_key(spec), ("vrf-reveal", reveal_count))
            return _probe_cached(memo_key, build)

        results = []
        probes: Dict[int, _ReplayProbe] = {}
        for spec, (reveal, coin) in zip(specs, outcomes):
            reveal_count = len(reveal)
            if reveal_count not in probes:
                probes[reveal_count] = probe_for(spec, reveal_count)
            probe = probes[reveal_count]
            results.append(
                ExecutionResult(
                    outputs={pid: coin for pid, _none in probe.outputs},
                    corrupted=set(probe.corrupted),
                    metrics=RunMetrics.from_round_tallies(
                        probe.rounds, probe.tallies
                    ),
                    inputs=dict(enumerate(spec.inputs)),
                    finish_rounds=dict(probe.finish),
                )
            )
        return results


# ── deterministic protocols: whole-run replay ───────────────────────────


class _StaticReplayModel:
    """Vector model for deterministic, coin-free protocol runs.

    The Proxcensus family (and the other registered pairs below) consume
    no coins and no party randomness: the entire execution — outputs
    included — is a pure function of the inputs, the corruption schedule
    and the key material, none of which vary inside a batch.  One real
    trial (full registry resolution, real seed/session — correct by
    definition) is frozen and replicated across the batch; bit-identity
    across sessions is what the equivalence grid pins.
    """

    _ADVERSARY_PARAMS = {
        "straddle13": frozenset({"victims", "down_group"}),
        "bare_straddle12": frozenset({"victims", "iteration_rounds"}),
        "two_face": frozenset({"victims"}),
    }

    @classmethod
    def unsupported_reason(cls, spec: TrialSpec) -> Optional[str]:
        reason = _hashable_inputs_reason(spec)
        if reason is not None:
            return reason
        if spec.adversary is None:
            return None
        allowed = cls._ADVERSARY_PARAMS.get(spec.adversary)
        if allowed is None:
            return f"no replay model for adversary {spec.adversary!r}"
        return _victims_reason(spec, allowed)

    @staticmethod
    def run_batch(specs: List[TrialSpec]) -> List[ExecutionResult]:
        probe = _run_replay_probe(specs[0], "replay")
        return [probe.replicate(spec.inputs) for spec in specs]


register_vector_model("ba_one_third", None, _BaOneThirdModel)
register_vector_model("ba_one_third", "straddle13", _BaOneThirdModel)
register_vector_model("ba_one_half", None, _BaOneHalfModel)
register_vector_model("ba_one_half", "straddle12", _BaOneHalfModel)
register_vector_model("fm_probabilistic", None, _FmProbabilisticModel)
register_vector_model("turpin_coan_classic", None, _TurpinCoanModel)
register_vector_model("multivalued_ba", None, _MultivaluedBaModel)
register_vector_model("threshold_coin", None, _ThresholdCoinModel)
register_vector_model("threshold_coin", "withhold_coin", _ThresholdCoinModel)
register_vector_model("vrf_coin", None, _VrfCoinModel)
register_vector_model("vrf_coin", "withhold_coin", _VrfCoinModel)
register_vector_model("prox_one_third", None, _StaticReplayModel)
register_vector_model("prox_one_third", "straddle13", _StaticReplayModel)
register_vector_model("prox_one_third", "two_face", _StaticReplayModel)
register_vector_model("prox_linear_half", None, _StaticReplayModel)
register_vector_model("prox_linear_half", "two_face", _StaticReplayModel)
register_vector_model("prox_linear_half", "bare_straddle12", _StaticReplayModel)
register_vector_model("prox_quadratic_half", None, _StaticReplayModel)
register_vector_model("dolev_strong", None, _StaticReplayModel)
register_vector_model("prox_expand_once", None, _StaticReplayModel)
register_vector_model("proxcast", None, _StaticReplayModel)
register_vector_model("certificate_gradecast", None, _StaticReplayModel)
