"""Byzantine adversaries: the model interface and concrete strategies."""

from .base import (
    Adversary,
    AdversaryEnv,
    PassiveAdversary,
    RoundDecision,
    RoundView,
)
from .coin_bias import WithholdingCoinAdversary
from .straddle import LinearHalfStraddleAdversary, OneThirdStraddleAdversary
from .termination import GradeSplitAdversary
from .strategies import (
    CrashAdversary,
    EavesdropCoinAdversary,
    LastRoundCorruptionAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)

__all__ = [
    "Adversary",
    "AdversaryEnv",
    "CrashAdversary",
    "EavesdropCoinAdversary",
    "GradeSplitAdversary",
    "LastRoundCorruptionAdversary",
    "LinearHalfStraddleAdversary",
    "MalformedAdversary",
    "OneThirdStraddleAdversary",
    "PassiveAdversary",
    "RoundDecision",
    "RoundView",
    "TwoFaceAdversary",
    "WithholdingCoinAdversary",
]
