"""Adversary interface: strongly rushing, adaptive Byzantine corruption.

The model (paper §2.1): up to ``t`` malicious corruptions; the adversary is
*rushing* (sees all honest round-``r`` messages before choosing its own) and
*strongly rushing / adaptive* (upon seeing a message an honest party sends
in round ``r``, it may corrupt that party immediately and replace or drop
that very message).

The simulator realizes this order of events exactly:

1. every party's program computes its round-``r`` outbox (corrupted parties
   get a *shadow* honest outbox as a default);
2. the adversary inspects all outboxes via :class:`RoundView` and returns a
   :class:`RoundDecision` — replacement outboxes for already-corrupted
   parties, plus any *new* corruptions whose in-flight round-``r`` messages
   it may replace or drop;
3. only then is anything delivered.

Adversary code holds the corrupted parties' keys (it may call the crypto
suite on their behalf) but, like any party, cannot forge for honest ids.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Set

from ..crypto.keys import CryptoSuite

# Structurally identical to repro.network.messages.Outbox; declared locally
# because the simulator imports this module (importing repro.network here
# would be circular).
Outbox = Any

__all__ = ["AdversaryEnv", "RoundView", "RoundDecision", "Adversary", "PassiveAdversary"]


@dataclass
class AdversaryEnv:
    """Static facts the adversary learns at setup time."""

    num_parties: int
    max_faulty: int
    session: str
    crypto: CryptoSuite
    rng: random.Random
    inputs: Dict[int, Any]


@dataclass
class RoundView:
    """Everything the (rushing) adversary sees before round-``r`` delivery.

    ``outboxes`` maps every party id to its normalized
    ``recipient → payload`` map — honest parties' genuine messages and
    corrupted parties' shadow defaults.
    """

    round_index: int
    outboxes: Dict[int, Dict[int, Any]]
    corrupted: FrozenSet[int]


@dataclass
class RoundDecision:
    """What the adversary does with round ``r``.

    ``replace`` overrides outboxes of already-corrupted parties (parties not
    mentioned keep their shadow default).  ``corrupt`` names parties to
    corrupt *mid-round*; the mapped value replaces their in-flight outbox
    (``None`` drops it entirely — the strongly-rushing capability).
    """

    replace: Dict[int, Outbox] = field(default_factory=dict)
    corrupt: Dict[int, Optional[Outbox]] = field(default_factory=dict)


class Adversary:
    """Base adversary: corrupts nobody, changes nothing.

    Strategies override :meth:`initial_corruptions` and/or :meth:`decide`.
    """

    def setup(self, env: AdversaryEnv) -> None:
        self.env = env

    def initial_corruptions(self) -> Set[int]:
        return set()

    def decide(self, view: RoundView) -> RoundDecision:
        return RoundDecision()

    def observe(self, round_index: int, inboxes: Dict[int, Dict[int, Any]]) -> None:
        """Post-delivery hook: the inboxes corrupted parties received.

        Called by the simulator after round ``round_index`` is delivered,
        with ``{corrupted_pid: {sender: payload}}``.  Strategies that run
        their own shadow executions (e.g. the two-face equivocator) advance
        them here.
        """


class PassiveAdversary(Adversary):
    """Explicit alias for the do-nothing adversary (readability in tests)."""
