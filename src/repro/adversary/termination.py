"""An adversary that de-synchronizes probabilistic termination.

Against the Las-Vegas FM protocol (:mod:`repro.core.probabilistic`), a
fixed-round adversary cannot make honest parties *disagree* (beyond the
2^-κ error), but it *can* make them **decide in different iterations** —
which is the non-simultaneous-termination phenomenon the paper's intro
cites as the reason to prefer fixed-round protocols.

:class:`GradeSplitAdversary` is tuned to the 5-slot graded consensus
(``prox_one_third(rounds=2)``) at n = 4, t = 1 with honest inputs
``{v, v, w}``: in Proxcensus round 1 it votes ``v`` towards two honest
parties only, and in round 2 it echoes ``(v, 1)`` towards a single target
— handing the target the full top-grade quorum (grade 2 → decides now)
while the rest stop at grade 1 (decide next iteration).  One iteration of
decision spread, reliably.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..network.messages import Outbox
from .base import Adversary, AdversaryEnv, RoundDecision, RoundView

__all__ = ["GradeSplitAdversary"]


class GradeSplitAdversary(Adversary):
    """Forces a one-iteration decision spread in the Las-Vegas FM loop.

    ``victims`` — the corrupted parties; ``target`` — the honest party to
    be pushed to grade 2 first; ``boost_value`` — the value to amplify
    (should be the honest majority input); ``iteration_rounds`` — rounds
    per protocol iteration (2 Proxcensus rounds + 1 coin round = 3).
    """

    def __init__(
        self,
        victims,
        target: int = 0,
        helper: Optional[int] = None,
        boost_value: int = 0,
        iteration_rounds: int = 3,
    ) -> None:
        self.victims = list(victims)
        self.target = target
        self.helper = helper
        self.boost_value = boost_value
        self.iteration_rounds = iteration_rounds

    def setup(self, env: AdversaryEnv) -> None:
        super().setup(env)
        if self.helper is None:
            honest = [
                p for p in range(env.num_parties)
                if p not in self.victims and p != self.target
            ]
            self.helper = honest[0] if honest else self.target

    def initial_corruptions(self) -> Set[int]:
        return set(self.victims)

    def decide(self, view: RoundView) -> RoundDecision:
        phase = (view.round_index - 1) % self.iteration_rounds + 1
        replace: Dict[int, Outbox] = {}
        for pid in self.victims:
            if phase == 1:
                # Proxcensus round 1: vote for the boost value, but only
                # towards the target and one helper — the third honest
                # party stays below the quorum.
                replace[pid] = {
                    self.target: {"prox13": (self.boost_value, 0)},
                    self.helper: {"prox13": (self.boost_value, 0)},
                }
            elif phase == 2:
                # Proxcensus round 2: complete the top-grade quorum for the
                # target only.
                replace[pid] = {
                    self.target: {"prox13": (self.boost_value, 1)},
                }
            else:
                replace[pid] = None  # coin round: withhold the share
        return RoundDecision(replace=replace)
