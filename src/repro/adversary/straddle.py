"""Worst-case "straddle" adversaries that realize Theorem 1's bound.

Theorem 1 says one generalized iteration fails with probability *at most*
``1/(s-1)``: the adversary's best play is to park the honest parties on
two adjacent slots and pray the coin lands exactly on the boundary.  The
generic :class:`~repro.adversary.strategies.TwoFaceAdversary` maintains
such a straddle for ``s = 3`` but loses it under iterated expansion, so
measured failure rates collapse to ~0 for larger ``s`` — far below the
bound.  The two adversaries here are protocol-aware and *keep* the
straddle for the whole execution, which makes the measured per-iteration
failure match ``1/(s-1)`` almost exactly (benchmarks/bench_error_probability.py):

* :class:`OneThirdStraddleAdversary` attacks the unsigned ``Prox_{2^r+1}``
  expansion (t < n/3): each round it mirrors the *leftmost* honest echo to
  a designated "down" recipient and the *rightmost* honest echo to
  everyone else, so one honest party keeps satisfying the band condition
  one slot away from the rest.

* :class:`LinearHalfStraddleAdversary` attacks the 3-round ``Prox_5`` of
  Lemma 3 (t < n/2) inside the iterated BA: by scheduling its signature
  shares per recipient it hands one honest 0-voter the full
  ``(Σ, Ω, no-other)`` package for grade 1 while feeding the remaining
  honest parties conflicting quorum signatures that cap them at grade 0 —
  the (0,1)/(⊥,0) adjacency, split by exactly one of the four coin values.

Both adversaries only use legal powers: they are rushing (they read honest
round-``r`` traffic before sending), they sign with corrupted keys only,
and the quorum signature they forge *for value 1* legitimately contains an
observed honest share plus their own.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..network.messages import PARALLEL_KEY, Outbox
from .base import Adversary, AdversaryEnv, RoundDecision, RoundView

__all__ = [
    "OneThirdStraddleAdversary",
    "LinearHalfStraddleAdversary",
    "BareLinearHalfStraddleAdversary",
]


class OneThirdStraddleAdversary(Adversary):
    """Keeps honest parties straddling one slot boundary in Prox_{2^r+1}.

    ``down_group`` (default: the single lowest non-victim id) receives the
    leftmost honest echo each round; everyone else the rightmost.  For
    n = 4, t = 1 with split honest inputs this maintains a perfect
    adjacent straddle through every expansion round, so only the boundary
    coin value reunites the parties.
    """

    def __init__(self, victims, down_group: Optional[Set[int]] = None) -> None:
        self.victims = list(victims)
        self.down_group = down_group

    def setup(self, env: AdversaryEnv) -> None:
        super().setup(env)
        if self.down_group is None:
            honest = [p for p in range(env.num_parties) if p not in self.victims]
            self.down_group = {honest[0]}

    def initial_corruptions(self) -> Set[int]:
        return set(self.victims)

    def decide(self, view: RoundView) -> RoundDecision:
        echoes = self._honest_echoes(view)
        if not echoes:
            return RoundDecision(replace={pid: None for pid in self.victims})
        down_payload = min(echoes, key=self._slot_key)
        up_payload = max(echoes, key=self._slot_key)
        replace: Dict[int, Outbox] = {}
        for pid in self.victims:
            replace[pid] = {
                recipient: {
                    "prox13": down_payload
                    if recipient in self.down_group
                    else up_payload
                }
                for recipient in range(self.env.num_parties)
            }
        return RoundDecision(replace=replace)

    def _honest_echoes(self, view: RoundView) -> List[Tuple[Any, int]]:
        echoes = []
        for sender, recipients in view.outboxes.items():
            if sender in view.corrupted:
                continue
            for payload in recipients.values():
                if isinstance(payload, dict) and "prox13" in payload:
                    pair = payload["prox13"]
                    if isinstance(pair, tuple) and len(pair) == 2:
                        echoes.append(pair)
                break  # broadcast: same payload to everyone
        return echoes

    @staticmethod
    def _slot_key(pair: Tuple[Any, int]):
        value, grade = pair
        direction = 1 if value == 1 else -1
        return (direction * grade, 1 if value == 1 else 0)


class LinearHalfStraddleAdversary(Adversary):
    """Realizes the 1/4 failure bound against the iterated Prox_5 BA.

    Designed for the t < n/2 protocol of Corollary 2 (3-round Prox_5
    iterations, coin parallel to round 3) with ``n - 2t >= 1`` honest
    voters on each value.  Per iteration, with honest parties X (a voter
    of some value ``v``), and Y/Z (the rest):

    * round 1 — victims send σ-shares on ``v`` to X only; X alone forms
      ``Σ_v``.  (Rushing: they also record every honest share.)
    * round 2 — victims send ω-shares on ``v`` to X only (X completes
      ``Ω_v``), and send ``Σ_w`` for the opposite honest value ``w`` —
      combined from an observed honest share plus their own — to everyone
      *except* X.
    * round 3 — victims send ``Σ_w`` to X (too late for X's grade-1
      "no other value by round 2" deadline, but early enough to kill
      grade 2's "no other value by round 3").

    Result: X outputs ``(v, 1)``, the others ``(⊥, 0)`` — adjacent slots,
    split by exactly one of the s - 1 = 4 coin values.
    """

    def __init__(self, victims, iteration_rounds: int = 3) -> None:
        self.victims = list(victims)
        self.iteration_rounds = iteration_rounds
        self._iteration_state: Dict[int, Dict[str, Any]] = {}

    def initial_corruptions(self) -> Set[int]:
        return set(self.victims)

    # -- session bookkeeping -------------------------------------------

    def _session(self, iteration: int) -> str:
        return f"{self.env.session}/iter{iteration}"

    def _sigma_message(self, iteration: int, value: Any):
        return ("plh", self._session(iteration), "sigma", value)

    def _omega_message(self, iteration: int, value: Any):
        return ("plh", self._session(iteration), "omega", value)

    # -- the attack ------------------------------------------------------

    def decide(self, view: RoundView) -> RoundDecision:
        iteration = (view.round_index - 1) // self.iteration_rounds
        phase = (view.round_index - 1) % self.iteration_rounds + 1
        state = self._iteration_state.setdefault(iteration, {})
        scheme = self.env.crypto.quorum
        n = self.env.num_parties
        replace: Dict[int, Outbox] = {}

        if phase == 1:
            # Rushing: read every honest round-1 share, pick the straddle
            # roles for this iteration.
            votes: Dict[int, Tuple[Any, Any]] = {}
            for sender, recipients in view.outboxes.items():
                if sender in view.corrupted:
                    continue
                for payload in recipients.values():
                    body = payload.get("plh") if isinstance(payload, dict) else None
                    if isinstance(body, dict) and "value" in body:
                        votes[sender] = (body["value"], body.get("share"))
                    break
            state["votes"] = votes
            values = {v for v, _ in votes.values()}
            if len(values) < 2:
                # Pre-agreement: validity is unbreakable; stay silent.
                for pid in self.victims:
                    replace[pid] = None
                return RoundDecision(replace=replace)
            target_value = votes[min(votes)][0]
            state["x"] = min(p for p, (v, _) in votes.items() if v == target_value)
            state["v"] = target_value
            state["w"] = next(
                v for p, (v, _) in sorted(votes.items()) if v != target_value
            )
            x = state["x"]
            for pid in self.victims:
                share = scheme.sign_share(pid, self._sigma_message(iteration, target_value))
                replace[pid] = {
                    x: {"plh": {"value": target_value, "share": share}}
                }
            return RoundDecision(replace=replace)

        if "x" not in state:
            for pid in self.victims:
                replace[pid] = None
            return RoundDecision(replace=replace)

        x, v, w = state["x"], state["v"], state["w"]
        if phase == 2:
            # Combine Σ_w from an observed honest share plus our own.
            honest_w = [
                (p, share)
                for p, (value, share) in state["votes"].items()
                if value == w
            ]
            sigma_w = scheme.try_combine(
                honest_w
                + [
                    (pid, scheme.sign_share(pid, self._sigma_message(iteration, w)))
                    for pid in self.victims
                ],
                self._sigma_message(iteration, w),
            )
            state["sigma_w"] = sigma_w
            for pid in self.victims:
                outbox: Dict[int, Any] = {}
                omega_share = scheme.sign_share(pid, self._omega_message(iteration, v))
                outbox[x] = {"plh": {"sigmas": [], "omegas": [],
                                     "omega_share": (v, omega_share)}}
                if sigma_w is not None:
                    for recipient in range(n):
                        if recipient == x or recipient in self.victims:
                            continue
                        outbox[recipient] = {
                            "plh": {"sigmas": [(w, sigma_w)], "omegas": []}
                        }
                replace[pid] = outbox
            return RoundDecision(replace=replace)

        # phase 3: hand X the conflicting Σ_w — wrapped like honest round-3
        # traffic (parallel envelope: prox ∥ coin).
        sigma_w = state.get("sigma_w")
        for pid in self.victims:
            if sigma_w is None:
                replace[pid] = None
                continue
            replace[pid] = {
                x: {
                    PARALLEL_KEY: {
                        "prox": {"plh": {"sigmas": [(w, sigma_w)], "omegas": []}}
                    }
                }
            }
        return RoundDecision(replace=replace)


class BareLinearHalfStraddleAdversary(LinearHalfStraddleAdversary):
    """The Prox_5 straddle without the per-iteration session suffix.

    A standalone ``Prox_5`` run has no enclosing BA iteration, so σ/Ω
    shares must be forged under the bare simulator session.  Registered
    as ``bare_straddle12`` in the engine registry for the Table 1
    executed-trace benchmark and the vector replay model.
    """

    def _session(self, iteration: int) -> str:
        return self.env.session
