"""The withholding attack on VRF-style coins (strongly rushing power).

Paper §1: the Chen–Micali VRF coin is only secure "against an adversary
that is not strongly rushing".  A strongly rushing adversary sees every
honest VRF evaluation *before* its own round-``r`` messages are fixed, so
it can choose — per corrupted party — whether to publish its evaluation.
Whenever a corrupted party holds the global minimum (probability ≈ t/n),
the adversary gets to pick between two coin values, steering the flip
toward its preferred outcome.

:class:`WithholdingCoinAdversary` implements exactly that calculation and
is measured in ``benchmarks/bench_coin_bias.py`` against both coins: the
VRF coin's hit rate shifts by ``t/(4n)`` (steer when a corrupted party
holds the minimum × the honest-only baseline is wrong × the flip lands
right), the threshold-signature coin does not move at all (withholding
shares cannot change a value that is a deterministic function of the key
material and the index).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ..crypto.vrf_coin import (
    vrf_coin_from_evaluations,
    vrf_evaluate,
    vrf_verify,
)
from .base import Adversary, AdversaryEnv, RoundDecision, RoundView

__all__ = ["WithholdingCoinAdversary"]


class WithholdingCoinAdversary(Adversary):
    """Steers a VRF coin toward ``preferred`` by selective publication.

    Needs to know the coin's public parameters (session tag, index and
    range) — which any protocol participant knows.  ``steered`` counts the
    flips where the rushing power changed the outcome relative to honest
    behaviour (telemetry for the paired-exactness benchmark assertions).
    """

    def __init__(
        self,
        victims,
        index: Any,
        low: int,
        high: int,
        preferred: int,
        session: Optional[str] = None,
    ) -> None:
        self.victims = list(victims)
        self.index = index
        self.low = low
        self.high = high
        self.preferred = preferred
        self.session = session
        self.steered = 0  # flips the attack actually controlled

    def setup(self, env: AdversaryEnv) -> None:
        super().setup(env)
        if self.session is None:
            self.session = env.session

    def initial_corruptions(self) -> Set[int]:
        return set(self.victims)

    def decide(self, view: RoundView) -> RoundDecision:
        scheme = self.env.crypto.plain
        honest_evaluations: Dict[int, int] = {}
        for sender, recipients in view.outboxes.items():
            if sender in view.corrupted:
                continue
            for payload in recipients.values():
                pair = payload.get("vrf") if isinstance(payload, dict) else None
                if (
                    isinstance(pair, tuple)
                    and len(pair) == 2
                    and vrf_verify(
                        scheme, sender, pair[0], pair[1], self.session, self.index
                    )
                ):
                    honest_evaluations[sender] = pair[0]
                break
        if not honest_evaluations:
            # Not the coin round (or nothing to steer): stay silent.
            return RoundDecision(replace={pid: None for pid in self.victims})

        corrupt_evaluations = {
            pid: vrf_evaluate(scheme, pid, self.session, self.index)
            for pid in self.victims
        }
        # Two reference outcomes: withholding everything (honest-only
        # minimum) and behaving honestly (all evaluations revealed).
        baseline = vrf_coin_from_evaluations(
            dict(honest_evaluations), self.session, self.index, self.low, self.high
        )
        honest_behaviour = vrf_coin_from_evaluations(
            {**honest_evaluations,
             **{pid: value for pid, (value, _p) in corrupt_evaluations.items()}},
            self.session, self.index, self.low, self.high,
        )
        # Choose the subset of corrupted evaluations to reveal: revealing
        # only matters for evaluations below the honest minimum, and among
        # those, only the global minimum decides — so it suffices to check
        # each candidate winner individually.  Withholding everything is
        # itself a move (it restores the honest-only minimum).
        reveal: List[int] = []
        chosen = baseline
        if baseline != self.preferred:
            for pid, (value, _proof) in sorted(
                corrupt_evaluations.items(), key=lambda kv: kv[1][0]
            ):
                candidate = vrf_coin_from_evaluations(
                    {**honest_evaluations, pid: value},
                    self.session, self.index, self.low, self.high,
                )
                if candidate == self.preferred:
                    reveal = [pid]
                    chosen = candidate
                    break
        if chosen == self.preferred and honest_behaviour != self.preferred:
            # The strongly-rushing power made the difference vs honest play.
            self.steered += 1
        replace: Dict[int, Any] = {}
        for pid in self.victims:
            if pid in reveal:
                value, proof = corrupt_evaluations[pid]
                replace[pid] = {
                    recipient: {"vrf": (value, proof)}
                    for recipient in range(self.env.num_parties)
                }
            else:
                replace[pid] = None
        return RoundDecision(replace=replace)
