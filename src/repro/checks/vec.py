"""VEC rules: vector-backend contract coherence, cross-module.

The numpy lockstep backend (PR 6/8) rests on contracts the runtime can
only fail *late*: a ``register_vector_model`` pair naming a protocol
that was never registered silently demotes every matching spec to the
object path; a model body that touches wall-clock or per-trial RNG
breaks the config-invariance assumption bit-identity is pinned on; a
probe-cache key that forgets to strip ``seed``/``session`` poisons the
cross-batch cache with per-trial identity.  These rules read the
phase-1 :class:`~repro.checks.index.ProjectIndex` to check all of it
statically, across modules — the registries live in
``engine/registry.py``, the models and vocabulary in
``engine/vectorized.py``, the ``vectorizable`` flag in
``engine/plan.py``.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, List, Optional, Set, Tuple

from .det import _GLOBAL_RNG_FUNCS, _NUMPY_RNG_CONSTRUCTORS
from .framework import Finding, Rule, SourceModule, register_rule
from .index import NON_LITERAL, ProjectIndex

__all__: List[str] = []

#: Exact reason strings and f-string prefixes are read from these
#: module-level constants in the ``engine`` layer (AST-extracted — the
#: checks layer never imports the code it checks).
_VOCAB_EXACT = "FALLBACK_REASONS"
_VOCAB_PREFIXES = "FALLBACK_REASON_PREFIXES"
_OPT_OUT_REASON = "spec opted out (vectorizable=False)"


class _IndexedRule(Rule):
    """Shared shape: finalize-phase rules driven by the project index."""

    def __init__(self) -> None:
        self.index: Optional[ProjectIndex] = None

    def bind(self, index: Any) -> None:
        self.index = index

    def index_finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return self.finding(module, node, message)


@register_rule
class VectorRegistrationRule(_IndexedRule):
    """Every ``register_vector_model`` pair must resolve, once, to real
    registry entries.

    A typo'd protocol or adversary name is invisible at runtime: the
    lookup in ``vector_model_for`` simply misses and every spec falls
    back to the object simulator — correct results, silently 10x slower.
    Cross-checked against the literal names passed to
    ``register_protocol``/``register_adversary`` anywhere in the tree;
    non-literal names and duplicate pairs are also findings (mirroring
    API402 for the base registries).
    """

    id = "VEC501"
    title = "register_vector_model pair does not resolve to registry entries"
    hint = "register the (protocol, adversary) names first; use string literals, each pair once"

    def finalize(self) -> Iterator[Finding]:
        index = self.index
        if index is None:
            return
        protocols = index.registered_names("register_protocol")
        adversaries = index.registered_names("register_adversary")
        seen: Set[Tuple[Any, Any]] = set()
        for call in index.registrations.get("register_vector_model", []):
            protocol, adversary = call.arg(0), call.arg(1)
            if protocol is NON_LITERAL or adversary is NON_LITERAL:
                yield self.index_finding(
                    call.module,
                    call.node,
                    "register_vector_model needs literal names "
                    "(a string protocol, a string-or-None adversary)",
                )
                continue
            if (protocol, adversary) in seen:
                yield self.index_finding(
                    call.module,
                    call.node,
                    f"duplicate vector model for ({protocol!r}, {adversary!r})",
                )
            seen.add((protocol, adversary))
            if protocol not in protocols:
                yield self.index_finding(
                    call.module,
                    call.node,
                    f"vector model registered for unknown protocol "
                    f"{protocol!r}",
                )
            if adversary is not None and adversary not in adversaries:
                yield self.index_finding(
                    call.module,
                    call.node,
                    f"vector model registered for unknown adversary "
                    f"{adversary!r}",
                )


@register_rule
class VectorModelPurityRule(_IndexedRule):
    """Vector-model bodies must not touch clocks or per-trial RNG.

    The whole point of a vector model is that one probe trial pins the
    dynamics for every trial in the batch — valid only if the model is a
    pure function of the spec and seed arrays.  A ``time.*`` call, a
    global ``random.*``/``numpy.random`` draw, an ``rng`` attribute read
    (a party's or adversary's live stream) or a fresh ``random.Random``
    inside a registered model class would make batch results depend on
    when/where the batch ran.  Model classes are resolved from the
    third ``register_vector_model`` argument via the index.
    """

    id = "VEC502"
    title = "vector model body touches wall-clock or party/adversary RNG"
    hint = "models derive everything from (spec, seed arrays); no clocks, no live RNG"

    def finalize(self) -> Iterator[Finding]:
        index = self.index
        if index is None:
            return
        checked: Set[Tuple[str, str]] = set()
        for call in index.registrations.get("register_vector_model", []):
            model_arg = (
                call.node.args[2] if len(call.node.args) > 2 else None
            )
            if not isinstance(model_arg, ast.Name):
                continue
            resolved = index.resolve_class(call.module, model_arg.id)
            if resolved is None:
                continue
            module, class_def = resolved
            key = (module.name, class_def.name)
            if key in checked:
                continue
            checked.add(key)
            yield from self._check_class(module, class_def)

    def _check_class(
        self, module: SourceModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        for node in ast.walk(class_def):
            if isinstance(node, ast.Attribute) and node.attr == "rng":
                yield self.finding(
                    module,
                    node,
                    f"vector model {class_def.name} reads a live .rng stream",
                )
            elif isinstance(node, ast.Call):
                target = module.resolve_call_target(node.func)
                if target is None:
                    continue
                parts = target.split(".")
                if target == "time" or target.startswith("time."):
                    yield self.finding(
                        module,
                        node,
                        f"vector model {class_def.name} reads the wall clock "
                        f"({target})",
                    )
                elif target == "random.Random":
                    yield self.finding(
                        module,
                        node,
                        f"vector model {class_def.name} constructs a "
                        "per-trial RNG",
                    )
                elif (
                    len(parts) == 2
                    and parts[0] == "random"
                    and parts[1] in _GLOBAL_RNG_FUNCS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"vector model {class_def.name} draws from the "
                        "global RNG",
                    )
                elif (
                    len(parts) == 3
                    and parts[:2] == ["numpy", "random"]
                    and parts[2] not in _NUMPY_RNG_CONSTRUCTORS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"vector model {class_def.name} draws from numpy's "
                        "global RNG",
                    )


def _constant_str_returns(
    func: ast.AST,
) -> Iterator[Tuple[ast.Return, Optional[str], Optional[str]]]:
    """Yield ``(return_stmt, exact_string, fstring_head)`` per return.

    ``exact_string`` is set for ``return "literal"``; ``fstring_head``
    for ``return f"prefix {x}"`` (the leading constant part, or ``""``
    when the f-string opens with an interpolation).  Plain non-string
    returns yield ``(stmt, None, None)`` and are ignored by the caller.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            yield node, value.value, None
        elif isinstance(value, ast.JoinedStr):
            head = ""
            if value.values and isinstance(value.values[0], ast.Constant):
                head = str(value.values[0].value)
            yield node, None, head
        else:
            yield node, None, None


@register_rule
class FallbackVocabularyRule(_IndexedRule):
    """Fallback reasons must come from the exported vocabulary.

    The per-reason fallback tallies (``repro bench --figures``,
    ``scripts/bench_diff.py``) and the docs treat reason strings as a
    closed vocabulary; an ``unsupported_reason`` branch that invents a
    new spelling silently escapes every tally.  The engine exports
    ``FALLBACK_REASONS`` (exact strings) and ``FALLBACK_REASON_PREFIXES``
    (for parameterized f-string reasons); every constant return in a
    ``*_reason`` function must be in the former, every f-string return
    must start with one of the latter.  ``vectorizable=False`` forcing
    sites (``TrialSpec.__post_init__`` on faulted specs) stay in sync
    because the opt-out reason itself must be in the vocabulary.
    """

    id = "VEC503"
    title = "fallback reason missing from the exported vocabulary"
    hint = "add the string to FALLBACK_REASONS (or a prefix to FALLBACK_REASON_PREFIXES) in engine/vectorized.py"

    def finalize(self) -> Iterator[Finding]:
        index = self.index
        if index is None:
            return
        reason_funcs = [
            (module, func)
            for module, func in index.iter_functions(top="engine")
            if func.name == "unsupported_reason"
            or func.name.endswith("_reason")
        ]
        if not reason_funcs:
            return
        exact = index.constant("engine", _VOCAB_EXACT)
        prefixes = index.constant("engine", _VOCAB_PREFIXES)
        if not isinstance(exact, (frozenset, set)) or not isinstance(
            prefixes, (tuple, list)
        ):
            module, func = reason_funcs[0]
            yield self.finding(
                module,
                func,
                f"no {_VOCAB_EXACT}/{_VOCAB_PREFIXES} vocabulary exported "
                "by the engine layer",
            )
            return
        for module, func in reason_funcs:
            for stmt, literal, head in _constant_str_returns(func):
                if literal is not None and literal not in exact:
                    yield self.finding(
                        module,
                        stmt,
                        f"reason {literal!r} not in {_VOCAB_EXACT}",
                    )
                elif head is not None and not any(
                    head.startswith(prefix) for prefix in prefixes
                ):
                    yield self.finding(
                        module,
                        stmt,
                        f"f-string reason starting {head!r} matches no "
                        f"{_VOCAB_PREFIXES} entry",
                    )
        # vectorizable=False forcing sites require the opt-out reason.
        if _OPT_OUT_REASON in exact:
            return
        for module in index.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                forced = any(
                    kw.arg == "vectorizable"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                )
                if not forced and (
                    module.resolve_call_target(node.func)
                    == "object.__setattr__"
                    and len(node.args) == 3
                    and isinstance(node.args[1], ast.Constant)
                    and node.args[1].value == "vectorizable"
                    and isinstance(node.args[2], ast.Constant)
                    and node.args[2].value is False
                ):
                    forced = True
                if forced:
                    yield self.finding(
                        module,
                        node,
                        "vectorizable=False forced here, but "
                        f"{_OPT_OUT_REASON!r} is missing from "
                        f"{_VOCAB_EXACT}",
                    )


@register_rule
class ProbeKeySeedStripRule(_IndexedRule):
    """Probe/batch cache keys must erase per-trial identity.

    The cross-batch probe cache is keyed by ``batch_key(spec)``; if that
    key ever carries ``seed`` or ``session``, cache hits stop happening
    (worst case) or two *different* sessions share a probe (worse).  A
    ``batch_key`` function must return ``dataclasses.replace(spec, ...)``
    neutralizing both fields explicitly.
    """

    id = "VEC504"
    title = "batch_key does not strip seed/session from the spec"
    hint = "return dataclasses.replace(spec, seed=0, session=\"\", ...) — both fields, explicitly"

    def finalize(self) -> Iterator[Finding]:
        index = self.index
        if index is None:
            return
        for module, func in index.iter_functions(top="engine"):
            if func.name != "batch_key":
                continue
            returns = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Return) and node.value is not None
            ]
            stripped = False
            for stmt in returns:
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                target = module.resolve_call_target(value.func)
                if target is None or target.rsplit(".", 1)[-1] != "replace":
                    continue
                keywords = {kw.arg for kw in value.keywords}
                if {"seed", "session"} <= keywords:
                    stripped = True
                else:
                    missing = sorted({"seed", "session"} - keywords)
                    yield self.finding(
                        module,
                        stmt,
                        f"replace(...) does not neutralize {missing}",
                    )
                    stripped = True  # reported precisely; skip the fallback
            if not stripped:
                yield self.finding(
                    module,
                    func,
                    "batch_key has no dataclasses.replace(...) return "
                    "stripping seed/session",
                )
