"""DET2xx rules: intraprocedural RNG taint tracking.

The DET1xx family bans *call sites* (wall clocks, global RNG draws).
This family follows *values*: where an RNG object comes from and where
it goes.  The engine's replay contract requires every
``random.Random``/numpy ``Generator`` in scope to be (a) constructed
from a seed-derived expression, (b) threaded explicitly through
parameters, and (c) never parked in module-level state where two trials
sharing a worker process would interleave draws from it.

The analysis is deliberately intraprocedural and conservative: each
function body is scanned in statement order with a taint set for local
names.  Two taints are tracked — *nondeterministic* values (anything
touched by a wall-clock/entropy/``id()`` call, propagated through
assignments and calls) and *RNG* values (constructor results and
``rng``-named parameters).  Whatever the analysis cannot prove it lets
pass; the DET1xx rules still catch the raw call sites.

Scope: the four protocol layers plus ``engine`` — the vector backend
made the engine part of the deterministic replay surface (see DET106).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .det import PROTOCOL_SCOPE, _GLOBAL_RNG_FUNCS, _NUMPY_RNG_CONSTRUCTORS
from .framework import Finding, Rule, SourceModule, register_rule

__all__: List[str] = []

_DATAFLOW_SCOPE = PROTOCOL_SCOPE | frozenset({"engine"})

#: Resolved call targets that construct an owned RNG stream.
_RNG_CONSTRUCTORS = frozenset({"random.Random"}) | frozenset(
    f"numpy.random.{name}" for name in _NUMPY_RNG_CONSTRUCTORS
)

#: Resolved call targets whose *result* can never be seed-derived.
_NONDET_EXACT = frozenset(
    {"os.urandom", "os.getrandom", "random.SystemRandom", "id"}
)
_NONDET_PREFIXES = ("time.", "uuid.", "secrets.", "datetime.datetime.now",
                    "datetime.datetime.utcnow", "datetime.date.today")


def _is_rng_param(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _rng_constructor_target(
    module: SourceModule, node: ast.AST
) -> Optional[str]:
    """The resolved constructor name if ``node`` builds an RNG, else None."""
    if not isinstance(node, ast.Call):
        return None
    target = module.resolve_call_target(node.func)
    if target in _RNG_CONSTRUCTORS:
        return target
    return None


def _is_nondet_call(module: SourceModule, node: ast.Call) -> bool:
    target = module.resolve_call_target(node.func)
    if target is None:
        return False
    return target in _NONDET_EXACT or any(
        target.startswith(prefix) for prefix in _NONDET_PREFIXES
    )


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression/statement without entering nested scopes.

    Each function body is analyzed as its own scope, so descending into
    a nested ``def``/``lambda`` here would double-report its findings
    (and leak the outer scope's taint into it).
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _expr_nondet(
    module: SourceModule, node: ast.AST, tainted: Set[str]
) -> bool:
    """True if any part of the expression is nondeterministic."""
    for inner in _walk_shallow(node):
        if isinstance(inner, ast.Call) and _is_nondet_call(module, inner):
            return True
        if isinstance(inner, ast.Name) and inner.id in tainted:
            return True
    return False


def _expr_rng(module: SourceModule, node: ast.AST, rng_names: Set[str]) -> bool:
    """True if the expression yields (or contains) an RNG value."""
    for inner in _walk_shallow(node):
        if _rng_constructor_target(module, inner) is not None:
            return True
        if isinstance(inner, ast.Name) and inner.id in rng_names:
            return True
    return False


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Shallow-walk a statement's *own* expressions only.

    ``_iter_statements`` already yields nested statements individually;
    descending into a compound statement's body here would visit the
    same expression twice (once via the ``If``, once via the assignment
    inside it).
    """
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, (ast.stmt, ast.excepthandler)):
            continue
        yield from _walk_shallow(child)


def _iter_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of one function in source order, descending into
    control flow but *not* into nested function/class scopes."""
    for stmt in body:
        yield stmt
        for child_body in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if isinstance(child_body, list) and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from _iter_statements(child_body)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _iter_statements(handler.body)


def _assign_targets(stmt: ast.stmt) -> Tuple[List[str], Optional[ast.AST]]:
    """Simple-name targets and the value expression of an assignment."""
    if isinstance(stmt, ast.Assign):
        names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        return names, stmt.value
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name) and stmt.value is not None:
            return [stmt.target.id], stmt.value
    return [], None


def _function_defs(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register_rule
class RngNonSeedConstructionRule(Rule):
    """An RNG built from something that is not a seed cannot be replayed.

    ``random.Random()`` (and argless ``default_rng()``/``SeedSequence()``)
    pulls ambient entropy; ``random.Random(time.time())`` launders a
    wall-clock read through a local.  Either way the stream differs
    between runs, so nothing downstream of it is reproducible.  The
    taint pass follows nondeterministic values through locals and calls:
    ``x = time.time(); rng = random.Random(int(x))`` is flagged at the
    construction site.  Constructions from constants, parameters, spec
    fields and other RNG draws all pass — only *provably* nondetermistic
    seeds (and no seed at all) are findings.
    """

    id = "DET201"
    title = "RNG constructed from a non-seed expression"
    hint = "seed it: random.Random(derived_seed) / default_rng(seed) — never argless or clock-fed"
    scope = _DATAFLOW_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        scopes: List[Tuple[Sequence[ast.stmt], Set[str]]] = [
            (module.tree.body, set())
        ]
        for func in _function_defs(module.tree):
            scopes.append((func.body, set()))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                scopes.append((node.body, set()))
        for body, tainted in scopes:
            for stmt in _iter_statements(body):
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue  # nested scopes are analyzed on their own
                names, value = _assign_targets(stmt)
                if value is not None and names:
                    if _expr_nondet(module, value, tainted) and not any(
                        _rng_constructor_target(module, inner)
                        for inner in _walk_shallow(value)
                        if isinstance(inner, ast.Call)
                    ):
                        tainted.update(names)
                for node in _stmt_exprs(stmt):
                    target = _rng_constructor_target(module, node)
                    if target is None:
                        continue
                    assert isinstance(node, ast.Call)
                    seed_args = list(node.args) + [
                        kw.value for kw in node.keywords
                    ]
                    if not seed_args:
                        yield self.finding(
                            module,
                            node,
                            f"{target}() constructed without a seed "
                            "(ambient entropy)",
                        )
                    elif any(
                        _expr_nondet(module, arg, tainted)
                        for arg in seed_args
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{target}(...) seeded from a nondeterministic "
                            "expression",
                        )


@register_rule
class RngSilentFallbackRule(Rule):
    """An ``rng`` parameter that quietly falls back to fresh entropy.

    ``def f(..., rng=None): rng = rng or random.Random()`` advertises a
    deterministic interface and then ignores it whenever the caller
    forgets to pass the stream — the worst failure mode, because every
    test that *does* pass an rng stays green.  Flagged: rebinding an
    ``rng``-named parameter to an argless constructor or to a
    module-level ``random.*``/``numpy.random`` draw.  A *seeded*
    fallback (``rng or random.Random(0xC0FFEE ^ n)``) passes — it is
    deterministic, just defaulted.
    """

    id = "DET202"
    title = "rng parameter silently falls back to a global/unseeded RNG"
    hint = "raise on rng=None, or fall back to a seed-derived constructor"
    scope = _DATAFLOW_SCOPE

    def _unseeded_fallback(self, module: SourceModule, value: ast.AST) -> bool:
        for inner in _walk_shallow(value):
            if not isinstance(inner, ast.Call):
                continue
            target = module.resolve_call_target(inner.func)
            if target in _RNG_CONSTRUCTORS and not (
                inner.args or inner.keywords
            ):
                return True
            if target is not None:
                parts = target.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "random"
                    and parts[1] in _GLOBAL_RNG_FUNCS
                ):
                    return True
                if (
                    len(parts) == 3
                    and parts[:2] == ["numpy", "random"]
                    and parts[2] not in _NUMPY_RNG_CONSTRUCTORS
                ):
                    return True
        return False

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in _function_defs(module.tree):
            rng_params = {
                name for name in _param_names(func) if _is_rng_param(name)
            }
            if not rng_params:
                continue
            for stmt in _iter_statements(func.body):
                names, value = _assign_targets(stmt)
                if value is None:
                    continue
                rebound = [name for name in names if name in rng_params]
                if rebound and self._unseeded_fallback(module, value):
                    yield self.finding(
                        module,
                        stmt,
                        f"parameter {rebound[0]!r} rebound to an unseeded "
                        "fallback RNG",
                    )


@register_rule
class RngModuleStateRule(Rule):
    """An RNG parked in module-level state is shared across trials.

    Worker processes are reused: a module-level ``random.Random`` (even a
    seeded one) interleaves draws from every trial the process executes,
    so results depend on scheduling — the exact failure DET103 bans for
    the stdlib global RNG, recreated one level up.  Flagged: module-level
    assignments whose value constructs an RNG, ``global``-declared names
    rebound to RNG values inside functions, and RNG values stored into
    module-level containers (``_CACHE[key] = rng``).
    """

    id = "DET203"
    title = "RNG value smuggled into module-level state"
    hint = "keep RNG streams trial-local; pass them down, never park them in a module"
    scope = _DATAFLOW_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        module_names: Set[str] = set()
        for stmt in module.tree.body:
            names, value = _assign_targets(stmt)
            module_names.update(names)
            if value is not None and names and _expr_rng(module, value, set()):
                yield self.finding(
                    module,
                    stmt,
                    f"module-level {names[0]!r} holds an RNG "
                    "(shared across trials in a worker)",
                )

        for func in _function_defs(module.tree):
            rng_names = {
                name for name in _param_names(func) if _is_rng_param(name)
            }
            globals_declared: Set[str] = set()
            for stmt in _iter_statements(func.body):
                if isinstance(stmt, ast.Global):
                    globals_declared.update(stmt.names)
                    continue
                names, value = _assign_targets(stmt)
                if value is None:
                    continue
                is_rng_value = _expr_rng(module, value, rng_names)
                if is_rng_value:
                    rng_names.update(names)
                    leaked = [n for n in names if n in globals_declared]
                    if leaked:
                        yield self.finding(
                            module,
                            stmt,
                            f"global {leaked[0]!r} rebound to an RNG value",
                        )
                # Stores into module-level containers: X[k] = rng, X.attr = rng
                if isinstance(stmt, ast.Assign) and is_rng_value:
                    for target in stmt.targets:
                        base = target
                        while isinstance(base, (ast.Subscript, ast.Attribute)):
                            base = base.value
                        if (
                            isinstance(base, ast.Name)
                            and base.id in module_names
                            and base is not target
                        ):
                            yield self.finding(
                                module,
                                stmt,
                                f"RNG value stored into module-level "
                                f"{base.id!r}",
                            )
