"""OBS rules: trace/telemetry string literals pinned to schema constants.

The ``repro-trace/1`` and ``repro-telemetry/1`` JSONL schemas are
stringly-typed at every boundary: sinks write ``{"t": "msg", ...}``,
``load_trace`` switches on ``kind == "msg"``, ``summarize_telemetry``
switches on span names, and the engine emits spans by name.  A typo on
either side — writer or reader — doesn't crash; records just silently
fall through the switch and vanish from summaries.  These rules pin
every such literal to the exported vocabularies
(``repro.obs.TRACE_RECORD_TYPES`` / ``TELEMETRY_EVENT_TYPES`` /
``METRIC_NAMES``), read
from the AST via the phase-1 index (the checks layer imports nothing it
checks).

If the vocabulary constants are absent from the scanned tree the rules
stay inert — there is nothing to pin against.  The self-check suite
seeds a deleted-constant tree to make sure that failure mode is at
least visible in tests.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, List, Optional

from .framework import Finding, Rule, SourceModule, register_rule
from .index import ProjectIndex

__all__: List[str] = []

_OBS_SCOPE = frozenset({"obs", "engine", "cli", "analysis"})

_TRACE_VOCAB = "TRACE_RECORD_TYPES"
_TELEMETRY_VOCAB = "TELEMETRY_EVENT_TYPES"
_METRICS_VOCAB = "METRIC_NAMES"


def _vocab(index: Optional[ProjectIndex], name: str) -> Optional[frozenset]:
    if index is None:
        return None
    value = index.constant("obs", name)
    if isinstance(value, (frozenset, set)) and all(
        isinstance(item, str) for item in value
    ):
        return frozenset(value)
    return None


class _VocabRule(Rule):
    scope = _OBS_SCOPE

    def __init__(self) -> None:
        self.index: Optional[ProjectIndex] = None

    def bind(self, index: Any) -> None:
        self.index = index


def _is_record_type_subscript(node: ast.AST) -> bool:
    """``<expr>["t"]`` — the schema's record-type field access."""
    if not isinstance(node, ast.Subscript):
        return False
    key = node.slice
    if isinstance(key, ast.Index):  # pragma: no cover (py<3.9 AST)
        key = key.value
    return isinstance(key, ast.Constant) and key.value == "t"


@register_rule
class TraceRecordTypeRule(_VocabRule):
    """Record-type literals must be drawn from the schema vocabularies.

    Covers both sides of the stream: dict literals with a ``"t"`` key
    (writers) and comparisons against ``record["t"]`` or a ``kind``
    local (readers).  The allowed set is the union of the trace and
    telemetry vocabularies — both schemas share the one-character
    ``"t"`` discriminator.
    """

    id = "OBS601"
    title = "record-type literal outside the obs schema vocabulary"
    hint = "use a value from repro.obs TRACE_RECORD_TYPES/TELEMETRY_EVENT_TYPES (extend the constant first)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        trace = _vocab(self.index, _TRACE_VOCAB)
        telemetry = _vocab(self.index, _TELEMETRY_VOCAB)
        if trace is None and telemetry is None:
            return
        allowed = (trace or frozenset()) | (telemetry or frozenset())
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == "t"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value not in allowed
                    ):
                        yield self.finding(
                            module,
                            value,
                            f"record type {value.value!r} is not in the "
                            "obs schema vocabulary",
                        )
            elif isinstance(node, ast.Compare):
                sides = [node.left] + list(node.comparators)
                if not any(
                    _is_record_type_subscript(side)
                    or (isinstance(side, ast.Name) and side.id == "kind")
                    for side in sides
                ):
                    continue
                for side in sides:
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, str)
                        and side.value not in allowed
                    ):
                        yield self.finding(
                            module,
                            side,
                            f"record type {side.value!r} compared against "
                            "the stream is not in the obs schema vocabulary",
                        )


@register_rule
class TelemetrySpanNameRule(_VocabRule):
    """``.emit("<span>")`` names must come from TELEMETRY_EVENT_TYPES.

    ``summarize_telemetry`` switches on span names; a writer emitting a
    name the summarizer doesn't know produces records that pass schema
    validation and then disappear from every digest.  Any ``.emit()``
    call whose first argument is a string literal is checked against the
    telemetry vocabulary.
    """

    id = "OBS602"
    title = "telemetry span name outside TELEMETRY_EVENT_TYPES"
    hint = "add the span to TELEMETRY_EVENT_TYPES in repro/obs/telemetry.py (and teach summarize_telemetry about it)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        telemetry = _vocab(self.index, _TELEMETRY_VOCAB)
        if telemetry is None:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value not in telemetry
            ):
                yield self.finding(
                    module,
                    node,
                    f"span name {node.args[0].value!r} is not in "
                    f"{_TELEMETRY_VOCAB}",
                )


@register_rule
class MetricNameRule(_VocabRule):
    """``.inc("<name>")`` / ``.observe("<name>")`` must come from METRIC_NAMES.

    The ``repro-metrics/1`` registry validates names at runtime, but
    only on the paths a test actually drives; a misspelled metric on a
    rare branch (a fault kind, an adaptive round) would first surface
    as a crash in production collection.  Same shape as OBS602: any
    call to ``.inc()``/``.observe()`` whose first argument is a string
    literal is pinned to the exported vocabulary.  Non-literal first
    arguments (e.g. the adaptive runner's ``estimate.observe(event)``)
    are out of scope.
    """

    id = "OBS603"
    title = "metric name outside METRIC_NAMES"
    hint = "add the metric to METRIC_NAMES in repro/obs/metrics.py (histograms also need an entry in HISTOGRAM_BUCKETS)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        names = _vocab(self.index, _METRICS_VOCAB)
        if names is None:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "observe")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value not in names
            ):
                yield self.finding(
                    module,
                    node,
                    f"metric name {node.args[0].value!r} is not in "
                    f"{_METRICS_VOCAB}",
                )
