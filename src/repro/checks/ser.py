"""SER rules: everything that crosses a process boundary must pickle.

The engine ships :class:`~repro.engine.plan.TrialSpec`\\ s to worker
processes and deep-freezes their ``params`` into hashable tuples.  Both
steps fail — at runtime, possibly only under ``spawn``, possibly only
on the machine with more cores — when a producer smuggles in a lambda,
a generator, or a locally-defined closure.  These rules catch the two
syntactic shapes of that mistake at check time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .framework import Finding, Rule, SourceModule, register_rule

# Keyword arguments that feed TrialSpec's frozen/picklable params path
# (TrialSpec(...), TrialPlan.monte_carlo(...), dataclasses.replace(...)).
_PARAM_KEYWORDS = frozenset({"params", "adversary_params"})

# Expression nodes that can never deep-freeze or pickle.
_UNPICKLABLE = (ast.Lambda, ast.GeneratorExp, ast.Yield, ast.YieldFrom, ast.Await)


@register_rule
class ParamPicklabilityRule(Rule):
    """Transport-unsafe values in a spec's ``params``/``adversary_params``.

    A lambda or generator in a params mapping survives until the spec is
    hashed or shipped to a worker, then dies far from the producer.  The
    rule inspects every call that passes a ``params=`` /
    ``adversary_params=`` keyword — the TrialSpec constructor, the
    ``monte_carlo`` plan builder, ``dataclasses.replace`` on specs, and
    any helper following the same convention.
    """

    id = "SER301"
    title = "unpicklable value in TrialSpec params"
    hint = "params must be plain data (ints, strings, tuples); name behaviors and register them"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg not in _PARAM_KEYWORDS:
                    continue
                for inner in ast.walk(keyword.value):
                    if isinstance(inner, _UNPICKLABLE):
                        yield self.finding(
                            module,
                            inner,
                            f"{type(inner).__name__.lower()} inside "
                            f"{keyword.arg}= cannot be frozen or pickled",
                        )


@register_rule
class PoolBoundaryRule(Rule):
    """Lambdas handed to a process pool never survive pickling.

    ``executor.submit(lambda: …)`` raises ``PicklingError`` only when the
    pool path actually runs — which on a 1-CPU CI box it does not, so the
    bug ships.  Any lambda passed directly to ``submit``/``map`` on a
    receiver whose name suggests a pool/executor is flagged; module-level
    functions (what the runner actually ships) pass.
    """

    id = "SER302"
    title = "lambda crosses a process-pool boundary"
    hint = "ship a module-level function; close over nothing (pass data as arguments)"

    @staticmethod
    def _receiver_name(func: ast.Attribute) -> Optional[str]:
        node = func.value
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
            ):
                continue
            receiver = self._receiver_name(node.func)
            if receiver is None or not (
                "pool" in receiver.lower() or "executor" in receiver.lower()
            ):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if isinstance(value, ast.Lambda):
                    yield self.finding(
                        module,
                        value,
                        f"lambda passed to {receiver}.{node.func.attr}() "
                        "cannot be pickled to a worker process",
                    )
