"""Static analysis enforcing the repo's determinism/layering/serialization
invariants (``python -m repro check``).

Dependency-free, stdlib-``ast`` only.  Four rule families:

* **DET** — nondeterminism sources banned from protocol code
  (``core``/``proxcensus``/``crypto``/``network``): wall clocks, ambient
  entropy, the process-global RNG, unordered set iteration, id() ordering.
* **LAY** — the import layer map and module-level cycle detection.
* **SER** — pickle/deep-freeze safety of everything crossing a process
  boundary (TrialSpec params, pool submissions).
* **API** — registry and adversary-hook contract coherence.

See ``docs/static-analysis.md`` for the rule catalogue and suppression
syntax (``# repro: noqa[RULE]``).
"""

from .framework import (
    CheckError,
    Finding,
    Report,
    Rule,
    SourceModule,
    all_rule_classes,
    register_rule,
    run_check,
)

__all__ = [
    "CheckError",
    "Finding",
    "Report",
    "Rule",
    "SourceModule",
    "all_rule_classes",
    "register_rule",
    "run_check",
]
