"""Static analysis enforcing the repo's determinism/layering/serialization
invariants (``python -m repro check``).

Dependency-free, stdlib-``ast`` only, and now *whole-program*: phase 1
parses every module and builds a :class:`ProjectIndex` (definitions,
classes, constant assignments, registry-registration calls); phase 2
binds the index to every rule and dispatches per module, so rules can
resolve names across module boundaries without importing anything they
check.  Rule families:

* **DET1xx** — nondeterminism sources banned from protocol code
  (``core``/``proxcensus``/``crypto``/``network``): wall clocks, ambient
  entropy, the process-global RNG, unordered set iteration, id() ordering.
* **DET2xx** — RNG provenance dataflow: generators must be constructed
  from seed-derived expressions, ``rng`` parameters must not silently
  fall back to ambient state, RNG values must not be parked in
  module-level state.
* **LAY** — the import layer map and module-level cycle detection.
* **SER** — pickle/deep-freeze safety of everything crossing a process
  boundary (TrialSpec params, pool submissions).
* **API** — registry and adversary-hook contract coherence.
* **VEC** — vector-model contracts: registrations resolve to real
  registry entries, model bodies stay pure, fallback reasons stay in
  the engine vocabulary, ``batch_key`` strips per-trial identity.
* **OBS** — trace/telemetry string literals pinned to the schema
  vocabularies exported by ``repro.obs``.
* **SUP** — meta: stale ``# repro: noqa[...]`` suppressions.

``repro check --fix`` (:func:`fix_tree`) applies a whitelisted subset of
mechanical rewrites; ``--baseline`` demotes known findings for
incremental adoption; ``--sarif`` emits SARIF 2.1.0 for CI annotation.

See ``docs/static-analysis.md`` for the rule catalogue and suppression
syntax (``# repro: noqa[RULE]``).
"""

from .fix import FixResult, fix_tree
from .framework import (
    CheckError,
    Finding,
    Report,
    Rule,
    SourceModule,
    all_rule_classes,
    load_baseline,
    register_rule,
    run_check,
)
from .index import ProjectIndex

__all__ = [
    "CheckError",
    "Finding",
    "FixResult",
    "ProjectIndex",
    "Report",
    "Rule",
    "SourceModule",
    "all_rule_classes",
    "fix_tree",
    "load_baseline",
    "register_rule",
    "run_check",
]
