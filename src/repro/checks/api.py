"""API rules: registries and hook interfaces stay coherent.

The engine resolves *names* to behavior at runtime — protocol and
adversary builders through ``repro.engine.registry``, Proxcensus
families through ``repro.proxcensus.registry``, adversary strategies
through the :class:`~repro.adversary.base.Adversary` hook methods the
simulator calls.  None of these bindings are checked by the type system:
a typo'd hook override is silently never called, a duplicate
registration silently wins last, a mismatched family key lies to every
lookup.  These rules pin the contracts statically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .framework import Finding, Rule, SourceModule, register_rule

# Adversary hook → (min positional args, max positional args), counting
# `self`.  Extra trailing parameters with defaults are compatible.
_ADVERSARY_HOOKS: Dict[str, int] = {
    "setup": 2,            # (self, env)
    "initial_corruptions": 1,  # (self)
    "decide": 2,           # (self, view)
    "observe": 3,          # (self, round_index, inboxes)
}

_REGISTER_FUNCS = ("register_protocol", "register_adversary", "register_fault_plan")


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register_rule
class AdversaryHookSignatureRule(Rule):
    """Adversary hook overrides must match the simulator's call shape.

    The simulator calls ``setup(env)``, ``initial_corruptions()``,
    ``decide(view)`` and ``observe(round_index, inboxes)`` on every
    adversary.  An override with a different positional arity raises
    ``TypeError`` mid-simulation — or worse, an override the author
    *meant* to write with extra required params silently shadows the
    base behavior.  Classes whose base name ends in ``Adversary`` are
    checked; extra parameters with defaults are allowed.
    """

    id = "API401"
    title = "Adversary hook override with incompatible signature"
    hint = "match the base signature; extra parameters need defaults"

    @staticmethod
    def _is_adversary_class(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else ""
            )
            if name.endswith("Adversary"):
                return True
        return False

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and self._is_adversary_class(node)):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                expected = _ADVERSARY_HOOKS.get(item.name)
                if expected is None:
                    continue
                args = item.args
                if args.vararg is not None:
                    continue  # *args accepts anything
                total = len(args.posonlyargs) + len(args.args)
                required = total - len(args.defaults)
                if not (required <= expected <= total):
                    yield self.finding(
                        module,
                        item,
                        f"{node.name}.{item.name} takes {required} required "
                        f"positional arg(s); the simulator calls it with "
                        f"{expected}",
                    )


@register_rule
class RegistryRegistrationRule(Rule):
    """Registrations need literal names, exactly once each.

    A computed name cannot be audited statically (and cannot be listed
    in docs); a duplicate registration silently replaces the earlier
    builder, which is how two benchmarks end up measuring different
    code under one label.  Duplicates are detected across the whole
    scanned tree.
    """

    id = "API402"
    title = "registry registration with non-literal or duplicate name"
    hint = "register string-literal names, each exactly once"

    def __init__(self) -> None:
        self._seen: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self._duplicates: List[Finding] = []

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = _call_name(node.func)
            if func_name not in _REGISTER_FUNCS or not node.args:
                continue
            name_node = node.args[0]
            if not (
                isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
            ):
                yield self.finding(
                    module,
                    name_node,
                    f"{func_name}() name must be a string literal",
                )
                continue
            key = (func_name, name_node.value)
            previous = self._seen.get(key)
            if previous is None:
                self._seen[key] = (module.rel, node.lineno)
            else:
                self._duplicates.append(
                    self.finding(
                        module,
                        node,
                        f"duplicate {func_name}({name_node.value!r}); "
                        f"first registered at {previous[0]}:{previous[1]}",
                    )
                )

    def finalize(self) -> Iterator[Finding]:
        return iter(self._duplicates)


@register_rule
class AdversaryBuilderFactoryRule(Rule):
    """``register_adversary`` builders receive the protocol factory first.

    The registry contract is ``builder(factory, **params)`` — generic
    adversaries like ``two_face`` simulate honest behavior and need the
    factory.  A literal builder whose first parameter is not ``factory``
    will be called with the factory bound to the wrong name (or explode
    on keyword params), so the mistake is flagged where it is written.
    """

    id = "API403"
    title = "adversary builder does not take `factory` first"
    hint = "write builder(factory, **params), even if factory is unused"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "register_adversary"
                and len(node.args) >= 2
            ):
                continue
            builder = node.args[1]
            if not isinstance(builder, ast.Lambda):
                continue
            params = builder.args.posonlyargs + builder.args.args
            if not params or params[0].arg != "factory":
                yield self.finding(
                    module,
                    builder,
                    "adversary builder's first parameter must be `factory`",
                )


@register_rule
class FamilyKeyCoherenceRule(Rule):
    """``FAMILIES`` mapping keys must equal each entry's ``name`` field.

    The Proxcensus catalogue is looked up by key but reports itself by
    ``name``; when they diverge, tables label one construction with
    another's data.  Checked for any dict literal assigned to a name
    ending in ``FAMILIES`` whose values construct ``ProxFamily``-style
    entries with a ``name=`` keyword.
    """

    id = "API404"
    title = "registry key differs from the entry's declared name"
    hint = "make the dict key and the name= field identical"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                target.id for target in node.targets if isinstance(target, ast.Name)
            ]
            if not any(name.endswith("FAMILIES") for name in targets):
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Call)
                ):
                    continue
                for keyword in value.keywords:
                    if (
                        keyword.arg == "name"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value != key.value
                    ):
                        yield self.finding(
                            module,
                            value,
                            f"key {key.value!r} maps an entry named "
                            f"{keyword.value.value!r}",
                        )
