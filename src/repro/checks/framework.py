"""Static-analysis framework: one AST walk, pluggable invariant rules.

The engine's headline guarantee is that serial, parallel and adaptive
runs are *byte-identical* for any worker count.  That property is easy
to destroy silently — iterate a ``set`` into a message payload, call
``time.time()`` in protocol code, pass a lambda where a spec must
pickle — and nothing at runtime complains until the numbers drift.
This package is the static safety net: a dependency-free ``ast`` pass
(``python -m repro check``) that walks the source tree once and
dispatches every parsed module to a set of rules enforcing the
determinism, layering and serialization invariants the engine's
guarantees rest on.

Architecture
------------
* :class:`SourceModule` — one parsed file: path, dotted module name,
  AST, source lines, and a lazily-built import-origin map shared by all
  rules (so the file is read and parsed exactly once).
* :class:`Rule` — one invariant.  ``check(module)`` yields
  :class:`Finding`\\ s for a single module; ``finalize()`` yields
  whole-tree findings (import cycles, duplicate registrations) after
  every module has been visited.  Rules are registered with
  :func:`register_rule` and instantiated fresh per run, so cross-module
  state never leaks between invocations.
* :func:`run_check` — discovery, parsing, dispatch, per-line
  ``# repro: noqa[RULE]`` suppression, and the :class:`Report`.

Every rule carries an ``id`` (``DET101`` …), a one-line ``title`` and a
``hint`` (how to fix); ``--json`` emits all three so CI artifacts are
self-describing.  See ``docs/static-analysis.md`` for the catalogue.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "CheckError",
    "Finding",
    "Report",
    "Rule",
    "SourceModule",
    "all_rule_classes",
    "register_rule",
    "run_check",
]


class CheckError(Exception):
    """Unusable invocation (bad root, unknown rule selector)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the scanned root
    line: int
    col: int
    message: str
    hint: str = ""

    def render(self, root: str = "") -> str:
        where = f"{root}/{self.path}" if root else self.path
        text = f"{where}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text


class SourceModule:
    """One parsed source file plus everything rules need to inspect it."""

    def __init__(self, path: Path, rel: Path, tree: ast.Module, lines: List[str]):
        self.path = path
        self.rel = rel.as_posix()
        self.tree = tree
        self.lines = lines
        parts = list(rel.with_suffix("").parts)
        self.is_package = bool(parts) and parts[-1] == "__init__"
        if self.is_package:
            parts = parts[:-1]
        self.name = ".".join(parts)
        self.parts: Tuple[str, ...] = tuple(parts)
        # Layer = first dotted component ("core", "crypto", …); top-level
        # modules (cli, __main__) are their own single-component layer.
        self.top = parts[0] if parts else ""
        self._origins: Optional[Dict[str, str]] = None

    @property
    def origins(self) -> Dict[str, str]:
        """Local name → dotted origin for every import binding.

        ``import time as t`` maps ``t -> time``; ``from os import urandom``
        maps ``urandom -> os.urandom``.  Relative (package-internal)
        imports are mapped to their resolved internal dotted name, which
        never collides with the stdlib names the DET rules match on.
        """
        if self._origins is None:
            origins: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        origins[bound] = alias.name if alias.asname else bound
                elif isinstance(node, ast.ImportFrom):
                    base = self.resolve_from(node)
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        origins[bound] = f"{base}.{alias.name}" if base else alias.name
            self._origins = origins
        return self._origins

    def resolve_from(self, node: ast.ImportFrom) -> str:
        """Dotted target of a ``from … import`` statement.

        Relative imports resolve against this module's package path (the
        returned name is root-relative, e.g. ``network.messages``);
        absolute imports return ``node.module`` unchanged.
        """
        if not node.level:
            return node.module or ""
        base = list(self.parts if self.is_package else self.parts[:-1])
        for _ in range(node.level - 1):
            if base:
                base.pop()
        if node.module:
            base.extend(node.module.split("."))
        return ".".join(base)

    def resolve_call_target(self, func: ast.AST) -> Optional[str]:
        """Dotted origin of a call target, or ``None`` if not name-rooted.

        ``t.perf_counter()`` with ``import time as t`` resolves to
        ``time.perf_counter``; ``self.rng.random()`` resolves to
        ``self.rng.random`` (an instance call, which DET rules ignore).
        """
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(self.origins.get(node.id, node.id))
        return ".".join(reversed(chain))


class Rule:
    """Base class: one enforced invariant.

    Subclasses set ``id`` / ``title`` / ``hint`` and override
    :meth:`check` (per module) and optionally :meth:`finalize` (after the
    whole tree).  ``scope`` restricts a rule to the named top-level
    subpackages; ``None`` means the whole tree.
    """

    id: str = ""
    title: str = ""
    hint: str = ""
    scope: Optional[frozenset] = None

    def applies(self, module: SourceModule) -> bool:
        return self.scope is None or module.top in self.scope

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        return iter(())

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint,
        )


_RULE_CLASSES: List[Type[Rule]] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the default rule set."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if any(existing.id == cls.id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULE_CLASSES.append(cls)
    return cls


def all_rule_classes() -> List[Type[Rule]]:
    """Every registered rule class, in id order."""
    _load_builtin_rules()
    return sorted(_RULE_CLASSES, key=lambda cls: cls.id)


def _load_builtin_rules() -> None:
    # Imported for their @register_rule side effects; local to avoid a
    # circular import at package-load time.
    from . import api, det, lay, ser  # noqa: F401


def _matches(rule_id: str, selectors: Sequence[str]) -> bool:
    return any(rule_id == s or rule_id.startswith(s) for s in selectors)


def build_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Fresh rule instances honoring ``--select`` / ``--ignore``.

    Selectors are full ids (``DET104``) or family prefixes (``DET``).
    Unknown selectors raise :class:`CheckError` — a typo'd ``--select``
    must not silently check nothing.
    """
    classes = all_rule_classes()
    known = {cls.id for cls in classes}
    families = {cls.id.rstrip("0123456789") for cls in classes}
    for selector in list(select or []) + list(ignore or []):
        if selector not in known and selector not in families:
            raise CheckError(
                f"unknown rule selector {selector!r}; "
                f"known: {sorted(families)} + {sorted(known)}"
            )
    chosen = [
        cls
        for cls in classes
        if (not select or _matches(cls.id, select))
        and not (ignore and _matches(cls.id, ignore))
    ]
    return [cls() for cls in chosen]


_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?", re.IGNORECASE)


def _suppressed(lines: Optional[List[str]], finding: Finding) -> bool:
    """True if the finding's physical line carries a matching noqa."""
    if lines is None or not (1 <= finding.line <= len(lines)):
        return False
    match = _NOQA.search(lines[finding.line - 1])
    if match is None:
        return False
    if match.group(1) is None:
        return True  # bare "# repro: noqa" silences every rule on the line
    wanted = [part.strip() for part in match.group(1).split(",") if part.strip()]
    return _matches(finding.rule, wanted)


@dataclass
class Report:
    """Outcome of one check run, renderable as text or JSON."""

    root: str
    files: int
    findings: List[Finding]
    suppressed: int
    rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> str:
        payload = {
            "root": self.root,
            "files_scanned": self.files,
            "rules": self.rules,
            "ok": self.ok,
            "suppressed": self.suppressed,
            "counts_by_rule": self.counts_by_rule(),
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "hint": f.hint,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def render(self) -> str:
        out = [finding.render(self.root) for finding in self.findings]
        noise = f", {self.suppressed} suppressed" if self.suppressed else ""
        verdict = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        out.append(f"repro check: {verdict} in {self.files} file(s){noise}")
        return "\n".join(out)


def _iter_source_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def run_check(
    root,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Report:
    """Walk every ``*.py`` under ``root`` once and apply all rules.

    ``root`` must be the *package root* (the directory holding ``core/``,
    ``crypto/`` …): layer scoping and relative-import resolution are
    computed from paths relative to it.  Findings come back sorted by
    (path, line, col, rule); per-line ``# repro: noqa[RULE]`` comments
    suppress matching findings and are tallied in ``Report.suppressed``.
    """
    given = str(root)
    root = Path(root)
    if not root.is_dir():
        raise CheckError(f"not a directory: {given}")
    rules = build_rules(select, ignore)
    findings: List[Finding] = []
    lines_by_path: Dict[str, List[str]] = {}
    files = 0
    for path in _iter_source_files(root):
        files += 1
        rel = path.relative_to(root)
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        lines_by_path[rel.as_posix()] = lines
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="CHK001",
                    path=rel.as_posix(),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    message=f"syntax error: {error.msg}",
                    hint="fix the file so it parses; nothing else was checked",
                )
            )
            continue
        module = SourceModule(path, rel, tree, lines)
        for rule in rules:
            if rule.applies(module):
                findings.extend(rule.check(module))
    for rule in rules:
        findings.extend(rule.finalize())

    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if _suppressed(lines_by_path.get(finding.path), finding):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(
        root=given,
        files=files,
        findings=kept,
        suppressed=suppressed,
        rules=[rule.id for rule in rules],
    )
