"""Static-analysis framework: one AST walk, pluggable invariant rules.

The engine's headline guarantee is that serial, parallel and adaptive
runs are *byte-identical* for any worker count.  That property is easy
to destroy silently — iterate a ``set`` into a message payload, call
``time.time()`` in protocol code, pass a lambda where a spec must
pickle — and nothing at runtime complains until the numbers drift.
This package is the static safety net: a dependency-free ``ast`` pass
(``python -m repro check``) that walks the source tree once and
dispatches every parsed module to a set of rules enforcing the
determinism, layering and serialization invariants the engine's
guarantees rest on.

Architecture (two-phase)
------------------------
* **Phase 1 — parse and index.**  Every ``*.py`` under the root is read
  and parsed exactly once into a :class:`SourceModule` (path, dotted
  module name, AST, source lines, lazily-built import-origin map), then
  the whole list is folded into a :class:`repro.checks.index.ProjectIndex`
  — the project-wide symbol table (top-level defs, literal constants,
  ``register_*`` call sites) cross-module rules read.
* **Phase 2 — dispatch.**  Each rule is ``bind``-ed to the index, then
  ``check(module)`` yields :class:`Finding`\\ s per module and
  ``finalize()`` yields whole-tree findings (import cycles, registry
  coherence) after every module has been visited.  Rules are registered
  with :func:`register_rule` and instantiated fresh per run, so
  cross-module state never leaks between invocations.
* :func:`run_check` — discovery, both phases, per-line
  ``# repro: noqa[RULE]`` suppression, stale-suppression detection
  (SUP901), optional baseline demotion, and the :class:`Report`
  (text, ``--json``, or SARIF 2.1.0 for CI annotation).

Every rule carries an ``id`` (``DET101`` …), a one-line ``title`` and a
``hint`` (how to fix); ``--json`` emits all three so CI artifacts are
self-describing.  Findings from the mechanically-fixable rules also
carry a ``fix_kind``/``fix_span`` pair that :mod:`repro.checks.fix`
turns into source edits (``repro check --fix``).  See
``docs/static-analysis.md`` for the catalogue.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

__all__ = [
    "CheckError",
    "Finding",
    "Report",
    "Rule",
    "SourceModule",
    "all_rule_classes",
    "load_baseline",
    "register_rule",
    "run_check",
]


class CheckError(Exception):
    """Unusable invocation (bad root, unknown rule selector)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``fix_kind``/``fix_span`` are set only by the mechanically-fixable
    rules: the kind names a rewrite :mod:`repro.checks.fix` knows how to
    apply, the span is raw AST coordinates ``(lineno, col_offset,
    end_lineno, end_col_offset)`` of the text the rewrite touches.
    """

    rule: str
    path: str  # posix path relative to the scanned root
    line: int
    col: int
    message: str
    hint: str = ""
    fix_kind: str = ""
    fix_span: Optional[Tuple[int, int, int, int]] = None

    def render(self, root: str = "") -> str:
        where = f"{root}/{self.path}" if root else self.path
        text = f"{where}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text


class SourceModule:
    """One parsed source file plus everything rules need to inspect it."""

    def __init__(self, path: Path, rel: Path, tree: ast.Module, lines: List[str]):
        self.path = path
        self.rel = rel.as_posix()
        self.tree = tree
        self.lines = lines
        parts = list(rel.with_suffix("").parts)
        self.is_package = bool(parts) and parts[-1] == "__init__"
        if self.is_package:
            parts = parts[:-1]
        self.name = ".".join(parts)
        self.parts: Tuple[str, ...] = tuple(parts)
        # Layer = first dotted component ("core", "crypto", …); top-level
        # modules (cli, __main__) are their own single-component layer.
        self.top = parts[0] if parts else ""
        self._origins: Optional[Dict[str, str]] = None

    @property
    def origins(self) -> Dict[str, str]:
        """Local name → dotted origin for every import binding.

        ``import time as t`` maps ``t -> time``; ``from os import urandom``
        maps ``urandom -> os.urandom``.  Relative (package-internal)
        imports are mapped to their resolved internal dotted name, which
        never collides with the stdlib names the DET rules match on.
        """
        if self._origins is None:
            origins: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        origins[bound] = alias.name if alias.asname else bound
                elif isinstance(node, ast.ImportFrom):
                    base = self.resolve_from(node)
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        origins[bound] = f"{base}.{alias.name}" if base else alias.name
            self._origins = origins
        return self._origins

    def resolve_from(self, node: ast.ImportFrom) -> str:
        """Dotted target of a ``from … import`` statement.

        Relative imports resolve against this module's package path (the
        returned name is root-relative, e.g. ``network.messages``);
        absolute imports return ``node.module`` unchanged.
        """
        if not node.level:
            return node.module or ""
        base = list(self.parts if self.is_package else self.parts[:-1])
        for _ in range(node.level - 1):
            if base:
                base.pop()
        if node.module:
            base.extend(node.module.split("."))
        return ".".join(base)

    def resolve_call_target(self, func: ast.AST) -> Optional[str]:
        """Dotted origin of a call target, or ``None`` if not name-rooted.

        ``t.perf_counter()`` with ``import time as t`` resolves to
        ``time.perf_counter``; ``self.rng.random()`` resolves to
        ``self.rng.random`` (an instance call, which DET rules ignore).
        """
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(self.origins.get(node.id, node.id))
        return ".".join(reversed(chain))


class Rule:
    """Base class: one enforced invariant.

    Subclasses set ``id`` / ``title`` / ``hint`` and override
    :meth:`check` (per module) and optionally :meth:`finalize` (after the
    whole tree).  ``scope`` restricts a rule to the named top-level
    subpackages; ``None`` means the whole tree.
    """

    id: str = ""
    title: str = ""
    hint: str = ""
    scope: Optional[frozenset] = None

    def applies(self, module: SourceModule) -> bool:
        return self.scope is None or module.top in self.scope

    def bind(self, index: Any) -> None:
        """Receive the phase-1 :class:`~repro.checks.index.ProjectIndex`.

        Called once per run, before any ``check``/``finalize``.  The
        default is a no-op so purely-local rules stay oblivious;
        cross-module rules stash the index here.
        """

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        return iter(())

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        fix_kind: str = "",
        fix_node: Optional[ast.AST] = None,
    ) -> Finding:
        fix_span = None
        if fix_kind:
            span_node = fix_node if fix_node is not None else node
            end_line = getattr(span_node, "end_lineno", None)
            end_col = getattr(span_node, "end_col_offset", None)
            if end_line is not None and end_col is not None:
                fix_span = (
                    span_node.lineno, span_node.col_offset, end_line, end_col
                )
            else:  # no span, no mechanical fix
                fix_kind = ""
        return Finding(
            rule=self.id,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint,
            fix_kind=fix_kind,
            fix_span=fix_span,
        )


_RULE_CLASSES: List[Type[Rule]] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the default rule set."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if any(existing.id == cls.id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULE_CLASSES.append(cls)
    return cls


def all_rule_classes() -> List[Type[Rule]]:
    """Every registered rule class, in id order."""
    _load_builtin_rules()
    return sorted(_RULE_CLASSES, key=lambda cls: cls.id)


def _load_builtin_rules() -> None:
    # Imported for their @register_rule side effects; local to avoid a
    # circular import at package-load time.
    from . import api, dataflow, det, lay, obs_rules, ser, vec  # noqa: F401


def _matches(rule_id: str, selectors: Sequence[str]) -> bool:
    return any(rule_id == s or rule_id.startswith(s) for s in selectors)


def build_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Fresh rule instances honoring ``--select`` / ``--ignore``.

    Selectors are full ids (``DET104``) or family prefixes (``DET``).
    Unknown selectors raise :class:`CheckError` — a typo'd ``--select``
    must not silently check nothing.
    """
    classes = all_rule_classes()
    known = {cls.id for cls in classes}
    families = {cls.id.rstrip("0123456789") for cls in classes}
    for selector in list(select or []) + list(ignore or []):
        if selector not in known and selector not in families:
            raise CheckError(
                f"unknown rule selector {selector!r}; "
                f"known: {sorted(families)} + {sorted(known)}"
            )
    chosen = [
        cls
        for cls in classes
        if (not select or _matches(cls.id, select))
        and not (ignore and _matches(cls.id, ignore))
    ]
    return [cls() for cls in chosen]


_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?", re.IGNORECASE)


def _suppressed(lines: Optional[List[str]], finding: Finding) -> bool:
    """True if the finding's physical line carries a matching noqa."""
    if lines is None or not (1 <= finding.line <= len(lines)):
        return False
    match = _NOQA.search(lines[finding.line - 1])
    if match is None:
        return False
    if match.group(1) is None:
        return True  # a bare (selector-less) waiver silences every rule
    wanted = [part.strip() for part in match.group(1).split(",") if part.strip()]
    return _matches(finding.rule, wanted)


def _explicitly_waives_sup901(lines: Optional[List[str]], lineno: int) -> bool:
    """True if the line's noqa names SUP901/SUP among its selectors."""
    if lines is None or not (1 <= lineno <= len(lines)):
        return False
    match = _NOQA.search(lines[lineno - 1])
    if match is None or match.group(1) is None:
        return False
    wanted = [part.strip() for part in match.group(1).split(",") if part.strip()]
    return _matches("SUP901", wanted)


@register_rule
class StaleSuppressionRule(Rule):
    """A ``# repro: noqa[RULE]`` comment that no longer suppresses anything.

    Suppressions are debt: each one pins a rule to a line with a
    justification.  When the offending code is later fixed or moved, the
    comment silently outlives its reason — and a stale blanket waiver on
    a line is exactly where the *next* violation hides.  The framework
    tracks which noqa comments actually matched a finding this run; any
    comment that matched none is reported here (and ``--fix`` deletes
    it).  A comment naming only rules outside the active ``--select``
    set is left alone — a narrowed run cannot judge it.

    The rule is implemented inside :func:`run_check` (it needs the
    post-suppression ledger), not via ``check``/``finalize``; this class
    exists so SUP901 shows up in ``--list-rules``, selectors and the
    catalogue like any other rule.
    """

    id = "SUP901"
    title = "stale noqa suppression (matched no finding)"
    hint = "delete the comment, or re-justify it against a rule that still fires"


def _stale_noqa_findings(
    lines_by_path: Dict[str, List[str]],
    used_noqa_lines: set,
    active_ids: set,
) -> Iterator[Finding]:
    """SUP901: every noqa comment that suppressed nothing this run.

    ``used_noqa_lines`` is the ledger of ``(path, line)`` pairs whose
    noqa matched at least one finding.  A comment with explicit
    selectors is only judged when every selector names at least one
    *active* rule — otherwise the narrowed run has no standing to call
    it stale.
    """
    families = {rule_id.rstrip("0123456789") for rule_id in active_ids}
    judgeable = active_ids | families
    for path in sorted(lines_by_path):
        for lineno, text in enumerate(lines_by_path[path], start=1):
            match = _NOQA.search(text)
            if match is None or (path, lineno) in used_noqa_lines:
                continue
            if match.group(1) is not None:
                wanted = [
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                ]
                if not all(
                    any(_matches(rule_id, [sel]) for rule_id in judgeable)
                    for sel in wanted
                ):
                    continue
                label = "noqa[" + ", ".join(wanted) + "]"
            else:
                label = "bare noqa"
            yield Finding(
                rule="SUP901",
                path=path,
                line=lineno,
                col=match.start() + 1,
                message=f"stale suppression: {label} matched no finding",
                hint=StaleSuppressionRule.hint,
                fix_kind="drop_noqa",
                fix_span=(lineno, match.start(), lineno, len(text)),
            )


_BASELINE_SCHEMA = "repro-check-baseline/1"


def load_baseline(path) -> List[Dict[str, Any]]:
    """Read a baseline file: known findings demoted instead of reported.

    The format is ``{"schema": "repro-check-baseline/1", "entries":
    [{"rule", "path", "message"}, ...]}``.  Entries match findings by
    (rule, path, message) — deliberately *not* by line number, so code
    motion above a baselined finding does not resurrect it.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise CheckError(f"cannot read baseline {path}: {error}")
    except json.JSONDecodeError as error:
        raise CheckError(f"baseline {path} is not valid JSON: {error}")
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != _BASELINE_SCHEMA
        or not isinstance(payload.get("entries"), list)
    ):
        raise CheckError(
            f"baseline {path} must be "
            f'{{"schema": "{_BASELINE_SCHEMA}", "entries": [...]}}'
        )
    for entry in payload["entries"]:
        if not isinstance(entry, dict) or not {"rule", "path"} <= set(entry):
            raise CheckError(
                f"baseline {path}: every entry needs rule/path keys"
            )
    return payload["entries"]


def _baseline_key(entry: Mapping[str, Any]) -> Tuple[str, str, str]:
    return (
        str(entry.get("rule", "")),
        str(entry.get("path", "")),
        str(entry.get("message", "")),
    )


@dataclass
class Report:
    """Outcome of one check run, renderable as text, JSON, or SARIF."""

    root: str
    files: int
    findings: List[Finding]
    suppressed: int
    rules: List[str] = field(default_factory=list)
    baselined: int = 0
    baseline_entries: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> str:
        payload = {
            "root": self.root,
            "files_scanned": self.files,
            "rules": self.rules,
            "ok": self.ok,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "baseline_entries": self.baseline_entries,
            "counts_by_rule": self.counts_by_rule(),
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "hint": f.hint,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def to_sarif(self) -> str:
        """SARIF 2.1.0 — what CI uploads so PR diffs get inline annotations."""
        by_id = {cls.id: cls for cls in all_rule_classes()}
        rule_meta = []
        for rule_id in self.rules:
            cls = by_id.get(rule_id)
            descriptor: Dict[str, Any] = {"id": rule_id}
            if cls is not None:
                descriptor["shortDescription"] = {"text": cls.title}
                if cls.hint:
                    descriptor["help"] = {"text": f"fix: {cls.hint}"}
            rule_meta.append(descriptor)
        results = [
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {
                    "text": f.message + (f" (fix: {f.hint})" if f.hint else "")
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col,
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        payload = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-check",
                            "informationUri": "docs/static-analysis.md",
                            "rules": rule_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def render(self) -> str:
        out = [finding.render(self.root) for finding in self.findings]
        noise = f", {self.suppressed} suppressed" if self.suppressed else ""
        if self.baselined:
            noise += f", {self.baselined} baselined"
        verdict = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        out.append(f"repro check: {verdict} in {self.files} file(s){noise}")
        return "\n".join(out)


def _iter_source_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def run_check(
    root,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Sequence[Mapping[str, Any]]] = None,
) -> Report:
    """Walk every ``*.py`` under ``root`` once and apply all rules.

    ``root`` must be the *package root* (the directory holding ``core/``,
    ``crypto/`` …): layer scoping and relative-import resolution are
    computed from paths relative to it.

    Phase 1 parses every file and builds the
    :class:`~repro.checks.index.ProjectIndex`; phase 2 binds the index
    to each rule and dispatches.  Findings come back sorted by (path,
    line, col, rule); per-line ``# repro: noqa[RULE]`` comments suppress
    matching findings and are tallied in ``Report.suppressed``; noqa
    comments that matched *nothing* become SUP901 findings.  ``baseline``
    entries (see :func:`load_baseline`) demote matching findings into
    ``Report.baselined`` instead of failing the run.
    """
    given = str(root)
    root = Path(root)
    if not root.is_dir():
        raise CheckError(f"not a directory: {given}")
    rules = build_rules(select, ignore)

    # Phase 1: parse everything, then index the whole tree.
    findings: List[Finding] = []
    lines_by_path: Dict[str, List[str]] = {}
    modules: List[SourceModule] = []
    files = 0
    for path in _iter_source_files(root):
        files += 1
        rel = path.relative_to(root)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise CheckError(f"cannot read {path}: {error}")
        lines = text.splitlines()
        lines_by_path[rel.as_posix()] = lines
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="CHK001",
                    path=rel.as_posix(),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    message=f"syntax error: {error.msg}",
                    hint="fix the file so it parses; nothing else was checked",
                )
            )
            continue
        modules.append(SourceModule(path, rel, tree, lines))

    from .index import ProjectIndex  # deferred: index imports SourceModule

    index = ProjectIndex(modules)

    # Phase 2: bind the index, dispatch per module, then finalize.
    for rule in rules:
        rule.bind(index)
    for module in modules:
        for rule in rules:
            if rule.applies(module):
                findings.extend(rule.check(module))
    for rule in rules:
        findings.extend(rule.finalize())

    kept: List[Finding] = []
    suppressed = 0
    used_noqa_lines: set = set()
    for finding in findings:
        if _suppressed(lines_by_path.get(finding.path), finding):
            suppressed += 1
            used_noqa_lines.add((finding.path, finding.line))
        else:
            kept.append(finding)

    active_ids = {rule.id for rule in rules}
    if "SUP901" in active_ids:
        for finding in _stale_noqa_findings(
            lines_by_path, used_noqa_lines, active_ids
        ):
            # A stale-noqa finding is itself suppressible, but only by
            # an *explicit* SUP selector (a deliberate placeholder).
            # The stale comment's own bare waiver doesn't count — that
            # would make every stale blanket waiver self-concealing.
            if _explicitly_waives_sup901(
                lines_by_path.get(finding.path), finding.line
            ):
                suppressed += 1
            else:
                kept.append(finding)

    baselined = 0
    if baseline:
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in baseline:
            key = _baseline_key(entry)
            budget[key] = budget.get(key, 0) + 1
        remaining: List[Finding] = []
        for finding in kept:
            key = (finding.rule, finding.path, finding.message)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
            else:
                remaining.append(finding)
        kept = remaining

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(
        root=given,
        files=files,
        findings=kept,
        suppressed=suppressed,
        rules=[rule.id for rule in rules],
        baselined=baselined,
        baseline_entries=len(baseline or []),
    )
