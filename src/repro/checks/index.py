"""Phase-1 project index: the whole-tree symbol model cross-module rules read.

``run_check`` used to parse one file, dispatch it, and forget it.  The
cross-module rule families (DET2xx RNG taint across helper calls, VEC
registry coherence, OBS schema-constant pinning) need to *see the whole
tree at once*: which names ``register_protocol`` actually registered,
what value ``TRACE_RECORD_TYPES`` holds, where a class passed to
``register_vector_model`` is defined.  :class:`ProjectIndex` is that
view — built once per run from the already-parsed :class:`SourceModule`
list (phase 1), then handed to every rule via ``Rule.bind`` before
dispatch (phase 2).

Everything here is AST-only.  The checks layer never imports the code it
checks (see the LAY map: ``"checks": set()``), so constants like the obs
vocabularies are recovered by *evaluating literal assignments*, not by
importing ``repro.obs``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .framework import SourceModule

__all__ = ["ProjectIndex", "RegistrationCall", "NON_LITERAL"]

#: Sentinel for a registration argument that is not a string literal
#: (a variable, an f-string, a call …).  Distinct from ``None``, which
#: is the *literal* ``None`` (a real value for the adversary slot).
NON_LITERAL = object()

#: Registry entry points collected into :attr:`ProjectIndex.registrations`.
_REGISTRY_FUNCS = frozenset(
    {
        "register_protocol",
        "register_adversary",
        "register_fault_plan",
        "register_vector_model",
    }
)


@dataclass(frozen=True)
class RegistrationCall:
    """One ``register_*`` call site, with its literal arguments decoded."""

    func: str  # bare function name ("register_protocol", …)
    module: SourceModule
    node: ast.Call
    #: Positional args decoded: a ``str`` for a string literal, ``None``
    #: for a literal ``None``, :data:`NON_LITERAL` otherwise.
    args: Tuple[Any, ...]

    def arg(self, position: int) -> Any:
        return self.args[position] if position < len(self.args) else NON_LITERAL


def _decode_arg(node: ast.AST) -> Any:
    if isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, str)
    ):
        return node.value
    return NON_LITERAL


def _literal_value(node: ast.AST) -> Any:
    """Evaluate a module-level constant expression, or raise ValueError.

    Handles everything :func:`ast.literal_eval` does plus the
    ``frozenset({...})`` / ``set(...)`` / ``tuple(...)`` call spellings
    used for module-level vocabularies.
    """
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set", "tuple", "list", "dict")
        and not node.keywords
        and len(node.args) <= 1
    ):
        builder = {"frozenset": frozenset, "set": set, "tuple": tuple,
                   "list": list, "dict": dict}[node.func.id]
        if not node.args:
            return builder()
        return builder(_literal_value(node.args[0]))
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.Add)):
        left = _literal_value(node.left)
        right = _literal_value(node.right)
        if isinstance(node.op, ast.BitOr):
            return left | right
        return left + right
    return ast.literal_eval(node)


class ModuleSymbols:
    """Top-level defs of one module: functions, classes, constant values."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.functions: Dict[str, ast.AST] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.constants: Dict[str, Any] = {}
        self.assignments: Dict[str, ast.AST] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    self.assignments[target.id] = value
                    try:
                        self.constants[target.id] = _literal_value(value)
                    except (ValueError, TypeError, SyntaxError, KeyError):
                        pass


class ProjectIndex:
    """Whole-tree symbol table built in phase 1, read by rules in phase 2."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: Tuple[SourceModule, ...] = tuple(modules)
        self.by_name: Dict[str, SourceModule] = {m.name: m for m in modules}
        self.symbols: Dict[str, ModuleSymbols] = {
            m.name: ModuleSymbols(m) for m in modules
        }
        self._registrations: Optional[Dict[str, List[RegistrationCall]]] = None

    # -- registrations ---------------------------------------------------

    @property
    def registrations(self) -> Dict[str, List[RegistrationCall]]:
        """``register_*`` name → every call site in the tree, decoded."""
        if self._registrations is None:
            table: Dict[str, List[RegistrationCall]] = {
                name: [] for name in _REGISTRY_FUNCS
            }
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    target = module.resolve_call_target(node.func)
                    if target is None:
                        continue
                    bare = target.rsplit(".", 1)[-1]
                    if bare in _REGISTRY_FUNCS:
                        table[bare].append(
                            RegistrationCall(
                                func=bare,
                                module=module,
                                node=node,
                                args=tuple(
                                    _decode_arg(arg) for arg in node.args
                                ),
                            )
                        )
            self._registrations = table
        return self._registrations

    def registered_names(self, func: str) -> set:
        """The literal-string names a registry function was called with."""
        return {
            call.arg(0)
            for call in self.registrations.get(func, [])
            if isinstance(call.arg(0), str)
        }

    # -- constants and defs ----------------------------------------------

    def constant(self, top: str, name: str) -> Any:
        """First module-level constant ``name`` in layer ``top``, else None.

        Modules are searched in sorted dotted-name order, so the lookup
        is deterministic when a name is (wrongly) defined twice.
        """
        for module_name in sorted(self.by_name):
            module = self.by_name[module_name]
            if module.top != top:
                continue
            value = self.symbols[module_name].constants.get(name)
            if value is not None:
                return value
        return None

    def iter_functions(self, top: Optional[str] = None) -> Iterator[
        Tuple[SourceModule, ast.AST]
    ]:
        """Every function def (at any nesting depth) in the given layer."""
        for module in self.modules:
            if top is not None and module.top != top:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield module, node

    def resolve_class(
        self, module: SourceModule, name: str
    ) -> Optional[Tuple[SourceModule, ast.ClassDef]]:
        """Find the ClassDef a (possibly imported) name refers to.

        Checks the module's own top-level classes first, then chases one
        import hop via the origin map (``from .models import Foo``).
        """
        symbols = self.symbols.get(module.name)
        if symbols and name in symbols.classes:
            return module, symbols.classes[name]
        origin = module.origins.get(name)
        if origin and "." in origin:
            source_name, attr = origin.rsplit(".", 1)
            other = self.symbols.get(source_name)
            if other and attr in other.classes:
                return self.by_name[source_name], other.classes[attr]
        return None
