"""DET rules: nondeterminism sources banned from protocol code.

Scope: ``core``, ``proxcensus``, ``crypto``, ``network`` — the packages
whose behavior must be a pure function of ``(TrialSpec, seeds)``.  A
wall-clock read, an ambient-entropy draw, a shared-global-RNG call or an
unordered iteration in any of them silently breaks the engine's
"byte-identical for any worker count" guarantee; the analysis/engine/cli
layers may time and randomize freely (they report, they don't decide).

Every rule here is syntactic and conservative: instance RNGs
(``self.rng.random()``), seeded ``random.Random(seed)`` construction and
``sorted(...)``-wrapped set iteration all pass.  Known-safe exceptions
are annotated in-source with ``# repro: noqa[DETxxx]`` plus a
justification, so each suppression documents itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .framework import Finding, Rule, SourceModule, register_rule

__all__ = ["PROTOCOL_SCOPE", "GENERATOR_COMPATIBLE_DRAWS"]

#: The deterministic layers (see module docstring).
PROTOCOL_SCOPE = frozenset({"core", "proxcensus", "crypto", "network"})

# Module-level functions of `random` that draw from the process-shared
# global RNG.  `random.Random` (a seeded instance) is the sanctioned way.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "getrandbits", "seed", "betavariate",
        "expovariate", "triangular", "normalvariate", "lognormvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate", "randbytes",
    }
)

# numpy.random names that construct *explicit* generator state instead
# of drawing from (or reseeding) the module-level legacy RNG.  These are
# the sanctioned spellings: a seeded object per use site, like
# `random.Random(seed)` on the stdlib side.
_NUMPY_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
    }
)

# Legacy module-level draws whose ``Generator`` method takes the same
# arguments — the subset the DET106 autofix may mechanically rewrite to
# ``default_rng(0).<fn>(...)`` (see ``repro.checks.fix``).
GENERATOR_COMPATIBLE_DRAWS = frozenset(
    {
        "random", "choice", "shuffle", "permutation", "standard_normal",
        "normal", "uniform", "beta", "binomial", "exponential", "gamma",
        "poisson",
    }
)

_WALL_CLOCK_TARGETS = (
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

_ENTROPY_EXACT = frozenset({"os.urandom", "os.getrandom", "random.SystemRandom"})
_ENTROPY_PREFIXES = ("uuid.", "secrets.")


class _CallRule(Rule):
    """Shared shape: flag calls whose resolved dotted target matches."""

    scope = PROTOCOL_SCOPE

    def match(self, target: str) -> Optional[str]:
        raise NotImplementedError

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve_call_target(node.func)
            if target is None:
                continue
            message = self.match(target)
            if message is not None:
                yield self.finding(module, node, message)


@register_rule
class WallClockRule(_CallRule):
    """Wall-clock reads make protocol behavior depend on *when* it runs.

    Any call into the ``time`` module (``time.time``, ``perf_counter``,
    ``monotonic``, ``sleep`` …) or a ``datetime`` "now" constructor from
    inside the deterministic layers is flagged.  Timing belongs in the
    engine/analysis layers, which measure runs rather than participate
    in them.
    """

    id = "DET101"
    title = "wall-clock read in deterministic protocol code"
    hint = "move timing to the engine/analysis layer; protocol code gets rounds, not clocks"

    def match(self, target: str) -> Optional[str]:
        if target == "time" or target.startswith("time."):
            return f"call to {target}() reads the wall clock"
        if target in _WALL_CLOCK_TARGETS:
            return f"call to {target}() reads the wall clock"
        return None


@register_rule
class AmbientEntropyRule(_CallRule):
    """OS entropy and uuids can never be replayed from a seed.

    ``os.urandom``, ``uuid.*``, ``secrets.*`` and ``random.SystemRandom``
    produce values no ``TrialSpec`` seed can reproduce, so a trial that
    touches them is unreplayable by construction.
    """

    id = "DET102"
    title = "ambient entropy source in deterministic protocol code"
    hint = "derive randomness from the per-trial random.Random(seed) stream"

    def match(self, target: str) -> Optional[str]:
        if target in _ENTROPY_EXACT or any(
            target.startswith(prefix) for prefix in _ENTROPY_PREFIXES
        ):
            return f"call to {target}() draws ambient entropy"
        return None


@register_rule
class GlobalRngRule(_CallRule):
    """The module-level ``random.*`` functions share one process-global RNG.

    Two trials running in one worker process would interleave draws from
    it, making results depend on scheduling.  Seeded ``random.Random``
    instances (one stream per trial) are the sanctioned alternative and
    pass this rule.
    """

    id = "DET103"
    title = "module-level random.* call (process-shared RNG state)"
    hint = "use a seeded random.Random instance passed down from the TrialSpec"

    def match(self, target: str) -> Optional[str]:
        parts = target.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _GLOBAL_RNG_FUNCS:
            return f"call to {target}() uses the process-global RNG"
        return None


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically-certain set expressions (literals, set(), set ops)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            return True
    return False


@register_rule
class SetIterationRule(Rule):
    """Set iteration order is arbitrary; anything built from it diverges.

    A ``for`` loop, comprehension, ``list()``/``tuple()``/``enumerate()``
    conversion or ``join`` over a set feeds hash-order data into whatever
    it constructs — and a message or signature built that way is
    different between runs and interpreters.  Wrap the set in
    ``sorted(...)`` to pin the order (order-insensitive reductions like
    ``len``/``sum``/``min``/``max``/``any`` are naturally exempt: they
    never appear as iteration contexts here).
    """

    id = "DET104"
    title = "iteration over an unordered set"
    hint = "iterate sorted(<set>) so downstream construction is order-stable"
    scope = PROTOCOL_SCOPE

    _CONVERTERS = frozenset({"list", "tuple", "enumerate", "iter"})

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                yield self.finding(
                    module,
                    node.iter,
                    "for-loop over an unordered set expression",
                    fix_kind="wrap_sorted",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield self.finding(
                            module,
                            generator.iter,
                            "comprehension over an unordered set expression",
                            fix_kind="wrap_sorted",
                        )
            elif isinstance(node, ast.Call) and node.args:
                head = node.args[0]
                if not _is_set_expr(head):
                    continue
                if isinstance(node.func, ast.Name) and node.func.id in self._CONVERTERS:
                    yield self.finding(
                        module,
                        head,
                        f"{node.func.id}() over an unordered set expression",
                        fix_kind="wrap_sorted",
                    )
                elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
                    yield self.finding(
                        module,
                        head,
                        "join() over an unordered set expression",
                        fix_kind="wrap_sorted",
                    )


@register_rule
class NumpyGlobalRngRule(_CallRule):
    """``numpy.random`` module-level calls share one process-global RNG.

    The numpy counterpart of DET103: ``np.random.seed(...)`` reseeds
    state every caller in the process shares, and module-level draws
    (``np.random.random()``, ``np.random.randint(...)``, …) consume from
    it, so results depend on what else ran first.  The vector engine
    backend makes numpy part of the deterministic surface, so the rule
    covers ``engine`` as well as the protocol layers.  Explicit generator
    construction — ``np.random.default_rng(seed)``, ``Generator``/
    ``SeedSequence``/bit-generator classes, seeded ``RandomState`` —
    passes: one owned stream per use site, like ``random.Random(seed)``.
    """

    id = "DET106"
    title = "numpy.random global-state call (shared legacy RNG)"
    hint = "use numpy.random.default_rng(seed) — an explicit Generator per use site"
    scope = PROTOCOL_SCOPE | frozenset({"engine"})

    def match(self, target: str) -> Optional[str]:
        parts = target.split(".")
        if len(parts) == 3 and parts[:2] == ["numpy", "random"]:
            if parts[2] in _NUMPY_RNG_CONSTRUCTORS:
                return None
            return f"call to {target}() uses numpy's process-global RNG"
        return None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        # Same walk as _CallRule, plus fix metadata: draws with a
        # Generator-compatible signature get the mechanical
        # `.default_rng(0)` rewrite (span = the `np.random` prefix).
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve_call_target(node.func)
            if target is None:
                continue
            message = self.match(target)
            if message is None:
                continue
            draw = target.rsplit(".", 1)[-1]
            if (
                draw in GENERATOR_COMPATIBLE_DRAWS
                and isinstance(node.func, ast.Attribute)
            ):
                yield self.finding(
                    module,
                    node,
                    message,
                    fix_kind="numpy_rng",
                    fix_node=node.func.value,
                )
            else:
                yield self.finding(module, node, message)


def _is_keys_call(node: ast.AST) -> bool:
    """``<expr>.keys()`` — the syntactic marker for a mapping view."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _is_dict_expr(node: ast.AST) -> bool:
    """Syntactically-certain mapping expressions (literals, dict(), .keys())."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
    ):
        return True
    return _is_keys_call(node)


@register_rule
class DictOrderingRule(Rule):
    """Dict iteration order is insertion order — which is arrival order.

    In protocol code the dicts are tallies keyed by received values, so
    their insertion order encodes *message arrival order*.  A tie-break
    that reads it — ``next(iter(tally.keys()))`` grabbing "the" key, or
    ``min``/``max`` with a ``key=`` function over ``.keys()`` (ties
    between equal-key elements resolve to whichever arrived first) —
    silently couples the decision to delivery scheduling.  Pin the order
    instead: ``next(iter(sorted(tally)))``, or fold the element into the
    comparison key so no tie is left to iteration order (the
    ``max(tally.items(), key=lambda kv: (kv[1], repr(kv[0])))`` idiom).
    Order-insensitive reductions — ``len``/``sum``/``any``, ``min``/
    ``max`` *without* ``key=`` — pass.
    """

    id = "DET107"
    title = "tie-break fed by dict iteration order"
    hint = "sort the keys first, or make the comparison key total so no tie remains"
    scope = PROTOCOL_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Name
            ):
                continue
            if node.func.id == "next" and node.args:
                inner = node.args[0]
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "iter"
                    and inner.args
                    and _is_dict_expr(inner.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        "next(iter(...)) over a mapping reads insertion "
                        "(= arrival) order",
                    )
            elif node.func.id in ("min", "max") and node.args:
                if _is_keys_call(node.args[0]) and any(
                    keyword.arg == "key" for keyword in node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(.keys(), key=...) breaks ties by "
                        "dict insertion (= arrival) order",
                    )


@register_rule
class IdOrderingRule(Rule):
    """``id()`` values vary per process, so ordering by them is random.

    Flags ``sorted``/``min``/``max``/``.sort`` with ``key=id`` (or a key
    lambda calling ``id``) and ``id(...)`` comparisons.  Identity-keyed
    *caches* (``cache[id(obj)]``) are deterministic in effect and pass.
    """

    id = "DET105"
    title = "ordering derived from id() values"
    hint = "sort by a stable key (party id, tuple of fields), never id()"
    scope = PROTOCOL_SCOPE

    _ORDER_FUNCS = frozenset({"sorted", "min", "max"})
    _COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

    @staticmethod
    def _is_id_key(value: ast.AST) -> bool:
        if isinstance(value, ast.Name) and value.id == "id":
            return True
        if isinstance(value, ast.Lambda):
            return any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "id"
                for inner in ast.walk(value.body)
            )
        return False

    @staticmethod
    def _is_id_call(value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "id"
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                ordered = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDER_FUNCS
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if ordered:
                    for keyword in node.keywords:
                        if keyword.arg == "key" and self._is_id_key(keyword.value):
                            yield self.finding(
                                module, node, "sort key derived from id()"
                            )
            elif isinstance(node, ast.Compare):
                sides = [node.left] + list(node.comparators)
                if any(isinstance(op, self._COMPARE_OPS) for op in node.ops) and any(
                    self._is_id_call(side) for side in sides
                ):
                    yield self.finding(
                        module, node, "ordering comparison of id() values"
                    )
