"""``repro check --fix``: safe mechanical rewrites for a whitelisted subset.

Only rules whose fix is provably behavior-preserving *at the AST level*
participate; everything else stays a finding for a human.  The
whitelist:

* **DET104** (``wrap_sorted``) — wrap the offending set expression in
  ``sorted(...)``.  Iteration order becomes pinned; elements unchanged.
* **DET106** (``numpy_rng``) — rewrite a module-level draw
  ``np.random.<fn>(...)`` to ``np.random.default_rng(0).<fn>(...)`` for
  the draw names whose Generator API is call-compatible.  The rewrite is
  deterministic by construction; the pinned ``0`` seed is deliberately
  conspicuous in the diff — thread the real per-trial seed through and
  replace it.
* **SUP901** (``drop_noqa``) — delete a stale ``# repro: noqa[...]``
  comment (the whole comment, to end of line).

:func:`fix_tree` runs check → apply → re-check until no fixable finding
remains (nested fixes converge in a pass or two), so a second ``--fix``
invocation is always a byte-for-byte no-op — the idempotence the test
suite pins.  With ``write=False`` the loop runs against a throwaway
copy of the tree and only the unified diffs come back (``--diff`` /
``make check-fix-dry``).
"""

from __future__ import annotations

import difflib
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .det import GENERATOR_COMPATIBLE_DRAWS  # noqa: F401  (re-export; DET106 whitelist)
from .framework import Finding, Report, run_check

__all__ = ["FixResult", "fix_tree", "FIXABLE_KINDS", "GENERATOR_COMPATIBLE_DRAWS"]

#: Rewrite kinds this module knows how to apply (Finding.fix_kind values).
FIXABLE_KINDS = frozenset({"wrap_sorted", "numpy_rng", "drop_noqa"})

_MAX_PASSES = 8


@dataclass
class FixResult:
    """Outcome of one :func:`fix_tree` run."""

    applied: int
    passes: int
    changed_files: List[str] = field(default_factory=list)
    diffs: List[str] = field(default_factory=list)
    report: Optional[Report] = None  # the post-fix check report

    @property
    def changed(self) -> bool:
        return bool(self.changed_files)


def _apply_edits(text: str, findings: Sequence[Finding]) -> Tuple[str, int]:
    """Apply every fixable finding's edit to one file's source text.

    Edits are decomposed into point operations (insertions and one-line
    deletions) and applied bottom-up, so earlier edits never shift the
    coordinates of later ones.  Overlap is impossible by construction
    within a single pass (each op touches a distinct AST span); exact
    duplicates are deduped defensively.
    """
    lines = text.split("\n")
    # (line, col, priority, kind, payload); applied in descending order.
    ops: List[Tuple[int, int, int, str, str]] = []
    for finding in findings:
        if not finding.fix_kind or finding.fix_span is None:
            continue
        start_line, start_col, end_line, end_col = finding.fix_span
        if finding.fix_kind == "wrap_sorted":
            ops.append((end_line, end_col, 0, "insert", ")"))
            ops.append((start_line, start_col, 1, "insert", "sorted("))
        elif finding.fix_kind == "numpy_rng":
            ops.append((end_line, end_col, 0, "insert", ".default_rng(0)"))
        elif finding.fix_kind == "drop_noqa":
            ops.append((start_line, start_col, 0, "delete_to_eol", ""))
    applied = 0
    seen = set()
    for op in sorted(ops, reverse=True):
        if op in seen:
            continue
        seen.add(op)
        line, col, _, kind, payload = op
        if not (1 <= line <= len(lines)):
            continue
        source = lines[line - 1]
        if kind == "insert":
            lines[line - 1] = source[:col] + payload + source[col:]
        else:  # delete_to_eol — drop the comment, tidy trailing space
            lines[line - 1] = source[:col].rstrip()
        applied += 1
    # wrap_sorted contributes two ops per finding but is one fix.
    return "\n".join(lines), applied


def fix_tree(
    root,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    write: bool = True,
) -> FixResult:
    """Apply every whitelisted fix under ``root`` until none remain.

    With ``write=False``, the rewrites run against a temporary copy and
    the tree on disk is untouched — ``diffs`` still describes exactly
    what ``--fix`` would do.
    """
    root = Path(root)
    if write:
        return _fix_in_place(root, select, ignore)
    with tempfile.TemporaryDirectory(prefix="repro-check-fix-") as tmp:
        scratch = Path(tmp) / "tree"
        shutil.copytree(root, scratch, ignore=shutil.ignore_patterns("__pycache__"))
        return _fix_in_place(scratch, select, ignore)


def _fix_in_place(
    root: Path,
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> FixResult:
    originals: Dict[str, str] = {}
    changed: List[str] = []
    total = 0
    passes = 0
    report = run_check(root, select=select, ignore=ignore)
    while passes < _MAX_PASSES:
        passes += 1
        by_path: Dict[str, List[Finding]] = {}
        for finding in report.findings:
            if (
                finding.fix_kind in FIXABLE_KINDS
                and finding.fix_span is not None
            ):
                by_path.setdefault(finding.path, []).append(finding)
        if not by_path:
            break
        for rel, findings in sorted(by_path.items()):
            path = root / rel
            text = path.read_text(encoding="utf-8")
            originals.setdefault(rel, text)
            new_text, applied = _apply_edits(text, findings)
            if applied and new_text != text:
                path.write_text(new_text, encoding="utf-8")
                total += len(findings)
                if rel not in changed:
                    changed.append(rel)
        # Re-check: fixes may unmask (or resolve) further fixable findings.
        report = run_check(root, select=select, ignore=ignore)
    diffs: List[str] = []
    for rel in sorted(changed):
        before = originals.get(rel, "")
        after = (root / rel).read_text(encoding="utf-8")
        diff = difflib.unified_diff(
            before.splitlines(keepends=True),
            after.splitlines(keepends=True),
            fromfile=f"a/{rel}",
            tofile=f"b/{rel}",
        )
        diffs.append("".join(diff))
    return FixResult(
        applied=total,
        passes=passes,
        changed_files=sorted(changed),
        diffs=diffs,
        report=report,
    )
