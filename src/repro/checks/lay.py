"""LAY rules: the import DAG the architecture is built on, enforced.

The repository layers bottom-up — ``crypto`` (pure math, stdlib only),
``adversary``/``network`` (the simulated world), ``proxcensus``/``core``
(the paper's protocols), ``analysis``/``applications`` (reporting and
demos), ``obs`` (streaming trace sinks and telemetry — the one layer
allowed wall clocks), ``engine`` (parallel execution) and the CLI on
top.  Determinism
audits depend on this: the DET rules can scope to the four protocol
layers only because nothing below them reaches up into code that may
time, randomize or fork.

Both rules build edges from the AST alone (absolute and relative imports,
including function-local ones), at *module* granularity — package-level
aliasing (``adversary.base`` ↔ ``network.simulator``) is legal precisely
because the module graph stays acyclic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from .framework import Finding, Rule, SourceModule, register_rule

__all__ = ["ALLOWED_IMPORTS"]

#: importer layer → internal layers it may import.  Layers absent from
#: the map (top-level modules like ``cli``, new packages) are
#: unconstrained by LAY201 but still participate in LAY202 cycles.
ALLOWED_IMPORTS: Dict[str, Set[str]] = {
    "crypto": set(),  # foundation: stdlib only
    "adversary": {"crypto", "network"},
    "network": {"crypto", "adversary"},  # simulator drives adversary.base
    "proxcensus": {"crypto", "network"},
    "core": {"crypto", "network", "proxcensus"},
    "analysis": {"crypto", "network", "adversary", "proxcensus", "core"},
    "applications": {"crypto", "network", "adversary", "proxcensus", "core"},
    # Observability: wall clocks and filesystem live here, above the
    # DET-scoped protocol layers — which must never import it back.
    "obs": {"crypto", "network"},
    "engine": {
        "crypto", "network", "adversary", "proxcensus", "core", "analysis",
        "obs",
    },
    "checks": set(),  # the analyzer itself: stdlib only, imports nothing it checks
}

#: Absolute-import prefixes treated as package-internal.
_INTERNAL_ROOTS = ("repro",)


def _walk_imports(tree: ast.Module, include_deferred: bool) -> Iterator[ast.stmt]:
    """Import statements, optionally skipping function-local (deferred) ones.

    A deferred import inside a function body runs at call time, not at
    module-import time — it is the standard way to *break* a cycle, so
    the cycle rule must not count it; the layering rule still does (a
    lazy upward import is an upward import).
    """
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
            continue
        if not include_deferred and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _iter_import_edges(
    module: SourceModule, include_deferred: bool = True
) -> Iterator[Tuple[str, ast.stmt]]:
    """Yield ``(target_dotted, stmt)`` for every package-internal import."""
    for node in _walk_imports(module.tree, include_deferred):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] in _INTERNAL_ROOTS and len(parts) > 1:
                    yield ".".join(parts[1:]), node
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                parts = (node.module or "").split(".")
                if parts[0] not in _INTERNAL_ROOTS:
                    continue
                base = ".".join(parts[1:])
            else:
                base = module.resolve_from(node)
            for alias in node.names:
                if alias.name == "*" or not base:
                    yield base or alias.name, node
                else:
                    # `from X import name` may bind a submodule X.name or
                    # an attribute of X; emit the longer candidate — the
                    # cycle rule snaps it to a real module, the layer
                    # rule only reads the first component (identical).
                    yield f"{base}.{alias.name}", node


@register_rule
class LayeringRule(Rule):
    """Cross-layer import that reaches outside the importer's allowance.

    The allowance table is the architecture (see module docstring):
    e.g. ``crypto`` imports nothing internal, ``core``/``proxcensus``
    never import ``engine``/``analysis``/``cli``.  Intra-layer imports
    are always fine.
    """

    id = "LAY201"
    title = "import violates the layer map"
    hint = "depend downward only; move shared code into the lower layer"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        allowed = ALLOWED_IMPORTS.get(module.top)
        if allowed is None:
            return
        for target, node in _iter_import_edges(module):
            target_top = target.split(".")[0]
            if target_top != module.top and target_top not in allowed:
                yield self.finding(
                    module,
                    node,
                    f"layer {module.top!r} must not import "
                    f"{target_top!r} (via {target})",
                )


@register_rule
class ImportCycleRule(Rule):
    """Module-level import cycles.

    A cycle makes import order load-bearing and is how layering erodes:
    the first module to sneak an upward import usually "works" because
    of ``sys.modules`` timing, until a refactor reorders imports and it
    doesn't.  Detected over the whole tree (Tarjan SCCs) after all
    modules are parsed; one finding per cycle, anchored at the
    lexicographically-first module's offending import.
    """

    id = "LAY202"
    title = "import cycle between modules"
    hint = "break the cycle: extract the shared piece into a lower module"

    def __init__(self) -> None:
        # module name → {target name: (path, line)}
        self._edges: Dict[str, Dict[str, Tuple[str, int]]] = {}
        self._modules: Set[str] = set()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        self._modules.add(module.name)
        edges = self._edges.setdefault(module.name, {})
        # Only imports executed at module-import time create cycles;
        # function-local imports are the sanctioned deferral idiom.
        for target, node in _iter_import_edges(module, include_deferred=False):
            edges.setdefault(target, (module.rel, node.lineno))
        return iter(())

    def _resolved_edges(self) -> Dict[str, Dict[str, Tuple[str, int]]]:
        """Snap each raw target to a module that was actually scanned.

        ``from .plan import TrialSpec`` recorded ``engine.plan.TrialSpec``;
        the longest scanned prefix (``engine.plan``) is the real edge.
        Targets with no scanned prefix (unresolvable) are dropped.
        """
        resolved: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for source, targets in self._edges.items():
            out = resolved.setdefault(source, {})
            for target, where in targets.items():
                parts = target.split(".")
                while parts:
                    name = ".".join(parts)
                    if name in self._modules:
                        if name != source:
                            out.setdefault(name, where)
                        break
                    parts.pop()
        return resolved

    def finalize(self) -> Iterator[Finding]:
        graph = self._resolved_edges()
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            cycle = sorted(component)
            first = cycle[0]
            # Anchor the finding at first's import of another cycle member.
            where = ("", 1)
            for target, location in graph.get(first, {}).items():
                if target in component:
                    where = location
                    break
            path, line = where
            yield Finding(
                rule=self.id,
                path=path or f"{first.replace('.', '/')}.py",
                line=line,
                col=1,
                message="import cycle: " + " -> ".join(cycle + [cycle[0]]),
                hint=self.hint,
            )


def _strongly_connected(
    graph: Dict[str, Dict[str, Tuple[str, int]]]
) -> List[Set[str]]:
    """Tarjan's algorithm, iterative (no recursion-limit surprises)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []
    counter = [0]

    for start in sorted(graph):
        if start in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (start, iter(sorted(graph.get(start, ()))))
        ]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in graph:
                    continue
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(graph.get(successor, ()))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components
