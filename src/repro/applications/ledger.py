"""A replicated log (state-machine replication) on top of multivalued BA.

The paper's §1 argues that fixed-round protocols are preferable "when used
as building blocks in larger protocol contexts" because they terminate
*simultaneously* — sequential composition then needs no re-synchronization
gadget (Lindell et al.; Cohen et al.).  This module is that larger
context: a totally-ordered command log, one multivalued BA instance per
slot, run back to back.  Because every slot's BA finishes all honest
replicas in the same round, slot ``k + 1`` starts in lockstep at every
replica — the composition is free, which is exactly the property the
paper's protocols are designed to provide.

Usage::

    program = lambda ctx, cmds: replicated_log_program(
        ctx, cmds, num_slots=3, kappa=8, regime="one_third")
    result = run_protocol(program, per_replica_command_queues, max_faulty=t)
    # result.outputs[i] is replica i's ordered log (identical across
    # honest replicas)

Each replica proposes its oldest not-yet-ordered command for the next
slot; a slot where no proposal wins commits the ``no_op`` marker.  A
command ordered in an earlier slot is removed from the local queue, so
honest replicas' commands eventually appear (once proposals align) without
any leader.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..core.ba import ba_one_half_program, ba_one_third_program
from ..core.turpin_coan import multivalued_ba_program
from ..network.party import Context
from ..proxcensus.proxcast import proxcast_program

__all__ = ["NO_OP", "replicated_log_program", "rounds_per_slot"]

NO_OP = ("no-op",)


def rounds_per_slot(kappa: int, regime: str, proposer: str = "local") -> int:
    """Rounds one log slot costs: (proposal proxcast +) lift + binary BA."""
    from ..core.ba import rounds_one_half, rounds_one_third

    if regime == "one_third":
        base = 2 + rounds_one_third(kappa)
    elif regime == "one_half":
        base = 3 + rounds_one_half(kappa)
    else:
        raise ValueError(f"unknown regime {regime!r}")
    if proposer == "rotating":
        base += 2  # the 3-slot proxcast of the slot leader's command
    elif proposer != "local":
        raise ValueError(f"unknown proposer policy {proposer!r}")
    return base


def replicated_log_program(
    ctx: Context,
    commands: Sequence[Any],
    num_slots: int,
    kappa: int = 8,
    regime: str = "one_third",
    proposer: str = "local",
):
    """Party program: order ``num_slots`` commands; returns the log.

    ``commands`` is this replica's local client-command queue (any
    term-encodable values).  The returned log is a list of length
    ``num_slots`` whose entries are committed commands or :data:`NO_OP`.

    ``proposer`` selects the per-slot proposal policy:

    * ``"local"`` — every replica proposes its own oldest pending command;
      a slot commits only when proposals line up (leaderless, cheap);
    * ``"rotating"`` — slot ``k``'s leader (replica ``k mod n``) proxcasts
      its oldest pending command (+2 rounds, 3-slot proxcast of
      Appendix A) and everyone feeds the graded result into the BA: an
      honest leader's command always commits; a Byzantine leader costs at
      worst a no-op slot, never a fork.
    """
    if num_slots < 1:
        raise ValueError("need at least one slot")
    if regime == "one_third":
        if 3 * ctx.max_faulty >= ctx.num_parties:
            raise ValueError("regime 'one_third' requires t < n/3")
        binary_ba = lambda c, b: ba_one_third_program(c, b, kappa)
    elif regime == "one_half":
        if 2 * ctx.max_faulty >= ctx.num_parties:
            raise ValueError("regime 'one_half' requires t < n/2")
        binary_ba = lambda c, b: ba_one_half_program(c, b, kappa)
    else:
        raise ValueError(f"unknown regime {regime!r}")

    if proposer not in ("local", "rotating"):
        raise ValueError(f"unknown proposer policy {proposer!r}")

    pending: List[Any] = list(commands)
    log: List[Any] = []
    for slot in range(num_slots):
        slot_ctx = ctx.subsession(f"slot{slot}")
        if proposer == "rotating":
            leader = slot % ctx.num_parties
            own = pending[0] if pending else NO_OP
            relayed = yield from proxcast_program(
                slot_ctx.subsession("prop"), own, slots=3, dealer=leader,
                default=NO_OP,
            )
            proposal = relayed.value if relayed.grade >= 1 else NO_OP
        else:
            proposal = pending[0] if pending else NO_OP
        decided = yield from multivalued_ba_program(
            slot_ctx, proposal, binary_ba, regime=regime, default=NO_OP,
        )
        log.append(decided)
        # A committed command is consumed everywhere it is queued, so it
        # is never proposed (hence never ordered) twice by honest replicas.
        if decided in pending:
            pending.remove(decided)
    return log
