"""Application-level constructions built on the BA core."""

from .ledger import NO_OP, replicated_log_program, rounds_per_slot

__all__ = ["NO_OP", "replicated_log_program", "rounds_per_slot"]
