"""Closed-form predictions from the paper, used as benchmark baselines.

Every measured quantity in ``benchmarks/`` is compared against the value
this module predicts; EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

__all__ = [
    "ProtocolTheory",
    "PROTOCOLS",
    "rounds_for_error",
    "error_for_rounds",
    "per_iteration_failure",
    "efficiency_comparison_rows",
]


@dataclass(frozen=True)
class ProtocolTheory:
    """Closed forms for one iterated fixed-round BA protocol.

    An *iterated* protocol runs identical Feldman–Micali-style iterations:
    each takes ``iteration_rounds`` rounds and fails with probability
    ``1/(iteration_slots - 1)``, so it gains
    ``log2(iteration_slots - 1)`` bits of error exponent per iteration.
    """

    name: str
    resilience: str                 # "n/3" or "n/2"
    paper_ref: str
    iteration_rounds: int
    iteration_slots: int

    @property
    def bits_per_iteration(self) -> int:
        """Error-exponent bits gained per iteration: log2(s - 1)."""
        return (self.iteration_slots - 1).bit_length() - 1

    def rounds(self, kappa: int) -> int:
        """Rounds to reach target error 2^-kappa."""
        iterations = math.ceil(kappa / self.bits_per_iteration)
        return iterations * self.iteration_rounds

    def error_bits(self, rounds: int) -> int:
        """Error exponent achieved within a round budget (bits of 2^-x)."""
        iterations = rounds // self.iteration_rounds
        return iterations * self.bits_per_iteration


class _OneThirdTheory(ProtocolTheory):
    """The t < n/3 protocol is special: a *single* iteration whose slot
    count grows with kappa (``s = 2^kappa + 1``; kappa Proxcensus rounds
    plus one coin round)."""

    def rounds(self, kappa: int) -> int:
        return kappa + 1

    def error_bits(self, rounds: int) -> int:
        return max(0, rounds - 1)


PROTOCOLS: Dict[str, ProtocolTheory] = {
    "ours_one_third": _OneThirdTheory(
        name="ours_one_third",
        resilience="n/3",
        paper_ref="Corollary 2 (t<n/3): kappa+1 rounds, single coin",
        iteration_rounds=0,
        iteration_slots=0,  # unused: dedicated formulas above
    ),
    "ours_one_half": ProtocolTheory(
        name="ours_one_half",
        resilience="n/2",
        paper_ref="Corollary 2 (t<n/2): 3*kappa/2 rounds (Prox_5, coin || r3)",
        iteration_rounds=3,
        iteration_slots=5,
    ),
    "feldman_micali": ProtocolTheory(
        name="feldman_micali",
        resilience="n/3",
        paper_ref="FM fixed-round variant [11]: 2*kappa rounds",
        iteration_rounds=2,
        iteration_slots=3,
    ),
    "micali_vaikuntanathan": ProtocolTheory(
        name="micali_vaikuntanathan",
        resilience="n/2",
        paper_ref="MV [18]: 2*kappa rounds (2-round GC, coin || r2)",
        iteration_rounds=2,
        iteration_slots=3,
    ),
}


def per_iteration_failure(slots: int) -> Fraction:
    """Theorem 1: one iteration fails with probability at most 1/(s-1)."""
    if slots < 2:
        raise ValueError("need at least 2 slots")
    return Fraction(1, slots - 1)


def rounds_for_error(protocol: str, kappa: int) -> int:
    """Rounds ``protocol`` needs for target error ``2^-kappa``."""
    return PROTOCOLS[protocol].rounds(kappa)


def error_for_rounds(protocol: str, rounds: int) -> int:
    """Error exponent (bits) ``protocol`` reaches within ``rounds``."""
    return PROTOCOLS[protocol].error_bits(rounds)


def efficiency_comparison_rows(kappas: List[int]) -> List[dict]:
    """The §3.5 efficiency-comparison table, one row per kappa."""
    rows = []
    for kappa in kappas:
        fm = rounds_for_error("feldman_micali", kappa)
        ours13 = rounds_for_error("ours_one_third", kappa)
        mv = rounds_for_error("micali_vaikuntanathan", kappa)
        ours12 = rounds_for_error("ours_one_half", kappa)
        rows.append(
            {
                "kappa": kappa,
                "ours_one_third": ours13,
                "feldman_micali": fm,
                "ours_one_half": ours12,
                "micali_vaikuntanathan": mv,
                "speedup_one_third": Fraction(fm, ours13),
                "speedup_one_half": Fraction(mv, ours12),
            }
        )
    return rows
