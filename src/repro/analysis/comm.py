"""Exact communication predictions for honest (passive-adversary) runs.

The big-O claims of TAB-COMM have exact constants in this implementation:
every multi-party protocol round is a full broadcast (n messages from each
of the n parties), the coin adds one broadcast round, and parallel
composition merges channels into single messages.  These predictors state
the exact honest message counts; the test suite and the communication
benchmark assert measured == predicted, which pins down the constant in
``O(r n²)`` instead of hand-waving it.
"""

from __future__ import annotations

import math

__all__ = [
    "messages_prox_one_third",
    "messages_prox_linear_half",
    "messages_prox_quadratic_half",
    "messages_proxcast",
    "messages_ba_one_third",
    "messages_ba_one_half",
    "messages_feldman_micali",
    "messages_mv",
]


def messages_prox_one_third(n: int, rounds: int) -> int:
    """``r`` broadcast rounds: exactly ``r · n²`` messages."""
    return rounds * n * n


def messages_prox_linear_half(n: int, rounds: int) -> int:
    """Same shape: every party broadcasts every round."""
    return rounds * n * n


def messages_prox_quadratic_half(n: int, rounds: int) -> int:
    """Same shape: every party broadcasts every round."""
    return rounds * n * n


def messages_proxcast(n: int, slots: int) -> int:
    """Round 1 is dealer-only (n messages); rounds 2..s-1 full broadcasts."""
    return n + (slots - 2) * n * n


def messages_ba_one_third(n: int, kappa: int) -> int:
    """κ Proxcensus rounds + 1 coin round, all full broadcasts."""
    return (kappa + 1) * n * n


def messages_ba_one_half(n: int, kappa: int) -> int:
    """⌈κ/2⌉ iterations × 3 rounds; the coin shares round 3's messages."""
    return math.ceil(kappa / 2) * 3 * n * n


def messages_feldman_micali(n: int, kappa: int) -> int:
    """κ iterations × (1 GC round + 1 coin round)."""
    return kappa * 2 * n * n


def messages_mv(n: int, kappa: int) -> int:
    """κ iterations × 2 rounds (coin inside round 2)."""
    return kappa * 2 * n * n
