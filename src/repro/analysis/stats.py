"""Small statistics helpers for Monte-Carlo measurements.

The error-probability experiments estimate Bernoulli rates from a few
hundred trials; the benchmarks and EXPERIMENTS.md report Wilson score
intervals so "measured ≈ bound" claims carry explicit uncertainty.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["wilson_interval", "within_interval", "format_rate"]

_Z95 = 1.959963984540054  # 95% two-sided normal quantile


def wilson_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at rates near 0 or 1 —
    which is exactly where our failure probabilities live.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not (0 <= successes <= trials):
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denominator = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def within_interval(bound: float, successes: int, trials: int) -> bool:
    """Is ``bound`` inside the 95% Wilson interval of the estimate?"""
    low, high = wilson_interval(successes, trials)
    return low <= bound <= high


def format_rate(successes: int, trials: int) -> str:
    """``"0.2500 [0.2031, 0.3034]"`` — estimate with 95% interval."""
    low, high = wilson_interval(successes, trials)
    return f"{successes / trials:.4f} [{low:.4f}, {high:.4f}]"
