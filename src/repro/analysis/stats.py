"""Small statistics helpers for Monte-Carlo measurements.

The error-probability experiments estimate Bernoulli rates from a few
hundred trials; the benchmarks and EXPERIMENTS.md report Wilson score
intervals so "measured ≈ bound" claims carry explicit uncertainty.

:class:`SequentialEstimate` is the streaming form: it accumulates
hit/trial counts batch by batch and tests the running Wilson interval
against a target bound, which is what lets the adaptive engine
(:mod:`repro.engine.adaptive`) stop a configuration as soon as the
statistics are decided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "SequentialEstimate",
    "wilson_interval",
    "within_interval",
    "format_rate",
]

_Z95 = 1.959963984540054  # 95% two-sided normal quantile
# 99.5% two-sided quantile: the default *decision* interval for
# sequential early stopping, where every batch is another look at the
# data and 95% intervals would inflate the false-exclusion rate.
_Z995 = 2.807033768343811


def wilson_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at rates near 0 or 1 —
    which is exactly where our failure probabilities live.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not (0 <= successes <= trials):
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denominator = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def within_interval(bound: float, successes: int, trials: int) -> bool:
    """Is ``bound`` inside the 95% Wilson interval of the estimate?"""
    low, high = wilson_interval(successes, trials)
    return low <= bound <= high


def format_rate(successes: int, trials: int) -> str:
    """``"0.2500 [0.2031, 0.3034]"`` — estimate with 95% interval."""
    low, high = wilson_interval(successes, trials)
    return f"{successes / trials:.4f} [{low:.4f}, {high:.4f}]"


@dataclass
class SequentialEstimate:
    """A streaming Bernoulli estimate tested against a target ``bound``.

    Feed hit/trial counts in with :meth:`update` (batches) or
    :meth:`observe` (single trials); :attr:`status` classifies the
    running Wilson interval against the bound:

    ``"below"``
        the whole interval lies strictly under the bound — the measured
        rate is significantly better than the bound;
    ``"above"``
        the whole interval lies strictly over the bound — the bound is
        violated (requires at least ``min_hits`` observed hits, so a
        violation claim for a rare event never rests on one or two
        occurrences that happened to cluster early in the sample);
    ``"contained"``
        the bound sits inside the interval *and* the interval has
        narrowed to at most ``precision`` — the estimate confidently
        matches the bound (the tight-adversary case, where the bound is
        realized exactly and exclusion never happens);
    ``"undecided"``
        none of the above yet (always the case below ``min_trials``).

    :attr:`decided` is the early-stopping predicate: any status other
    than ``"undecided"``.  :attr:`accepted` is the accept/reject verdict
    against the bound — accept unless the interval proves the rate is
    above it — and is well-defined whether or not the estimate is
    decided, so a fixed-budget run and an early-stopped run can be
    compared verdict-for-verdict.

    The classification is a pure function of the accumulated counts, so
    two estimates fed the same trials in any batching agree exactly —
    the property the adaptive runner's determinism rests on.
    """

    bound: float
    z: float = _Z95
    min_trials: int = 16
    min_hits: int = 5
    precision: Optional[float] = None
    hits: int = 0
    trials: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.bound <= 1.0):
            raise ValueError(f"bound must lie in [0, 1], got {self.bound}")
        if self.min_trials < 1:
            raise ValueError("min_trials must be positive")
        if self.min_hits < 1:
            raise ValueError("min_hits must be positive")
        if self.precision is None:
            # Width at most the bound itself: the rate is pinned to
            # ±bound/2 around the interval center with the bound inside
            # — a real statement about tightness, yet reachable in a
            # few dozen to a few hundred trials for the bounds the
            # sweeps test (width shrinks as 1/sqrt(n), so demanding
            # much less than the bound costs quadratically more trials).
            self.precision = self.bound
        if self.precision < 0:
            raise ValueError("precision must be non-negative")
        if self.trials < 0 or not (0 <= self.hits <= self.trials):
            raise ValueError(
                f"need 0 <= hits <= trials, got hits={self.hits}, "
                f"trials={self.trials}"
            )

    def observe(self, hit: bool) -> None:
        """Record a single trial."""
        self.update(1 if hit else 0, 1)

    def update(self, hits: int, trials: int) -> None:
        """Fold in a batch of ``trials`` trials, ``hits`` of them hits."""
        if trials < 0 or not (0 <= hits <= trials):
            raise ValueError(
                f"need 0 <= hits <= trials, got hits={hits}, trials={trials}"
            )
        self.hits += hits
        self.trials += trials

    @property
    def rate(self) -> float:
        """Point estimate (0.0 before any trial)."""
        return self.hits / self.trials if self.trials else 0.0

    @property
    def interval(self) -> Tuple[float, float]:
        """Running Wilson interval; vacuous ``(0, 1)`` before any trial."""
        if self.trials == 0:
            return (0.0, 1.0)
        return wilson_interval(self.hits, self.trials, self.z)

    @property
    def width(self) -> float:
        """Interval width — the adaptive runner's "noisiest config" key."""
        low, high = self.interval
        return high - low

    @property
    def status(self) -> str:
        if self.trials < self.min_trials:
            return "undecided"
        low, high = self.interval
        if high < self.bound:
            return "below"
        # Exclusion *above* additionally requires ``min_hits`` observed
        # hits: for small bounds a handful of rare events clustered in
        # an early prefix of the sample can push the Wilson low end over
        # the bound even though the long-run rate respects it, and a
        # claim of violation should rest on more than a couple of
        # occurrences (the classic np >= 5 evidence floor).
        if low > self.bound and self.hits >= self.min_hits:
            return "above"
        if low <= self.bound and high - low <= self.precision:
            return "contained"
        return "undecided"

    @property
    def decided(self) -> bool:
        """Early-stopping predicate: the interval has settled vs the bound."""
        return self.status != "undecided"

    @property
    def accepted(self) -> bool:
        """Accept/reject vs the bound: reject only on proven violation."""
        low, _high = self.interval
        return not (
            self.trials >= self.min_trials
            and self.hits >= self.min_hits
            and low > self.bound
        )
