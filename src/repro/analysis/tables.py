"""Programmatic regeneration of the paper's tables and figures.

Each function returns structured data *derived from the implementation*
(not hard-coded copies of the paper), so that the benchmarks genuinely
check the implementation against the paper:

* :func:`table1_prox5_conditions` — Table 1 (slot conditions of the
  3-round ``Prox_5`` for t < n/2), from
  :func:`repro.proxcensus.linear_half.grade_conditions`.
* :func:`table2_prox15_conditions` — Table 2 (slot conditions of the
  quadratic ``Prox_15``), from
  :func:`repro.proxcensus.quadratic_half.condition_table`.
* :func:`fig2_expansion_conditions` — Fig. 2 (one-round expansion
  ``Prox_s → Prox_{2s-1}`` slot conditions), from the expansion rule.
* :func:`fig3_extraction_matrix` — Fig. 3 (the extraction cut), from
  :func:`repro.core.extraction.extract`.

The corresponding ``benchmarks/`` modules print these next to the paper's
expected values and assert equality.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.extraction import coin_range, extract
from ..proxcensus.base import max_grade, slot_label
from ..proxcensus.linear_half import grade_conditions
from ..proxcensus.quadratic_half import condition_table
from .report import format_matrix

__all__ = [
    "binary_slot_labels",
    "table1_prox5_conditions",
    "table2_prox15_conditions",
    "fig2_expansion_conditions",
    "fig3_extraction_matrix",
    "render_table1",
    "render_table2",
    "render_fig3",
]


def binary_slot_labels(slots: int) -> List[Tuple[Optional[int], int]]:
    """Slot labels left to right, e.g. ``(0,2) (0,1) (⊥,0) (1,1) (1,2)``."""
    return [slot_label(position, slots) for position in range(slots)]


def table1_prox5_conditions(rounds: int = 3) -> Dict[Tuple[int, int], Dict[str, int]]:
    """Table 1: for each binary slot ``(v, g)`` with ``g >= 1``, the three
    deadlines of the linear t < n/2 Proxcensus (Σ on v, no Σ on the other
    value, Ω on v)."""
    conditions = grade_conditions(rounds)
    table = {}
    for value in (0, 1):
        for grade, deadline in conditions.items():
            table[(value, grade)] = dict(deadline)
    return table


def render_table1(rounds: int = 3) -> str:
    """Human-readable Table 1: rows are rounds, columns slots."""
    slots = 2 * rounds - 1
    labels = binary_slot_labels(slots)
    conditions = table1_prox5_conditions(rounds)
    cells = []
    for round_index in range(1, rounds + 1):
        row = []
        for value, grade in labels:
            if value is None or grade == 0:
                row.append("?")
                continue
            deadline = conditions[(value, grade)]
            tokens = []
            if deadline["sigma_by"] == round_index:
                tokens.append(f"Σ{value}")
            if deadline["omega_by"] == round_index:
                tokens.append(f"Ω{value}")
            if deadline["no_other_by"] == round_index:
                tokens.append(f"¬Σ{1 - value}")
            row.append(" ".join(tokens) if tokens else "?")
        cells.append(row)
    return format_matrix(
        [f"round {i}" for i in range(1, rounds + 1)],
        [_label_str(l) for l in labels],
        cells,
        corner="deadline",
    )


def table2_prox15_conditions(rounds: int = 6) -> Dict[Tuple[int, int], Dict[int, int]]:
    """Table 2: per binary slot ``(v, g)``, the map round → required Ω-index
    for the quadratic Proxcensus."""
    per_grade = condition_table(rounds)
    table = {}
    for value in (0, 1):
        for grade, per_round in per_grade.items():
            table[(value, grade)] = dict(per_round)
    return table


def render_table2(rounds: int = 6) -> str:
    """Human-readable Table 2: rows rounds 1..r, columns slots, cells Ω_k."""
    slots = 3 + (rounds - 3) * (rounds - 2)
    labels = binary_slot_labels(slots)
    per_grade = condition_table(rounds)
    cells = []
    for round_index in range(1, rounds + 1):
        row = []
        for value, grade in labels:
            if value is None or grade == 0:
                row.append("?")
                continue
            omega_index = per_grade[grade].get(round_index)
            row.append(f"Ω{omega_index}" if omega_index is not None else "?")
        cells.append(row)
    return format_matrix(
        [f"round {i}" for i in range(1, rounds + 1)],
        [_label_str(l) for l in labels],
        cells,
        corner="",
    )


def fig2_expansion_conditions(inner_slots: int) -> List[Tuple[Tuple[Any, int], str]]:
    """Fig. 2: conditions for each slot of ``Prox_{2s-1}`` after expanding a
    ``Prox_s`` — as ``((value-symbol, new_grade), condition-string)`` pairs,
    highest slot first.

    The strings are generated from the same case analysis the implementation
    executes (:func:`repro.proxcensus.one_third._expand_once`).
    """
    grades = max_grade(inner_slots)
    parity = inner_slots % 2
    rows: List[Tuple[Tuple[Any, int], str]] = []
    rows.append(
        (("z", 2 * grades + 1 - parity), f"|S(z,{grades})| >= n-t")
    )
    for band in range(grades - 1, parity - 1, -1):
        rows.append(
            (
                ("z", 2 * band + 2 - parity),
                f"|S(z,{band}) u S(z,{band + 1})| >= n-t  and  "
                f"|S(z,{band + 1})| >= n-2t",
            )
        )
        rows.append(
            (
                ("z", 2 * band + 1 - parity),
                f"|S(z,{band}) u S(z,{band + 1})| >= n-t  and  "
                f"|S(z,{band})| >= n-2t",
            )
        )
    if parity == 1:
        rows.append(
            (("z", 1), "|S(grade 0) u S(z,1)| >= n-t  and  |S(z,1)| >= n-2t")
        )
    rows.append((("any", 0), "otherwise (default)"))
    return rows


def fig3_extraction_matrix(slots: int = 10) -> List[List[int]]:
    """Fig. 3: the extraction outcome for every (slot, coin) pair.

    Row order is slot position left to right; columns are coin values
    ``1..s-1``.
    """
    low, high = coin_range(slots)
    matrix = []
    for position in range(slots):
        value, grade = slot_label(position, slots)
        if value is None:
            # central slot of odd s: both value interpretations agree
            value, grade = 0, 0
        matrix.append(
            [extract(value, grade, coin, slots) for coin in range(low, high + 1)]
        )
    return matrix


def render_fig3(slots: int = 10) -> str:
    """Human-readable Fig. 3: slots x coin values outcome matrix."""
    labels = [_label_str(l) for l in binary_slot_labels(slots)]
    matrix = fig3_extraction_matrix(slots)
    low, high = coin_range(slots)
    return format_matrix(
        labels, [f"c={c}" for c in range(low, high + 1)], matrix, corner="slot"
    )


def _label_str(label: Tuple[Optional[int], int]) -> str:
    value, grade = label
    return f"(⊥,{grade})" if value is None else f"({value},{grade})"
