"""Monte-Carlo experiment drivers (seeded, deterministic).

These are the measurement harnesses behind the benchmarks: they run real
simulated executions and aggregate rounds / messages / signatures /
agreement outcomes.  Two details matter for sound measurements:

* key material is dealt **once** per setup and reused across trials — key
  generation must not pollute protocol measurements; and
* every trial gets a **distinct session tag**.  Coin values are
  deterministic functions of (key material, session, index) — reusing the
  session would replay identical coins across trials and silently destroy
  the Monte-Carlo variance.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..adversary.base import Adversary
from ..crypto.keys import CryptoSuite
from ..network.party import ProgramFactory
from ..network.simulator import ExecutionResult, SyncSimulator
from ..proxcensus.base import slot_index

__all__ = [
    "ExperimentSetup",
    "run_trials",
    "disagreement_rate",
    "measure_execution",
    "slot_occupancy",
]

# Builds a fresh adversary per trial (adversaries are stateful) — or None
# for a passive run.
AdversaryFactory = Callable[[], Optional[Adversary]]


@dataclass
class ExperimentSetup:
    """A reusable (n, t, dealt keys) configuration for repeated trials."""

    num_parties: int
    max_faulty: int
    seed: int = 0
    crypto: Optional[CryptoSuite] = None

    def __post_init__(self) -> None:
        if self.crypto is None:
            self.crypto = CryptoSuite.ideal(
                self.num_parties, self.max_faulty, random.Random(self.seed + 0x5E7)
            )

    def run(
        self,
        factory: ProgramFactory,
        inputs: Sequence[Any],
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        session: str = "exp",
    ) -> ExecutionResult:
        """Run one execution on this setup's dealt keys."""
        simulator = SyncSimulator(
            num_parties=self.num_parties,
            max_faulty=self.max_faulty,
            crypto=self.crypto,
            adversary=adversary,
            seed=seed,
            session=session,
        )
        return simulator.run(factory, inputs)


def run_trials(
    setup: ExperimentSetup,
    factory: ProgramFactory,
    inputs: Sequence[Any],
    trials: int,
    adversary_factory: Optional[AdversaryFactory] = None,
    seed: int = 0,
) -> List[ExecutionResult]:
    """Run ``trials`` executions with per-trial sessions and seeds."""
    results = []
    for trial in range(trials):
        adversary = adversary_factory() if adversary_factory else None
        results.append(
            setup.run(
                factory,
                inputs,
                adversary=adversary,
                seed=seed * 1_000_003 + trial,
                session=f"exp{seed}/{trial}",
            )
        )
    return results


def disagreement_rate(results: Sequence[ExecutionResult]) -> float:
    """Fraction of executions whose honest parties did not all agree."""
    if not results:
        raise ValueError("no results")
    failures = sum(1 for result in results if not result.honest_agree())
    return failures / len(results)


def measure_execution(
    setup: ExperimentSetup,
    factory: ProgramFactory,
    inputs: Sequence[Any],
    adversary: Optional[Adversary] = None,
    seed: int = 0,
) -> Dict[str, int]:
    """Rounds / message / signature counts of a single execution."""
    result = setup.run(factory, inputs, adversary=adversary, seed=seed)
    return {
        "rounds": result.metrics.rounds,
        "honest_messages": result.metrics.honest_messages,
        "total_messages": result.metrics.total_messages,
        "honest_signatures": result.metrics.honest_signatures,
        "total_signatures": result.metrics.total_signatures,
    }


def slot_occupancy(
    setup: ExperimentSetup,
    prox_factory: ProgramFactory,
    slots: int,
    inputs: Sequence[Any],
    trials: int,
    adversary_factory: Optional[AdversaryFactory] = None,
    seed: int = 0,
) -> Counter:
    """Histogram of honest slot positions over many Proxcensus runs.

    Used to reproduce Fig. 1: honest outputs always occupy at most two
    *adjacent* positions per execution; aggregated counts show where the
    adversary manages to push them.
    """
    occupancy: Counter = Counter()
    for result in run_trials(
        setup, prox_factory, inputs, trials, adversary_factory, seed
    ):
        for output in result.honest_outputs.values():
            value, grade = output
            if value not in (0, 1):
                value, grade = 0, 0
            occupancy[slot_index(value, grade, slots)] += 1
    return occupancy
