"""Plain-text table rendering for benchmarks and examples.

No third-party table library is available offline, and the output must be
diff-stable (it is captured into EXPERIMENTS.md), so this is a tiny,
deterministic fixed-width renderer.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_matrix"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as a fixed-width ASCII table with a header rule."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            if index >= len(widths):
                widths.append(len(value))
            else:
                widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    cells: Sequence[Sequence[Any]],
    corner: str = "",
) -> str:
    """Render a labelled matrix (used for the paper's condition tables)."""
    headers = [corner] + list(column_labels)
    rows = [[label] + list(row) for label, row in zip(row_labels, cells)]
    return format_table(headers, rows)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
