"""Benchmark regression diffing for ``BENCH_engine.json`` artifacts.

``repro bench --json`` writes a machine-readable timing artifact; the
committed copy at the repo root is the performance baseline.  This module
compares a freshly measured artifact against that baseline and fails on
real slowdowns, so CI catches a perf regression the same way it catches a
correctness one.

The comparison is deliberately rate-based, not seconds-based: wall
seconds move with the machine, but a *ratio* of per-core trial rates
measured in one CI job (baseline re-measured vs candidate, or an old
artifact vs a new one on comparable hardware) is meaningful.  Rates
compare per metric:

* ``serial`` — fixed-sweep trials per second on the 1-worker object path
  (``plan.trials / serial_seconds``);
* ``parallel_per_core`` — pooled trials per second per worker
  (``plan.trials / (parallel_seconds × workers)``), when both artifacts
  ran a parallel leg;
* ``vector`` — trials per second on the serial vector backend
  (``plan.trials / vector_seconds``), when both artifacts recorded one;
* ``figure:<name>`` — one vector-rate metric per entry of the
  ``--figures`` leg (``figures.<name>.trials / vector_seconds``), when
  both artifacts measured that figure.

Metrics present in only one artifact are reported as ``skipped`` rather
than failed — the committed baseline predates some keys (older artifacts
have no ``vector_seconds`` or ``figures``), and a missing leg must not
break the gate.
Everything here is pure stdlib; ``scripts/bench_diff.py`` is the CI
entry point and ``repro bench --compare PATH`` runs the same check
inline after a measurement.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_THRESHOLD",
    "compare_benchmarks",
    "diff_bench_files",
    "format_bench_report",
    "load_bench",
]

#: Fail on >25% per-core rate loss.  Wide enough to absorb CI machine
#: noise on same-job comparisons, tight enough to catch a real 2x cliff.
DEFAULT_THRESHOLD = 0.25


def load_bench(path: str) -> Dict[str, Any]:
    """Read one ``BENCH_*.json`` artifact.

    Artifacts written since the ``schema`` field landed declare a
    ``repro-bench*`` schema and anything else is rejected here — a
    wrong-family JSON (a metrics document, a telemetry digest) must
    fail loudly, not diff as all-skipped.  Artifacts *without* the
    field are committed history and load fine; likewise top-level keys
    this reader does not know are tolerated (``compare_benchmarks``
    only ever reads the keys it understands), so newer producers never
    break the gate.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: benchmark artifact must be a JSON object")
    schema = payload.get("schema")
    if schema is not None and not (
        isinstance(schema, str) and schema.startswith("repro-bench")
    ):
        raise ValueError(
            f"{path}: schema {schema!r} is not a repro-bench artifact"
        )
    return payload


def _trials(payload: Dict[str, Any]) -> Optional[int]:
    plan = payload.get("plan")
    if isinstance(plan, dict):
        trials = plan.get("trials")
        if isinstance(trials, int) and trials > 0:
            return trials
    return None


def _rate(trials: Optional[int], seconds: Any, cores: Any = 1) -> Optional[float]:
    """Per-core trials/second, or ``None`` when the leg wasn't recorded."""
    if trials is None or not isinstance(seconds, (int, float)) or seconds <= 0:
        return None
    if not isinstance(cores, int) or cores < 1:
        return None
    return trials / (seconds * cores)


def _metric_rates(payload: Dict[str, Any]) -> Dict[str, Optional[float]]:
    trials = _trials(payload)
    rates = {
        "serial": _rate(trials, payload.get("serial_seconds")),
        "parallel_per_core": _rate(
            trials, payload.get("parallel_seconds"), payload.get("workers")
        ),
        "vector": _rate(trials, payload.get("vector_seconds")),
    }
    figures = payload.get("figures")
    if isinstance(figures, dict):
        for name, entry in sorted(figures.items()):
            if not isinstance(entry, dict):
                continue
            figure_trials = entry.get("trials")
            if not isinstance(figure_trials, int) or figure_trials <= 0:
                figure_trials = None
            rates[f"figure:{name}"] = _rate(
                figure_trials, entry.get("vector_seconds")
            )
    return rates


def compare_benchmarks(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, Any]:
    """Diff two benchmark artifacts; flag per-core rate regressions.

    A metric regresses when the candidate's rate falls more than
    ``threshold`` (a fraction, default 0.25) below the baseline's.
    Metrics missing from either artifact are skipped, never failed —
    older baselines legitimately lack newer keys.  Returns a report dict
    with per-metric rows and an overall ``ok`` verdict; speedups are
    never flagged.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    base_rates = _metric_rates(baseline)
    cand_rates = _metric_rates(candidate)
    core = ["serial", "parallel_per_core", "vector"]
    names = core + sorted(
        (set(base_rates) | set(cand_rates)) - set(core)
    )
    metrics: List[Dict[str, Any]] = []
    regressed: List[str] = []
    for name in names:
        base = base_rates.get(name)
        cand = cand_rates.get(name)
        row: Dict[str, Any] = {
            "metric": name,
            "baseline_rate": round(base, 3) if base is not None else None,
            "candidate_rate": round(cand, 3) if cand is not None else None,
        }
        if base is None or cand is None:
            row["status"] = "skipped"
        else:
            ratio = cand / base
            row["ratio"] = round(ratio, 4)
            if ratio < 1.0 - threshold:
                row["status"] = "regressed"
                regressed.append(name)
            else:
                row["status"] = "ok"
        metrics.append(row)
    compared = [row for row in metrics if row["status"] != "skipped"]
    return {
        "threshold": threshold,
        "metrics": metrics,
        "compared": len(compared),
        "regressed": regressed,
        # No overlapping metric at all means the artifacts are not
        # comparable — that is a gate failure, not a silent pass.
        "ok": bool(compared) and not regressed,
    }


def diff_bench_files(
    baseline_path: str,
    candidate_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, Any]:
    """:func:`compare_benchmarks` over two artifact files."""
    report = compare_benchmarks(
        load_bench(baseline_path), load_bench(candidate_path), threshold
    )
    report["baseline_path"] = baseline_path
    report["candidate_path"] = candidate_path
    return report


def format_bench_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`compare_benchmarks` report."""
    lines = []
    if "baseline_path" in report:
        lines.append(
            f"bench diff: {report['candidate_path']} "
            f"vs baseline {report['baseline_path']} "
            f"(threshold {report['threshold']:.0%})"
        )
    else:
        lines.append(f"bench diff (threshold {report['threshold']:.0%})")
    for row in report["metrics"]:
        if row["status"] == "skipped":
            lines.append(f"  {row['metric']:30s}: skipped (leg not in both)")
            continue
        lines.append(
            f"  {row['metric']:30s}: {row['baseline_rate']:10.1f} -> "
            f"{row['candidate_rate']:10.1f} trials/s/core "
            f"({row['ratio']:.2f}x)  {row['status'].upper()}"
        )
    if not report["compared"]:
        lines.append("  NOT COMPARABLE: no metric recorded in both artifacts")
    elif report["regressed"]:
        lines.append(
            f"  REGRESSION: {', '.join(report['regressed'])} "
            f"slower than baseline by more than {report['threshold']:.0%}"
        )
    else:
        lines.append("  OK: no per-core rate regression")
    return "\n".join(lines)
