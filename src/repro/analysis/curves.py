"""ASCII curve rendering for benchmark reports.

The benchmarks print tables; for decay curves (error vs κ) a tiny visual
helps the "shape" claims land.  No plotting library exists offline, so
this renders log-scale sparklines and bar charts with block characters —
deterministic, terminal-safe, snapshot-friendly.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["sparkline", "log_sparkline", "bar_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Map values linearly onto eight block heights."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if math.isclose(low, high):
        return _BLOCKS[0] * len(values)
    span = high - low
    return "".join(
        _BLOCKS[min(7, int((value - low) / span * 7.999))] for value in values
    )


def log_sparkline(values: Sequence[float], floor: float = 1e-6) -> str:
    """Sparkline in log scale — the right lens for 2^-κ decay curves.

    Zeros (measured "no failures") clamp to ``floor``.
    """
    return sparkline([math.log10(max(value, floor)) for value in values])


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars with labels, scaled to the max value."""
    if not rows:
        return ""
    peak = max(value for _label, value in rows) or 1.0
    label_width = max(len(label) for label, _value in rows)
    lines = []
    for label, value in rows:
        filled = int(round(value / peak * width))
        lines.append(
            f"{label.rjust(label_width)}  "
            f"{'█' * filled}{'·' * (width - filled)}  {value:g}{unit}"
        )
    return "\n".join(lines)
