"""Analysis layer: theory closed forms, paper-table regeneration, drivers."""

from .experiments import (
    ExperimentSetup,
    disagreement_rate,
    measure_execution,
    run_trials,
    slot_occupancy,
)
from .benchdiff import (
    compare_benchmarks,
    diff_bench_files,
    format_bench_report,
    load_bench,
)
from .curves import bar_chart, log_sparkline, sparkline
from .report import format_matrix, format_table
from .stats import (
    SequentialEstimate,
    format_rate,
    wilson_interval,
    within_interval,
)
from .tables import (
    binary_slot_labels,
    fig2_expansion_conditions,
    fig3_extraction_matrix,
    render_fig3,
    render_table1,
    render_table2,
    table1_prox5_conditions,
    table2_prox15_conditions,
)
from .theory import (
    PROTOCOLS,
    ProtocolTheory,
    efficiency_comparison_rows,
    error_for_rounds,
    per_iteration_failure,
    rounds_for_error,
)

__all__ = [
    "PROTOCOLS",
    "ExperimentSetup",
    "SequentialEstimate",
    "bar_chart",
    "log_sparkline",
    "sparkline",
    "ProtocolTheory",
    "binary_slot_labels",
    "compare_benchmarks",
    "diff_bench_files",
    "disagreement_rate",
    "format_bench_report",
    "load_bench",
    "efficiency_comparison_rows",
    "error_for_rounds",
    "fig2_expansion_conditions",
    "fig3_extraction_matrix",
    "format_matrix",
    "format_rate",
    "format_table",
    "measure_execution",
    "wilson_interval",
    "within_interval",
    "per_iteration_failure",
    "render_fig3",
    "render_table1",
    "render_table2",
    "rounds_for_error",
    "run_trials",
    "slot_occupancy",
    "table1_prox5_conditions",
    "table2_prox15_conditions",
]
