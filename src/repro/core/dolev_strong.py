"""Dolev–Strong authenticated broadcast (deterministic yardstick).

The classic ``t + 1``-round broadcast for any ``t < n`` [Dolev & Strong,
SIAM J. Comp. '83], included because (a) the paper's proxcast (Appendix A)
is "similar to Dolev–Strong broadcast with the difference that parties do
not add their signatures", so having both makes the comparison executable,
and (b) the ``t + 1`` lower bound for deterministic protocols is the very
motivation for randomized fixed-round BA — the efficiency benchmark plots
it as the deterministic reference series.

The protocol: the dealer signs its value; a party *extracts* a value ``v``
at the end of round ``k`` if it knows ``k`` distinct valid signatures on
``v`` including the dealer's.  A freshly extracted value (at most two —
two values already prove dealer equivocation) is co-signed and relayed in
the next round.  After round ``t + 1``, the output is the unique extracted
value, or a default.

:func:`dolev_strong_ba_program` lifts broadcast to BA the standard way —
``n`` parallel broadcasts of all inputs, then a local majority (``t < n/2``
needed for the majority rule to be meaningful; consistency holds for any
``t < n`` since all broadcast outcomes agree).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List

from ..network.messages import get_field
from ..network.party import Context, run_parallel

__all__ = ["dolev_strong_broadcast_program", "dolev_strong_ba_program"]

_KEY = "ds"


def _signed_message(ctx: Context, dealer: int, value: Any):
    return (_KEY, ctx.session, dealer, value)


def dolev_strong_broadcast_program(
    ctx: Context, value: Any, dealer: int, default: Any = 0
):
    """Broadcast in ``t + 1`` rounds; returns the agreed value.

    ``value`` is read by the dealer only.
    """
    n, t = ctx.num_parties, ctx.max_faulty
    scheme = ctx.crypto.plain
    if not (0 <= dealer < n):
        raise ValueError(f"dealer {dealer} out of range")

    # chains: value -> {signer: signature}, grown monotonically.
    chains: Dict[Any, Dict[int, Any]] = {}
    extracted: List[Any] = []       # insertion order; at most 2 relayed
    fresh: List[Any] = []           # extracted last round, to relay now

    def absorb(payload: Any) -> None:
        items = get_field(payload, _KEY)
        if not isinstance(items, (list, tuple)):
            return
        for item in items:
            if not (isinstance(item, (list, tuple)) and len(item) == 2):
                continue
            v, chain = item
            try:
                hash(v)
            except TypeError:
                continue
            if not isinstance(chain, (list, tuple)):
                continue
            collected = chains.setdefault(v, {})
            for entry in chain:
                if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                    continue
                signer, signature = entry
                if not isinstance(signer, int) or signer in collected:
                    continue
                if scheme.verify(signer, signature, _signed_message(ctx, dealer, v)):
                    collected[signer] = signature

    rounds = t + 1
    for round_index in range(1, rounds + 1):
        if round_index == 1:
            if ctx.party_id == dealer:
                signature = scheme.sign(dealer, _signed_message(ctx, dealer, value))
                outbox = ctx.broadcast({_KEY: [(value, [(dealer, signature)])]})
            else:
                outbox = None  # non-dealers are silent in round 1
        else:
            relayed = []
            for v in fresh:
                augmented = dict(chains[v])
                if ctx.party_id not in augmented:
                    augmented[ctx.party_id] = scheme.sign(
                        ctx.party_id, _signed_message(ctx, dealer, v)
                    )
                    chains[v] = augmented
                relayed.append((v, list(augmented.items())))
            outbox = ctx.broadcast({_KEY: relayed})
        inbox = yield outbox
        for payload in inbox.values():
            absorb(payload)
        fresh = []
        for v, collected in chains.items():
            if v in extracted:
                continue
            if dealer in collected and len(collected) >= round_index:
                extracted.append(v)
                if len(extracted) <= 2:
                    fresh.append(v)

    if len(extracted) == 1:
        return extracted[0]
    return default


def dolev_strong_ba_program(ctx: Context, value: Any, default: Any = 0):
    """Deterministic BA from ``n`` parallel Dolev–Strong broadcasts.

    ``t + 1`` rounds; output is the majority of broadcast outcomes (ties
    and absent majorities fall to ``default``).
    """
    programs = {
        f"bc{dealer}": dolev_strong_broadcast_program(
            ctx.subsession(f"ds{dealer}"), value, dealer, default
        )
        for dealer in range(ctx.num_parties)
    }
    results = yield from run_parallel(ctx, programs)
    tally = Counter(results.values())
    winner, count = max(tally.items(), key=lambda kv: (kv[1], repr(kv[0])))
    if count > ctx.num_parties // 2:
        return winner
    return default
