"""The extraction function (paper §3.4).

Extraction turns a Proxcensus output ``(b, g)`` and a coin ``c ∈ [1, s-1]``
into the iteration's output bit.  Pictorially (paper Fig. 3), the coin cuts
the row of ``s`` slots at one of the ``s - 1`` inter-slot boundaries;
parties left of the cut output 0, parties right of it output 1.

The paper's closed form, with ``G = ⌊(s-1)/2⌋`` and ``r = s mod 2``::

    f(b, g, c) = 1  iff  (b = 1 ∧ c ≤ g + G + 1 - r) ∨ (b = 0 ∧ c ≤ G - g)

which is equivalent to the geometric statement ``f = 1 iff slot ≥ c`` over
slot positions (:func:`repro.proxcensus.base.slot_index`); both forms are
implemented and property-tested against each other.

Because honest parties occupy two *adjacent* slots, exactly one coin value
splits them — hence the per-iteration disagreement probability ``1/(s-1)``
(Theorem 1), and hence BA error ``2^-κ`` from a single iteration with
``s = 2^κ + 1``.
"""

from __future__ import annotations

from ..proxcensus.base import max_grade, slot_index

__all__ = ["extract", "extract_by_position", "splitting_coin", "coin_range"]


def coin_range(slots: int) -> tuple:
    """The coin domain for an ``s``-slot iteration: ``[1, s-1]``."""
    if slots < 2:
        raise ValueError("need at least 2 slots")
    return (1, slots - 1)


def extract(value: int, grade: int, coin: int, slots: int) -> int:
    """The paper's ``f(b, g, c)`` for an ``s``-slot Proxcensus output."""
    if value not in (0, 1):
        raise ValueError(f"extraction is defined on bits, got {value!r}")
    grades = max_grade(slots)
    if not (0 <= grade <= grades):
        raise ValueError(f"grade {grade} outside [0, {grades}] for s={slots}")
    low, high = coin_range(slots)
    if not (low <= coin <= high):
        raise ValueError(f"coin {coin} outside [{low}, {high}]")
    parity = slots % 2
    if value == 1:
        return 1 if coin <= grade + grades + 1 - parity else 0
    return 1 if coin <= grades - grade else 0


def extract_by_position(value: int, grade: int, coin: int, slots: int) -> int:
    """Geometric form: output 1 iff the slot position is right of the cut.

    Provably identical to :func:`extract`; kept because the position form
    makes the "one coin value splits each adjacent pair" argument obvious.
    """
    position = slot_index(value, grade, slots)
    low, high = coin_range(slots)
    if not (low <= coin <= high):
        raise ValueError(f"coin {coin} outside [{low}, {high}]")
    return 1 if position >= coin else 0


def splitting_coin(left_position: int, slots: int) -> int:
    """The unique coin value that separates adjacent slot positions
    ``left_position`` and ``left_position + 1``.

    This is what a worst-case adversary hopes the coin lands on, and what
    the error-probability benchmark conditions on.
    """
    if not (0 <= left_position < slots - 1):
        raise ValueError(
            f"no boundary to the right of position {left_position} in "
            f"{slots} slots"
        )
    return left_position + 1
