"""The paper's fixed-round binary Byzantine Agreement protocols (Cor. 2).

* :func:`ba_one_third_program` — t < n/3, ``κ + 1`` rounds for error
  ``2^-κ``: **one single** generalized iteration, expanding to
  ``s = 2^κ + 1`` slots in ``κ`` rounds (perfectly secure Proxcensus of
  Corollary 1) followed by one ``2^κ``-valued coin flip.  This is the
  paper's headline: half the rounds of fixed-round Feldman–Micali.

* :func:`ba_one_half_program` — t < n/2, ``3⌈κ/2⌉`` rounds: sequential
  iterations of ``Π_iter^5`` over the 3-round ``Prox_5`` of Lemma 3, the
  coin flip running in parallel with Proxcensus round 3 (safe because the
  honest slot pair is fixed after round 2).  Per-iteration error ``1/4``,
  so ``⌈κ/2⌉`` iterations reach ``2^-κ`` — a 25% round saving over
  Micali–Vaikuntanathan.

Both take a :data:`~repro.core.iteration.CoinFactory`; the default is the
threshold-signature coin (the construction the paper proves in the
random-oracle model).  Pass ``ideal_coin_factory(IdealCoin(rng))`` to
reproduce the paper's ideal-coin round counts exactly (same counts — the
threshold coin is also 1-round).
"""

from __future__ import annotations

import math
from typing import Optional

from ..network.party import Context
from ..proxcensus.linear_half import prox_linear_half_program
from ..proxcensus.one_third import prox_one_third_program
from .iteration import CoinFactory, pi_iter_program, threshold_coin_factory

__all__ = [
    "ba_one_third_program",
    "ba_one_half_program",
    "rounds_one_third",
    "rounds_one_half",
]


def rounds_one_third(kappa: int) -> int:
    """Round count of the t < n/3 protocol: ``κ + 1``."""
    return kappa + 1


def rounds_one_half(kappa: int) -> int:
    """Round count of the t < n/2 protocol: ``3⌈κ/2⌉`` (= 3κ/2 for even κ)."""
    return 3 * math.ceil(kappa / 2)


def _check_bit(bit: int) -> int:
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    return bit


def ba_one_third_program(
    ctx: Context,
    bit: int,
    kappa: int,
    coin_factory: Optional[CoinFactory] = None,
):
    """Binary BA, t < n/3, error ≤ 2^-κ, in κ + 1 rounds (single coin)."""
    _check_bit(bit)
    if kappa < 1:
        raise ValueError("kappa must be at least 1")
    if 3 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"ba_one_third requires t < n/3, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    coin_factory = coin_factory or threshold_coin_factory()
    slots = 2 ** kappa + 1
    result = yield from pi_iter_program(
        ctx,
        bit,
        slots,
        prox_factory=lambda c, b: prox_one_third_program(c, b, rounds=kappa),
        prox_rounds=kappa,
        coin_factory=coin_factory,
        coin_index=("ba13", kappa),
        overlap_coin=False,
    )
    return result


def ba_one_half_program(
    ctx: Context,
    bit: int,
    kappa: int,
    coin_factory: Optional[CoinFactory] = None,
):
    """Binary BA, t < n/2, error ≤ 2^-κ, in 3⌈κ/2⌉ rounds."""
    bit = _check_bit(bit)
    if kappa < 1:
        raise ValueError("kappa must be at least 1")
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"ba_one_half requires t < n/2, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    coin_factory = coin_factory or threshold_coin_factory()
    iterations = math.ceil(kappa / 2)
    for index in range(iterations):
        iteration_ctx = ctx.subsession(f"iter{index}")
        bit = yield from pi_iter_program(
            iteration_ctx,
            bit,
            slots=5,
            prox_factory=lambda c, b: prox_linear_half_program(c, b, rounds=3),
            prox_rounds=3,
            coin_factory=coin_factory,
            coin_index=("ba12", index),
            overlap_coin=True,
        )
    return bit
