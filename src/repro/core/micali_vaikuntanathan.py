"""Micali–Vaikuntanathan-style baseline (paper §1, §3.5), t < n/2.

MV [18] achieves fixed-round BA for dishonest minority by iterating a
2-round graded consensus with the coin flip run in parallel to its second
round: 2 rounds per iteration, per-iteration failure ``1/2``, hence ``2κ``
rounds for error ``2^-κ`` — the yardstick the paper's ``3κ/2``-round
protocol beats.

We instantiate the 2-round GC with the ``r = 2`` case of the paper's own
``Prox_{2r-1}`` (Lemma 3), which is a 2-round crusader agreement under
threshold signatures — communication ``O(κ n²)``.  MV's original protocol
uses plain signatures and echoes certificates, costing a factor ``n`` more
communication (``O(κ n³)``); :func:`mv_pki_program` reproduces that
PKI-mode behaviour for the communication-complexity benchmark by having
every party forward the full ``n - t`` plain-signature certificate instead
of one combined threshold signature.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..network.messages import get_field
from ..network.party import Context
from ..proxcensus.base import ProxOutput
from ..proxcensus.linear_half import prox_linear_half_program
from .iteration import CoinFactory, pi_iter_program, threshold_coin_factory

__all__ = ["micali_vaikuntanathan_program", "mv_pki_program", "rounds_mv"]


def rounds_mv(kappa: int) -> int:
    """Round count: ``2κ`` (2-round GC with the coin in its second round)."""
    return 2 * kappa


def micali_vaikuntanathan_program(
    ctx: Context,
    bit: int,
    kappa: int,
    coin_factory: Optional[CoinFactory] = None,
):
    """Binary fixed-round MV-style Byzantine Agreement, t < n/2, 2κ rounds."""
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    if kappa < 1:
        raise ValueError("kappa must be at least 1")
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"micali_vaikuntanathan requires t < n/2, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    coin_factory = coin_factory or threshold_coin_factory()
    for index in range(kappa):
        iteration_ctx = ctx.subsession(f"mv{index}")
        bit = yield from pi_iter_program(
            iteration_ctx,
            bit,
            slots=3,
            prox_factory=lambda c, b: prox_linear_half_program(c, b, rounds=2),
            prox_rounds=2,
            coin_factory=coin_factory,
            coin_index=("mv", index),
            overlap_coin=True,
        )
    return bit


def _crusader_pki_program(ctx: Context, value: Any):
    """2-round crusader agreement with *plain* signatures (PKI mode).

    Round 1: sign and send the input.  Round 2: forward the full list of
    ``n - t`` matching signatures as a certificate (this is the factor-``n``
    communication overhead of standard-signature protocols that the paper's
    §3.5 comparison refers to).  Grade 1 on ``v`` iff this party assembled
    the certificate for ``v`` already at the end of round 1 (hence everyone
    learns ``v`` in round 2) and saw no certificate for any other value.
    """
    n, t = ctx.num_parties, ctx.max_faulty
    scheme = ctx.crypto.plain
    message = lambda v: ("mv-pki", ctx.session, v)

    signature = scheme.sign(ctx.party_id, message(value))
    inbox = yield ctx.broadcast({"mvp": (value, signature)})
    votes: Dict[Any, List[Tuple[int, Any]]] = {}
    for sender, payload in inbox.items():
        pair = get_field(payload, "mvp")
        if not (isinstance(pair, tuple) and len(pair) == 2):
            continue
        v, sig = pair
        try:
            hash(v)
        except TypeError:
            continue
        if scheme.verify(sender, sig, message(v)):
            votes.setdefault(v, []).append((sender, sig))
    certificates = {
        v: signers[: n - t] for v, signers in votes.items() if len(signers) >= n - t
    }

    inbox = yield ctx.broadcast({"mvc": [(v, certificates[v]) for v in certificates]})
    certified = set(certificates)
    for payload in inbox.values():
        items = get_field(payload, "mvc")
        if not isinstance(items, (list, tuple)):
            continue
        for item in items:
            if not (isinstance(item, (list, tuple)) and len(item) == 2):
                continue
            v, cert = item
            try:
                hash(v)
            except TypeError:
                continue
            if v in certified or not isinstance(cert, (list, tuple)):
                continue
            valid_signers = set()
            for entry in cert:
                if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                    continue
                signer, sig = entry
                if isinstance(signer, int) and scheme.verify(signer, sig, message(v)):
                    valid_signers.add(signer)
            if len(valid_signers) >= n - t:
                certified.add(v)
    # Grade 1 demands a certificate formed in round 1: that certificate was
    # forwarded, so every honest party has the value in `certified` — this
    # is what makes two grade-1 outputs on different values impossible.
    if len(certified) == 1 and certificates:
        return ProxOutput(next(iter(certified)), 1)
    return ProxOutput(0, 0)


def mv_pki_program(
    ctx: Context,
    bit: int,
    kappa: int,
    coin_factory: Optional[CoinFactory] = None,
):
    """MV in PKI mode (plain signatures): same 2κ rounds, O(κ n³) comm."""
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError("mv_pki requires t < n/2")
    coin_factory = coin_factory or threshold_coin_factory()
    for index in range(kappa):
        iteration_ctx = ctx.subsession(f"mvp{index}")
        bit = yield from pi_iter_program(
            iteration_ctx,
            bit,
            slots=3,
            prox_factory=_crusader_pki_program,
            prox_rounds=2,
            coin_factory=coin_factory,
            coin_index=("mvp", index),
            overlap_coin=True,
        )
    return bit
