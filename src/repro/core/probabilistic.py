"""Probabilistic-termination ('Las Vegas') Feldman–Micali BA, t < n/3.

The paper's §1 contrasts two termination flavours: fixed-round protocols
(its subject) and expected-constant-round protocols with *probabilistic
termination*, which "cannot achieve simultaneous termination" (Dwork &
Moses; Moses & Tuttle) and are therefore awkward building blocks.  This
module implements the classic flavour so the contrast is measurable: the
termination benchmark shows honest parties of this protocol really do halt
in *different* rounds, while every fixed-round protocol in the repository
halts everyone together.

Construction (the expected-round FM loop; per the paper's §3.1 footnote,
this flavour needs the 5-slot graded consensus, not ``Prox_3``):

    repeat:  (y, g) ← Prox_5(x);  c ← CoinFlip
             if g = 2: decide y  (stay one more iteration, then halt)
             x ← y if g ≥ 1 else bit(c)

If any honest party decides in iteration k (grade 2), every honest party
held grade ≥ 1 with the *same* value, so iteration k+1 starts from
pre-agreement and everyone decides in k+1; the early decider participates
through k+1 (so quorums never starve) and halts afterwards — a one-
iteration termination spread.  Each iteration reaches pre-agreement with
probability ≥ 1/2, giving expected O(1) iterations.

Returns :class:`ProbTermOutput` — the decided value plus the iteration at
which this party decided (for the termination-spread measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..network.party import Context
from ..proxcensus.one_third import prox_one_third_program
from .extraction import extract
from .iteration import CoinFactory, threshold_coin_factory

__all__ = ["ProbTermOutput", "fm_probabilistic_program"]


@dataclass(frozen=True)
class ProbTermOutput:
    """Decision value plus termination bookkeeping."""

    value: int
    decided_iteration: int  # 1-based; the iteration whose Prox gave grade 2

    def __eq__(self, other: object) -> bool:
        # Agreement is about the value; two honest parties deciding the
        # same value in adjacent iterations *are* in agreement.
        if isinstance(other, ProbTermOutput):
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ProbTermOutput", self.value))


def fm_probabilistic_program(
    ctx: Context,
    bit: int,
    coin_factory: Optional[CoinFactory] = None,
    max_iterations: int = 64,
):
    """Expected-constant-round FM BA with probabilistic termination."""
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    if 3 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"fm_probabilistic requires t < n/3, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    coin_factory = coin_factory or threshold_coin_factory()
    decided: Optional[ProbTermOutput] = None
    for iteration in range(1, max_iterations + 1):
        iteration_ctx = ctx.subsession(f"pt{iteration}")
        # 5-slot graded consensus: 2 expansion rounds (Corollary 1, r=2).
        value, grade = yield from prox_one_third_program(iteration_ctx, bit, rounds=2)
        coin = yield from coin_factory(iteration_ctx, ("pt", iteration), 1, 4)
        if coin is None:
            coin = 1
        if decided is not None:
            # The post-decision helper iteration is done; halt now.
            return decided
        if value in (0, 1) and grade == 2:
            decided = ProbTermOutput(value=value, decided_iteration=iteration)
            bit = value  # keep helping for exactly one more iteration
            continue
        if value in (0, 1) and grade >= 1:
            bit = value
        else:
            bit = extract(0, 0, coin, 5)  # adopt the coin's bit
    # Statistically unreachable for honest-majority runs (failure prob
    # 2^-max_iterations); returning the working value keeps the simulator
    # total and the caller can detect non-decision via iteration count.
    return ProbTermOutput(value=bit, decided_iteration=max_iterations)
