"""The generalized Feldman–Micali iteration ``Π_iter`` (paper §3.2, §3.5).

One iteration = **expand** (an ``s``-slot Proxcensus), **coin-flip** (a
``(s-1)``-valued common coin) and **extract** (the cut function of
:mod:`.extraction`).  Theorem 1: a single iteration reaches agreement
except with probability ``1/(s-1)``, against a strongly rushing adaptive
adversary, for any ``t < n`` for which the underlying Proxcensus is secure.

This module provides the iteration as a composable party program, plus the
two coin-factory flavours (ideal and threshold-signature based).  BA
protocols assemble iterations in :mod:`.ba`,
:mod:`.feldman_micali` and :mod:`.micali_vaikuntanathan`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..crypto.coin import IdealCoin, ideal_coin_program, threshold_coin_program
from ..network.party import Context, resume_with, run_parallel
from .extraction import coin_range, extract

__all__ = [
    "CoinFactory",
    "ideal_coin_factory",
    "threshold_coin_factory",
    "vrf_coin_factory",
    "pi_iter_program",
]

# A coin factory builds the 1-round coin subprotocol for iteration `index`,
# producing a value in [low, high] (or None on coin failure).
CoinFactory = Callable[[Context, Any, int, int], Generator]


def ideal_coin_factory(coin: IdealCoin) -> CoinFactory:
    """Coin factory over a shared :class:`IdealCoin` instance.

    The instance must be created once per execution and passed to every
    party's program factory (the simulator's single process stands in for
    the paper's ideal-coin setup assumption).
    """

    def factory(ctx: Context, index: Any, low: int, high: int):
        return ideal_coin_program(ctx, coin, index, low, high)

    return factory


def threshold_coin_factory() -> CoinFactory:
    """Coin factory over the suite's ``(t+1)``-of-``n`` threshold scheme."""

    def factory(ctx: Context, index: Any, low: int, high: int):
        return threshold_coin_program(ctx, index, low, high)

    return factory


def vrf_coin_factory() -> CoinFactory:
    """Coin factory over the Chen–Micali-style VRF coin.

    **Biased against strongly rushing adversaries** (the paper's §1 caveat
    on [4]; measured in ``benchmarks/bench_coin_bias.py``) — provided for
    the comparison, not as a drop-in for the threshold coin.
    """
    from ..crypto.vrf_coin import vrf_coin_program

    def factory(ctx: Context, index: Any, low: int, high: int):
        return vrf_coin_program(ctx, index, low, high)

    return factory


def pi_iter_program(
    ctx: Context,
    bit: int,
    slots: int,
    prox_factory: Callable[[Context, int], Generator],
    prox_rounds: int,
    coin_factory: CoinFactory,
    coin_index: Any = 0,
    overlap_coin: bool = False,
):
    """One generalized iteration ``Π_iter^s`` as a party program.

    ``prox_factory(ctx, bit)`` must be an ``s``-slot Proxcensus program
    taking exactly ``prox_rounds`` communication rounds.  With
    ``overlap_coin`` the coin's single round is multiplexed into the
    Proxcensus' *last* round (the paper does this for the t < n/2 protocol,
    where the honest slot pair is already fixed after round 2); otherwise
    the coin follows the Proxcensus, for ``prox_rounds + 1`` rounds total.

    Defensive notes: a failed coin (``None``) degrades to coin value 1 —
    the iteration then still satisfies validity, and consistency merely is
    not helped this iteration; a non-binary Proxcensus value (impossible
    for honest executions, but cheap to guard) degrades to the (0, 0) slot.
    """
    low, high = coin_range(slots)
    prox = prox_factory(ctx, bit)
    if overlap_coin and prox_rounds >= 1:
        outbox = next(prox)
        for _ in range(prox_rounds - 1):
            inbox = yield outbox
            outbox = prox.send(inbox)
        results = yield from run_parallel(
            ctx,
            {
                "prox": resume_with(prox, outbox),
                "coin": coin_factory(ctx, coin_index, low, high),
            },
        )
        prox_output = results["prox"]
        coin = results["coin"]
    else:
        prox_output = yield from prox
        coin = yield from coin_factory(ctx, coin_index, low, high)
    value, grade = prox_output
    if value not in (0, 1):
        value, grade = 0, 0
    if coin is None:
        coin = low
    return extract(value, grade, coin, slots)
