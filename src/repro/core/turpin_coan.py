"""Multivalued Byzantine Agreement from binary BA (paper §3.5 / [21]).

The paper extends its binary protocols to arbitrary finite domains "at the
expense of 2 (resp. 3) additional communication rounds when t < n/3
(resp. t < n/2) by applying the construction of Turpin and Coan [21]".

Two implementations are provided:

* :func:`turpin_coan_classic_program` — the original Turpin–Coan reduction
  for t < n/3 (2 echo rounds, no signatures, exactly as in [21]); and
* :func:`multivalued_ba_program` — a Proxcensus-flavoured lift matching
  the paper's round budgets for *both* regimes: a 2-round (t < n/3,
  Corollary 1 with r = 2) or 3-round (t < n/2, Lemma 3 with r = 3)
  multivalued Proxcensus, binary BA on "my grade is maximal", and output
  of the graded value when BA decides 1.

  Correctness of the lift follows from Definition 2 alone: if any honest
  party holds grade ``G`` then every honest party holds grade ``≥ G - 1 ≥
  1`` and therefore the *same* value (consistency); the binary BA's
  validity guarantees its output 1 only when some honest party had grade
  ``G``, and its output 0 whenever nobody could have (validity of the
  Proxcensus gives every honest party grade ``G`` under pre-agreement).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Generator

from ..network.messages import get_field
from ..network.party import Context
from ..proxcensus.linear_half import prox_linear_half_program
from ..proxcensus.one_third import prox_one_third_program

__all__ = ["turpin_coan_classic_program", "multivalued_ba_program"]

# A binary BA program factory: (ctx, bit) -> generator returning a bit.
BinaryBA = Callable[[Context, int], Generator]


def turpin_coan_classic_program(
    ctx: Context,
    value: Any,
    binary_ba: BinaryBA,
    default: Any = None,
):
    """The original Turpin–Coan reduction, t < n/3, +2 rounds.

    Round 1: broadcast the input.  Round 2: broadcast the value seen
    ``n - t`` times (or ⊥).  Let ``w`` be the most frequent non-⊥ round-2
    value and ``C`` its count; run binary BA on ``C ≥ n - t``; output ``w``
    on 1, ``default`` on 0.
    """
    n, t = ctx.num_parties, ctx.max_faulty
    if 3 * t >= n:
        raise ValueError(f"turpin_coan_classic requires t < n/3, got t={t}, n={n}")
    bottom = ("tc-bottom",)  # sentinel no input value can collide with

    inbox = yield ctx.broadcast({"tc1": value})
    tally = Counter()
    for payload in inbox.values():
        v = get_field(payload, "tc1")
        try:
            hash(v)
        except TypeError:
            continue
        tally[v] += 1
    echo = next((v for v, c in tally.items() if c >= n - t), bottom)

    inbox = yield ctx.broadcast({"tc2": echo})
    tally = Counter()
    for payload in inbox.values():
        v = get_field(payload, "tc2")
        try:
            hash(v)
        except TypeError:
            continue
        if v != bottom:
            tally[v] += 1
    if tally:
        candidate, count = max(tally.items(), key=lambda kv: (kv[1], repr(kv[0])))
    else:
        candidate, count = default, 0
    decision = yield from binary_ba(ctx.subsession("tc-ba"), 1 if count >= n - t else 0)
    return candidate if decision == 1 else default


def multivalued_ba_program(
    ctx: Context,
    value: Any,
    binary_ba: BinaryBA,
    regime: str = "one_third",
    default: Any = None,
):
    """Multivalued BA at the paper's advertised extra round cost.

    ``regime`` is ``"one_third"`` (t < n/3, +2 rounds via the 2-round
    5-slot Proxcensus of Corollary 1) or ``"one_half"`` (t < n/2, +3 rounds
    via the 3-round 5-slot Proxcensus of Lemma 3).
    """
    prox_ctx = ctx.subsession("mv-prox")
    if regime == "one_third":
        if 3 * ctx.max_faulty >= ctx.num_parties:
            raise ValueError("regime 'one_third' requires t < n/3")
        output = yield from prox_one_third_program(prox_ctx, value, rounds=2)
        top = 2  # G of the 5-slot Proxcensus
    elif regime == "one_half":
        if 2 * ctx.max_faulty >= ctx.num_parties:
            raise ValueError("regime 'one_half' requires t < n/2")
        output = yield from prox_linear_half_program(prox_ctx, value, rounds=3)
        top = 2  # G of the 5-slot (2·3 - 1) Proxcensus
    else:
        raise ValueError(f"unknown regime {regime!r}")
    decision = yield from binary_ba(
        ctx.subsession("mv-ba"), 1 if output.grade == top else 0
    )
    if decision == 1:
        # Some honest party had grade G, so every honest grade is >= 1 and
        # all graded values agree; our own value is that common value.
        return output.value
    return default
