"""Generalized/parameterized BA variants for ablation studies.

The paper makes two implicit design choices that these variants make
explicit and sweepable:

* **Iteration granularity, t < n/3.**  The headline protocol spends the
  whole budget on *one* iteration (``s = 2^κ + 1``).  One could instead
  run ``j`` iterations of ``s = 2^m + 1`` with ``j·m = κ`` — at ``m = 1``
  that is exactly fixed-round Feldman–Micali.  :func:`ba_one_third_chunked`
  implements the whole family; rounds are ``j·(m+1)``, so error 2^-κ costs
  ``κ·(m+1)/m`` rounds — strictly decreasing in ``m``, minimized by the
  paper's single-iteration choice.  (FM and the paper's protocol are the
  two endpoints of one dial.)

* **Slot count per iteration, t < n/2** (paper footnote 6: "other choices
  of number of slots will not lead to efficiency improvements").
  :func:`ba_one_half_generalized` runs iterations over ``Prox_{2r-1}``
  for any ``r ≥ 2`` (coin overlapped with the last round): each iteration
  takes ``r`` rounds and gains ``log2(2r-2)`` bits, so the
  bits-per-round rate ``log2(2r-2)/r`` is maximized at ``r = 3`` —
  exactly the paper's ``Prox_5`` choice.  The quadratic Proxcensus of
  Appendix B can be swapped in via ``family="quadratic"`` to check it
  never beats ``r = 3`` either.
"""

from __future__ import annotations

import math
from typing import Optional

from ..network.party import Context
from ..proxcensus.linear_half import prox_linear_half_program
from ..proxcensus.linear_half import slots_after_rounds as linear_slots
from ..proxcensus.one_third import prox_one_third_program
from ..proxcensus.quadratic_half import prox_quadratic_half_program
from ..proxcensus.quadratic_half import slots_after_rounds as quadratic_slots
from .iteration import CoinFactory, pi_iter_program, threshold_coin_factory

__all__ = [
    "ba_one_third_chunked",
    "rounds_one_third_chunked",
    "bits_per_round_one_third",
    "ba_one_half_generalized",
    "rounds_one_half_generalized",
    "bits_per_round_one_half",
]


def rounds_one_third_chunked(kappa: int, chunk: int) -> int:
    """Rounds of the chunked t<n/3 family: ``⌈κ/m⌉·(m+1)`` for chunk m."""
    iterations = math.ceil(kappa / chunk)
    return iterations * (chunk + 1)


def bits_per_round_one_third(chunk: int) -> float:
    """Error-exponent bits gained per round at chunk size m: ``m/(m+1)``."""
    return chunk / (chunk + 1)


def ba_one_third_chunked(
    ctx: Context,
    bit: int,
    kappa: int,
    chunk: int,
    coin_factory: Optional[CoinFactory] = None,
):
    """t<n/3 BA as ``⌈κ/m⌉`` iterations of ``Π_iter`` over ``Prox_{2^m+1}``.

    ``chunk = kappa`` is the paper's Corollary 2 protocol; ``chunk = 1``
    is fixed-round Feldman–Micali.
    """
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    if not (1 <= chunk <= kappa):
        raise ValueError("need 1 <= chunk <= kappa")
    if 3 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError("ba_one_third_chunked requires t < n/3")
    coin_factory = coin_factory or threshold_coin_factory()
    iterations = math.ceil(kappa / chunk)
    for index in range(iterations):
        iteration_ctx = ctx.subsession(f"chunk{index}")
        bit = yield from pi_iter_program(
            iteration_ctx,
            bit,
            slots=2 ** chunk + 1,
            prox_factory=lambda c, b: prox_one_third_program(c, b, rounds=chunk),
            prox_rounds=chunk,
            coin_factory=coin_factory,
            coin_index=("chunked", index),
            overlap_coin=False,
        )
    return bit


def rounds_one_half_generalized(kappa: int, prox_rounds: int, family: str = "linear") -> int:
    """Rounds of the generalized t<n/2 family (coin overlapped)."""
    bits = _bits_per_iteration_one_half(prox_rounds, family)
    iterations = math.ceil(kappa / bits)
    return iterations * prox_rounds


def bits_per_round_one_half(prox_rounds: int, family: str = "linear") -> float:
    """Bits of error exponent per communication round."""
    return _bits_per_iteration_one_half(prox_rounds, family) / prox_rounds


def _bits_per_iteration_one_half(prox_rounds: int, family: str) -> float:
    slots = (
        linear_slots(prox_rounds)
        if family == "linear"
        else quadratic_slots(prox_rounds)
    )
    return math.log2(slots - 1)


def ba_one_half_generalized(
    ctx: Context,
    bit: int,
    kappa: int,
    prox_rounds: int = 3,
    family: str = "linear",
    coin_factory: Optional[CoinFactory] = None,
):
    """t<n/2 BA iterated over ``Prox_{2r-1}`` (or the quadratic family).

    ``prox_rounds = 3, family = "linear"`` is the paper's Corollary 2
    protocol.  Iteration count is ``⌈κ / log2(s-1)⌉``: per-iteration
    failure is ``1/(s-1)``, so that many independent iterations push the
    product below ``2^-κ``.
    """
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    if 2 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError("ba_one_half_generalized requires t < n/2")
    if family == "linear":
        slots = linear_slots(prox_rounds)
        prox_factory = lambda c, b: prox_linear_half_program(c, b, rounds=prox_rounds)
    elif family == "quadratic":
        slots = quadratic_slots(prox_rounds)
        prox_factory = lambda c, b: prox_quadratic_half_program(
            c, b, rounds=prox_rounds
        )
    else:
        raise ValueError(f"unknown family {family!r}")
    coin_factory = coin_factory or threshold_coin_factory()
    iterations = math.ceil(kappa / math.log2(slots - 1))
    for index in range(iterations):
        iteration_ctx = ctx.subsession(f"gen{index}")
        bit = yield from pi_iter_program(
            iteration_ctx,
            bit,
            slots=slots,
            prox_factory=prox_factory,
            prox_rounds=prox_rounds,
            coin_factory=coin_factory,
            coin_index=("gen12", index),
            overlap_coin=True,
        )
    return bit
