"""The paper's contribution: extraction, generalized iteration, BA.

Also hosts the executable baselines (fixed-round Feldman–Micali,
Micali–Vaikuntanathan-style, Dolev–Strong) and the multivalued lifts.
"""

from .ablation import (
    ba_one_half_generalized,
    ba_one_third_chunked,
    bits_per_round_one_half,
    bits_per_round_one_third,
    rounds_one_half_generalized,
    rounds_one_third_chunked,
)
from .ba import (
    ba_one_half_program,
    ba_one_third_program,
    rounds_one_half,
    rounds_one_third,
)
from .dolev_strong import dolev_strong_ba_program, dolev_strong_broadcast_program
from .extraction import coin_range, extract, extract_by_position, splitting_coin
from .feldman_micali import feldman_micali_program, rounds_feldman_micali
from .iteration import (
    CoinFactory,
    ideal_coin_factory,
    pi_iter_program,
    threshold_coin_factory,
)
from .micali_vaikuntanathan import (
    micali_vaikuntanathan_program,
    mv_pki_program,
    rounds_mv,
)
from .probabilistic import ProbTermOutput, fm_probabilistic_program
from .turpin_coan import multivalued_ba_program, turpin_coan_classic_program

__all__ = [
    "CoinFactory",
    "ProbTermOutput",
    "fm_probabilistic_program",
    "ba_one_half_generalized",
    "ba_one_half_program",
    "ba_one_third_chunked",
    "bits_per_round_one_half",
    "bits_per_round_one_third",
    "rounds_one_half_generalized",
    "rounds_one_third_chunked",
    "ba_one_third_program",
    "coin_range",
    "dolev_strong_ba_program",
    "dolev_strong_broadcast_program",
    "extract",
    "extract_by_position",
    "feldman_micali_program",
    "ideal_coin_factory",
    "micali_vaikuntanathan_program",
    "multivalued_ba_program",
    "mv_pki_program",
    "pi_iter_program",
    "rounds_feldman_micali",
    "rounds_mv",
    "rounds_one_half",
    "rounds_one_third",
    "splitting_coin",
    "threshold_coin_factory",
    "turpin_coan_classic_program",
]
