"""Fixed-round Feldman–Micali baseline (paper §3.1), t < n/3.

The classic construction the paper improves on: ``κ`` sequential
iterations, each a 1-round ``Prox_3`` (crusader agreement — the base case
of our expansion, Corollary 1 with r = 1) followed by a 1-round binary
coin.  Per-iteration failure ``1/2``, so ``2κ`` rounds for error ``2^-κ``.

Expressed in the paper's own vocabulary, FM *is* the ``s = 3`` special case
of the generalized iteration: at ``s = 3`` the extraction function reduces
to "keep your value if grade 1, adopt the coin if grade 0" — the property
tests verify this equivalence explicitly.
"""

from __future__ import annotations

from typing import Optional

from ..network.party import Context
from ..proxcensus.one_third import prox_one_third_program
from .iteration import CoinFactory, pi_iter_program, threshold_coin_factory

__all__ = ["feldman_micali_program", "rounds_feldman_micali"]


def rounds_feldman_micali(kappa: int) -> int:
    """Round count: ``2κ`` (one GC round + one coin round per iteration)."""
    return 2 * kappa


def feldman_micali_program(
    ctx: Context,
    bit: int,
    kappa: int,
    coin_factory: Optional[CoinFactory] = None,
):
    """Binary fixed-round FM Byzantine Agreement, t < n/3, 2κ rounds."""
    if bit not in (0, 1):
        raise ValueError(f"binary BA needs a bit input, got {bit!r}")
    if kappa < 1:
        raise ValueError("kappa must be at least 1")
    if 3 * ctx.max_faulty >= ctx.num_parties:
        raise ValueError(
            f"feldman_micali requires t < n/3, got t={ctx.max_faulty}, "
            f"n={ctx.num_parties}"
        )
    coin_factory = coin_factory or threshold_coin_factory()
    for index in range(kappa):
        iteration_ctx = ctx.subsession(f"fm{index}")
        bit = yield from pi_iter_program(
            iteration_ctx,
            bit,
            slots=3,
            prox_factory=lambda c, b: prox_one_third_program(c, b, rounds=1),
            prox_rounds=1,
            coin_factory=coin_factory,
            coin_index=("fm", index),
            overlap_coin=False,
        )
    return bit
