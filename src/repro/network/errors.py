"""Errors raised by the synchronous network simulator."""

from __future__ import annotations

__all__ = ["SimulationError", "AdversaryBudgetError", "RoundLimitError"]


class SimulationError(RuntimeError):
    """Generic simulator misconfiguration or harness bug."""


class AdversaryBudgetError(SimulationError):
    """The adversary tried to corrupt more than ``t`` parties."""


class RoundLimitError(SimulationError):
    """A protocol ran past the simulator's safety round cap.

    All protocols in this repository are fixed-round, so hitting the cap
    always indicates a protocol-logic bug, never legitimate slowness.
    """
