"""Party programs: the generator protocol convention and its combinators.

A *party program* is a generator produced by a *program factory*
``factory(ctx, input) -> generator``.  Each ``yield`` is a round boundary:

.. code-block:: python

    def echo_once(ctx, value):
        inbox = yield ctx.broadcast({"v": value})   # round 1
        return sorted(inbox)                        # output

The generator yields its outbox for round ``r`` and receives round ``r``'s
inbox (sender → payload).  Sequential composition is plain ``yield from``.
Parallel composition — the paper runs its coin-flip in the same round as
Proxcensus round 3 — is :func:`run_parallel`, which multiplexes sub-programs
over tagged payload envelopes; :func:`resume_with` adapts a partially-driven
generator (whose next outbox is already in hand) into that combinator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable

from ..crypto.keys import CryptoSuite
from .messages import PARALLEL_KEY, Broadcast, Inbox, Outbox, normalize_outbox

__all__ = ["Context", "ProgramFactory", "run_parallel", "resume_with"]

Program = Generator[Outbox, Inbox, Any]
ProgramFactory = Callable[["Context", Any], Program]


@dataclass
class Context:
    """Per-party execution context handed to every program.

    ``rng`` is party-local and seeded by the simulator, so executions are
    reproducible; ``session`` domain-separates signatures across protocol
    instances (two BA runs never share coin values or signed messages).
    """

    party_id: int
    num_parties: int
    max_faulty: int
    session: str
    crypto: CryptoSuite
    rng: random.Random

    @property
    def quorum_size(self) -> int:
        """``n - t``: the threshold the paper's quorum signatures use."""
        return self.num_parties - self.max_faulty

    def broadcast(self, payload: Any) -> Broadcast:
        """Outbox sending ``payload`` to every party, self included."""
        return Broadcast(payload)

    def all_parties(self) -> Iterable[int]:
        """Party ids 0..n-1."""
        return range(self.num_parties)

    def subsession(self, label: str) -> "Context":
        """A context whose session tag is extended by ``label``.

        Used when one protocol instance runs another as a black box (e.g.
        each Feldman–Micali iteration runs its own coin index); keeps
        signed messages from colliding between sub-instances.
        """
        return Context(
            party_id=self.party_id,
            num_parties=self.num_parties,
            max_faulty=self.max_faulty,
            session=f"{self.session}/{label}",
            crypto=self.crypto,
            rng=self.rng,
        )


def run_parallel(ctx: Context, programs: Dict[str, Program]) -> Program:
    """Drive several sub-programs in the *same* communication rounds.

    Per round, each live sub-program's outbox is wrapped under its tag into
    one envelope ``{PARALLEL_KEY: {tag: payload}}`` per recipient; inbound
    envelopes are split the same way.  Sub-programs may finish in different
    rounds.  Returns ``{tag: result}`` once all have finished.
    """
    live: Dict[str, Program] = {}
    results: Dict[str, Any] = {}
    pending: Dict[str, Outbox] = {}
    for tag, program in programs.items():
        try:
            pending[tag] = next(program)
            live[tag] = program
        except StopIteration as stop:
            results[tag] = stop.value
    while live:
        inbox = yield _merge_outboxes(ctx, pending)
        split = _split_inbox(inbox, live.keys())
        pending = {}
        for tag in list(live):
            try:
                pending[tag] = live[tag].send(split[tag])
            except StopIteration as stop:
                results[tag] = stop.value
                del live[tag]
    return results


def resume_with(program: Program, next_outbox: Outbox) -> Program:
    """Wrap an already partially-driven generator for :func:`run_parallel`.

    ``next_outbox`` is the outbox the generator has just produced (via
    ``send``) but which has not been put on the wire yet.  The wrapper
    re-yields it first and then delegates, so the combinator's initial
    ``next()`` does not skip a round.
    """
    inbox = yield next_outbox
    while True:
        try:
            outbox = program.send(inbox)
        except StopIteration as stop:
            return stop.value
        inbox = yield outbox


def _merge_outboxes(ctx: Context, pending: Dict[str, Outbox]) -> Outbox:
    if all(outbox is None or isinstance(outbox, Broadcast) for outbox in pending.values()):
        payload = {
            PARALLEL_KEY: {
                tag: outbox.payload
                for tag, outbox in pending.items()
                if isinstance(outbox, Broadcast)
            }
        }
        return Broadcast(payload)
    merged: Dict[int, Any] = {}
    n = ctx.num_parties
    expanded = {tag: normalize_outbox(outbox, n) for tag, outbox in pending.items()}
    for recipient in range(n):
        sub = {
            tag: recipients[recipient]
            for tag, recipients in expanded.items()
            if recipient in recipients
        }
        if sub:
            merged[recipient] = {PARALLEL_KEY: sub}
    return merged


def _split_inbox(inbox: Inbox, tags: Iterable[str]) -> Dict[str, Inbox]:
    split: Dict[str, Inbox] = {tag: {} for tag in tags}
    for sender, payload in inbox.items():
        if not isinstance(payload, dict):
            continue
        envelope = payload.get(PARALLEL_KEY)
        if not isinstance(envelope, dict):
            continue
        for tag in split:
            if tag in envelope:
                split[tag][sender] = envelope[tag]
    return split
