"""Message envelopes and defensive payload accessors.

A party program's per-round *outbox* is one of:

* ``Broadcast(payload)`` — the same payload to every party (self included;
  the paper's protocols all say "send to all parties");
* a ``dict`` mapping recipient id to payload — point-to-point, possibly
  equivocating (only the adversary has a reason to equivocate, but the type
  is shared);
* ``None`` — silence this round.

The per-round *inbox* is a ``dict`` mapping sender id to the payload that
sender addressed to us.  Channels are authenticated: sender ids are
simulator-assigned and unforgeable.  Payload *contents*, however, may be
arbitrary Byzantine garbage, which is why honest code goes through the
``get_*`` accessors below instead of trusting shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

__all__ = [
    "Broadcast",
    "Outbox",
    "Inbox",
    "normalize_outbox",
    "get_field",
    "get_int",
    "get_int_in_range",
    "get_pair",
]


@dataclass(frozen=True)
class Broadcast:
    """Same payload to all ``n`` parties (including the sender)."""

    payload: Any


Outbox = Union[Broadcast, Dict[int, Any], None]
Inbox = Dict[int, Any]

PARALLEL_KEY = "__par__"


def normalize_outbox(outbox: Outbox, num_parties: int) -> Dict[int, Any]:
    """Expand an outbox into an explicit recipient → payload map."""
    if outbox is None:
        return {}
    if isinstance(outbox, Broadcast):
        return {recipient: outbox.payload for recipient in range(num_parties)}
    if isinstance(outbox, dict):
        return {
            recipient: payload
            for recipient, payload in outbox.items()
            if isinstance(recipient, int) and 0 <= recipient < num_parties
        }
    raise TypeError(f"invalid outbox type {type(outbox).__name__}")


def get_field(payload: Any, key: str) -> Optional[Any]:
    """``payload[key]`` if payload is a dict holding it, else ``None``."""
    if isinstance(payload, dict):
        return payload.get(key)
    return None


def get_int(payload: Any, key: str) -> Optional[int]:
    """Integer field accessor (rejects bools: True is not a protocol int)."""
    value = get_field(payload, key)
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def get_int_in_range(payload: Any, key: str, low: int, high: int) -> Optional[int]:
    """Integer field accessor restricted to an inclusive range."""
    value = get_int(payload, key)
    if value is None or not (low <= value <= high):
        return None
    return value


def get_pair(payload: Any, key: str) -> Optional[tuple]:
    """Two-element tuple/list field accessor."""
    value = get_field(payload, key)
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return tuple(value)
    return None
