"""Execution metrics: rounds, messages, signatures.

The paper measures communication complexity "in the number of signatures
exchanged between the parties" (§2.2).  :func:`count_signatures` walks a
payload and counts embedded signature-ish objects — anything constructed by
:mod:`repro.crypto` (shares, combined signatures, plain signatures).  That
makes the measured numbers directly comparable to the paper's
``O(r n²)`` / ``O(κ n²)`` claims without instrumenting every protocol.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["RoundStats", "RunMetrics", "count_signatures"]


def count_signatures(payload: Any) -> int:
    """Count signature objects (shares, combined, plain) inside a payload."""
    if payload is None or isinstance(payload, (int, str, bytes, bool, float)):
        return 0
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        if type(payload).__module__.startswith("repro.crypto"):
            return 1
        return sum(
            count_signatures(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
    if isinstance(payload, dict):
        return sum(count_signatures(v) for v in payload.values()) + sum(
            count_signatures(k) for k in payload.keys()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(count_signatures(item) for item in payload)
    return 0


@dataclass
class RoundStats:
    """Per-round tallies, split by sender honesty at send time."""

    honest_messages: int = 0
    corrupt_messages: int = 0
    honest_signatures: int = 0
    corrupt_signatures: int = 0


@dataclass
class RunMetrics:
    """Aggregated measurements for one simulated execution."""

    rounds: int = 0
    per_round: Dict[int, RoundStats] = field(default_factory=dict)

    def record(self, round_index: int, honest: bool, signature_count: int) -> None:
        """Tally one delivered message."""
        stats = self.per_round.setdefault(round_index, RoundStats())
        if honest:
            stats.honest_messages += 1
            stats.honest_signatures += signature_count
        else:
            stats.corrupt_messages += 1
            stats.corrupt_signatures += signature_count

    @property
    def honest_messages(self) -> int:
        """Messages sent by parties that were honest at send time."""
        return sum(s.honest_messages for s in self.per_round.values())

    @property
    def corrupt_messages(self) -> int:
        """Messages sent by corrupted parties."""
        return sum(s.corrupt_messages for s in self.per_round.values())

    @property
    def total_messages(self) -> int:
        """All delivered messages."""
        return self.honest_messages + self.corrupt_messages

    @property
    def honest_signatures(self) -> int:
        """Signature objects inside honest-sent payloads (the paper's comm metric)."""
        return sum(s.honest_signatures for s in self.per_round.values())

    @property
    def total_signatures(self) -> int:
        """Signature objects across all payloads, honest and corrupt."""
        return self.honest_signatures + sum(
            s.corrupt_signatures for s in self.per_round.values()
        )
