"""Execution metrics: rounds, messages, signatures.

The paper measures communication complexity "in the number of signatures
exchanged between the parties" (§2.2).  :func:`count_signatures` walks a
payload and counts embedded signature-ish objects — anything constructed by
:mod:`repro.crypto` (shares, combined signatures, plain signatures).  That
makes the measured numbers directly comparable to the paper's
``O(r n²)`` / ``O(κ n²)`` claims without instrumenting every protocol.

The walk is the hottest non-protocol code in every simulated execution
(it runs on every delivered message), so it is driven by a per-*type*
dispatch cache: the dataclass-reflection questions (is this a dataclass?
which module defines it? what are its fields?) are answered once per
distinct payload type, not once per payload.  The uncached reference walk
is kept as :func:`count_signatures_reference`; the regression tests in
``tests/network/test_metrics.py`` prove the two always agree.

Scope of the count, explicitly: containers recognized as traversable are
dataclasses, ``dict`` and ``list``/``tuple``/``set``/``frozenset``
(including subclasses).  *Any other type counts as zero* — generators,
iterators, and custom non-dataclass classes are NOT traversed, because
consuming a generator would be destructive and walking arbitrary
``__dict__``s would double-count via back-references.  Protocol payloads
that want their signatures counted must therefore be built from the
recognized containers (all in-tree protocols are).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

__all__ = [
    "RoundStats",
    "RunMetrics",
    "count_signatures",
    "count_signatures_reference",
]


def count_signatures_reference(payload: Any) -> int:
    """Uncached reference walk — the specification ``count_signatures``
    must match.  Kept for regression tests and baseline benchmarking."""
    if payload is None or isinstance(payload, (int, str, bytes, bool, float)):
        return 0
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        if type(payload).__module__.startswith("repro.crypto"):
            return 1
        return sum(
            count_signatures_reference(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
    if isinstance(payload, dict):
        return sum(count_signatures_reference(v) for v in payload.values()) + sum(
            count_signatures_reference(k) for k in payload.keys()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(count_signatures_reference(item) for item in payload)
    return 0


# Per-type dispatch kinds.  Classification mirrors the reference walk's
# check order exactly (scalars before dataclasses: a dataclass subclassing
# int is a scalar there too).
_KIND_ZERO = 0  # scalars, None, and unrecognized types
_KIND_SIGNATURE = 1  # dataclasses defined in repro.crypto.*
_KIND_DATACLASS = 2  # other dataclasses: recurse into fields
_KIND_DICT = 3
_KIND_SEQUENCE = 4

_TYPE_KINDS: Dict[type, int] = {}
_DATACLASS_FIELDS: Dict[type, Tuple[str, ...]] = {}


def _classify(tp: type) -> int:
    if issubclass(tp, (int, str, bytes, bool, float)) or tp is type(None):
        return _KIND_ZERO
    if dataclasses.is_dataclass(tp):
        if tp.__module__.startswith("repro.crypto"):
            return _KIND_SIGNATURE
        _DATACLASS_FIELDS[tp] = tuple(f.name for f in dataclasses.fields(tp))
        return _KIND_DATACLASS
    if issubclass(tp, dict):
        return _KIND_DICT
    if issubclass(tp, (list, tuple, set, frozenset)):
        return _KIND_SEQUENCE
    return _KIND_ZERO


def count_signatures(payload: Any) -> int:
    """Count signature objects (shares, combined, plain) inside a payload.

    Equivalent to :func:`count_signatures_reference`, but dataclass
    reflection runs once per distinct payload *type* instead of once per
    payload.  Unrecognized container types count as 0 — see the module
    docstring for the exact traversal scope.
    """
    tp = payload.__class__
    kind = _TYPE_KINDS.get(tp)
    if kind is None:
        kind = _classify(tp)
        _TYPE_KINDS[tp] = kind
    if kind == _KIND_ZERO:
        return 0
    if kind == _KIND_SIGNATURE:
        return 1
    if kind == _KIND_DATACLASS:
        return sum(
            count_signatures(getattr(payload, name))
            for name in _DATACLASS_FIELDS[tp]
        )
    if kind == _KIND_DICT:
        return sum(map(count_signatures, payload.values())) + sum(
            map(count_signatures, payload.keys())
        )
    return sum(map(count_signatures, payload))


@dataclass
class RoundStats:
    """Per-round tallies, split by sender honesty at send time."""

    honest_messages: int = 0
    corrupt_messages: int = 0
    honest_signatures: int = 0
    corrupt_signatures: int = 0

    def add(self, other: "RoundStats") -> None:
        """Accumulate another round's tallies into this one."""
        self.honest_messages += other.honest_messages
        self.corrupt_messages += other.corrupt_messages
        self.honest_signatures += other.honest_signatures
        self.corrupt_signatures += other.corrupt_signatures


@dataclass
class RunMetrics:
    """Aggregated measurements for one simulated execution."""

    rounds: int = 0
    per_round: Dict[int, RoundStats] = field(default_factory=dict)

    def round_stats(self, round_index: int) -> RoundStats:
        """The (created-on-demand) tally object for one round.

        The simulator fetches this once per round and increments its
        fields directly — the hot delivery loop must not pay a dict
        lookup per message.
        """
        stats = self.per_round.get(round_index)
        if stats is None:
            stats = self.per_round[round_index] = RoundStats()
        return stats

    def record(self, round_index: int, honest: bool, signature_count: int) -> None:
        """Tally one delivered message."""
        stats = self.round_stats(round_index)
        if honest:
            stats.honest_messages += 1
            stats.honest_signatures += signature_count
        else:
            stats.corrupt_messages += 1
            stats.corrupt_signatures += signature_count

    def merge(self, other: "RunMetrics") -> None:
        """Fold another execution's metrics into this aggregate.

        ``rounds`` accumulates (total simulated rounds across the merged
        runs); per-round tallies add up index-wise, so aggregated
        per-round shapes stay meaningful for same-protocol trials.
        """
        self.rounds += other.rounds
        for round_index, stats in other.per_round.items():
            self.round_stats(round_index).add(stats)

    @classmethod
    def merged(cls, metrics_list) -> "RunMetrics":
        """Aggregate many executions' metrics into one (see :meth:`merge`)."""
        total = cls()
        for metrics in metrics_list:
            total.merge(metrics)
        return total

    def as_tallies(self) -> Tuple[int, ...]:
        """The per-round tallies as one flat tuple of ints.

        Five ints per tallied round — ``(round_index, honest_messages,
        corrupt_messages, honest_signatures, corrupt_signatures)`` — in
        ``per_round`` insertion order (execution order).  Together with
        :attr:`rounds` this is the *complete* state of a ``RunMetrics``,
        which is what lets the engine's compact result transport
        (:mod:`repro.engine.transport`) ship tallies across process
        boundaries as packed ints instead of pickled dataclass trees.
        :meth:`from_tallies` inverts it exactly.
        """
        flat: list = []
        extend = flat.extend
        for round_index, stats in self.per_round.items():
            extend(
                (
                    round_index,
                    stats.honest_messages,
                    stats.corrupt_messages,
                    stats.honest_signatures,
                    stats.corrupt_signatures,
                )
            )
        return tuple(flat)

    @classmethod
    def from_round_tallies(cls, rounds, rows) -> "RunMetrics":
        """Build a ``RunMetrics`` from structured per-round rows.

        ``rows`` is an iterable of ``(round_index, honest_messages,
        corrupt_messages, honest_signatures, corrupt_signatures)`` tuples;
        entries are inserted in iteration order, so callers that replay an
        execution's tally sequence (the vector engine backend assembling
        per-trial metrics from memoized batch tallies) reproduce the
        object simulator's ``per_round`` layout exactly.
        """
        per_round: Dict[int, RoundStats] = {}
        for round_index, hm, cm, hs, cs in rows:
            per_round[round_index] = RoundStats(
                honest_messages=hm,
                corrupt_messages=cm,
                honest_signatures=hs,
                corrupt_signatures=cs,
            )
        return cls(rounds=rounds, per_round=per_round)

    @classmethod
    def from_tallies(cls, rounds: int, tallies: Sequence[int]) -> "RunMetrics":
        """Rebuild a ``RunMetrics`` from :meth:`as_tallies` output.

        Lossless inverse of the pack: per-round entries are recreated in
        the packed order, so the rebuilt object compares (and iterates)
        exactly like the original.
        """
        if len(tallies) % 5:
            raise ValueError(
                f"tallies length must be a multiple of 5, got {len(tallies)}"
            )
        per_round: Dict[int, RoundStats] = {}
        for at in range(0, len(tallies), 5):
            per_round[tallies[at]] = RoundStats(
                honest_messages=tallies[at + 1],
                corrupt_messages=tallies[at + 2],
                honest_signatures=tallies[at + 3],
                corrupt_signatures=tallies[at + 4],
            )
        return cls(rounds=rounds, per_round=per_round)

    @property
    def honest_messages(self) -> int:
        """Messages sent by parties that were honest at send time."""
        return sum(s.honest_messages for s in self.per_round.values())

    @property
    def corrupt_messages(self) -> int:
        """Messages sent by corrupted parties."""
        return sum(s.corrupt_messages for s in self.per_round.values())

    @property
    def total_messages(self) -> int:
        """All delivered messages."""
        return self.honest_messages + self.corrupt_messages

    @property
    def honest_signatures(self) -> int:
        """Signature objects inside honest-sent payloads (the paper's comm metric)."""
        return sum(s.honest_signatures for s in self.per_round.values())

    @property
    def total_signatures(self) -> int:
        """Signature objects across all payloads, honest and corrupt."""
        return self.honest_signatures + sum(
            s.corrupt_signatures for s in self.per_round.values()
        )
