"""Execution tracing: record and render full message transcripts.

A :class:`Tracer` attached to :class:`~repro.network.simulator.SyncSimulator`
records every delivered message (round, sender, recipient, payload, sender
honesty at send time) plus corruption events.  Transcripts render as a
round-by-round ASCII timeline — handy for debugging a protocol, teaching
the FM iteration structure, or eyeballing what an adversary actually did.

Payloads are summarized, not deep-copied: tracing a 2^64-slot Proxcensus
must not blow up memory, so each payload is reduced to a short structural
description at record time (dict keys, tuple arity, signature markers).

Where the records *go* is a pluggable :class:`TraceSink`.  The default
:class:`MemoryTraceSink` keeps the full transcript in memory and renders
it (the historical behavior, unchanged byte for byte); the streaming
:class:`~repro.obs.JsonlTraceSink` writes each record to disk as it
arrives and holds nothing, which is what lets traced thousand-trial
plans run in bounded memory.  This module stays below the ``obs`` layer
in the import DAG — sinks that need wall-clock time or filesystem layout
live up there and only *subclass* :class:`TraceSink`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from .faults import FaultEvent
from .messages import PARALLEL_KEY
from .metrics import count_signatures

__all__ = [
    "FaultEvent",
    "MemoryTraceSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "summarize_payload",
]


def summarize_payload(payload: Any, depth: int = 0) -> str:
    """A short, bounded structural description of a message payload.

    Deterministic by construction: unordered containers (sets, dict key
    order) are sorted before rendering, so the same payload always
    summarizes to the same string — trace files and rendered timelines
    are diffable across runs.
    """
    if depth > 3:
        return "…"
    if payload is None:
        return "∅"
    if isinstance(payload, bool):
        return str(payload)
    if isinstance(payload, int):
        return str(payload) if abs(payload) < 10 ** 6 else f"int({payload.bit_length()}b)"
    if isinstance(payload, str):
        return repr(payload if len(payload) <= 12 else payload[:9] + "...")
    if isinstance(payload, bytes):
        return f"bytes[{len(payload)}]"
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        if type(payload).__module__.startswith("repro.crypto"):
            return f"<{type(payload).__name__.lstrip('_')}>"
        return type(payload).__name__
    if isinstance(payload, dict):
        if PARALLEL_KEY in payload and isinstance(payload[PARALLEL_KEY], dict):
            inner = payload[PARALLEL_KEY]
            parts = ", ".join(
                f"{tag}: {summarize_payload(sub, depth + 1)}"
                for tag, sub in sorted(inner.items())
            )
            return f"∥{{{parts}}}"
        parts = ", ".join(
            f"{key}={summarize_payload(value, depth + 1)}"
            for key, value in list(sorted(payload.items(), key=lambda kv: str(kv[0])))[:4]
        )
        suffix = ", …" if len(payload) > 4 else ""
        return f"{{{parts}{suffix}}}"
    if isinstance(payload, (set, frozenset)):
        # Sets iterate in hash order; sort the *summaries* so the
        # description is one deterministic string per value.
        items = sorted(summarize_payload(item, depth + 1) for item in payload)
        shown = ", ".join(items[:3])
        suffix = ", …" if len(items) > 3 else ""
        return f"{{{shown}{suffix}}}"
    if isinstance(payload, (list, tuple)):
        items = ", ".join(summarize_payload(item, depth + 1) for item in payload[:3])
        suffix = ", …" if len(payload) > 3 else ""
        return f"({items}{suffix})"
    return type(payload).__name__


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message.

    ``signatures`` is the :func:`~repro.network.metrics.count_signatures`
    tally of the original payload, stamped at record time — the summary
    string alone cannot recover it, and replay tooling
    (``repro trace --stats``) cross-checks per-round signature totals
    against :class:`~repro.network.metrics.RunMetrics`.
    """

    round_index: int
    sender: int
    recipient: int
    summary: str
    sender_honest: bool
    signatures: int = 0


class TraceSink:
    """Where trace records go.  Subclasses override the three hooks.

    The simulator-facing :class:`Tracer` reduces payloads to
    :class:`TraceEvent` records and corruption pairs, then hands them
    here one at a time.  A sink may accumulate them (``MemoryTraceSink``),
    stream them to disk (:class:`repro.obs.JsonlTraceSink`), or fan them
    out to several sinks at once (:class:`repro.obs.FanoutSink`).
    """

    def record_event(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def record_corruption(self, round_index: int, pid: int) -> None:
        raise NotImplementedError

    def record_fault(self, event: FaultEvent) -> None:
        """Default is a no-op: sinks that predate fault injection keep
        working unchanged, and fault-free executions never call this."""

    def close(self) -> None:
        """Flush/finalize; default is a no-op for unbuffered sinks."""


class MemoryTraceSink(TraceSink):
    """The historical in-memory transcript: full event list plus render.

    Events are indexed by round *at record time* (``_by_round``), so
    :meth:`events_in_round` and :meth:`render` are linear in the events
    they touch — the old implementation re-filtered the full event list
    once per round, a quadratic scan on long executions.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.corruptions: List[Tuple[int, int]] = []  # (round, pid)
        self.faults: List[FaultEvent] = []
        self._by_round: Dict[int, List[TraceEvent]] = {}
        self._faults_by_round: Dict[int, List[FaultEvent]] = {}

    def record_event(self, event: TraceEvent) -> None:
        self.events.append(event)
        bucket = self._by_round.get(event.round_index)
        if bucket is None:
            bucket = self._by_round[event.round_index] = []
        bucket.append(event)

    def record_corruption(self, round_index: int, pid: int) -> None:
        self.corruptions.append((round_index, pid))

    def record_fault(self, event: FaultEvent) -> None:
        self.faults.append(event)
        bucket = self._faults_by_round.get(event.round_index)
        if bucket is None:
            bucket = self._faults_by_round[event.round_index] = []
        bucket.append(event)

    @property
    def rounds(self) -> int:
        """Highest round with a recorded event."""
        return max(
            max(self._by_round, default=0),
            max(self._faults_by_round, default=0),
        )

    def events_in_round(self, round_index: int) -> List[TraceEvent]:
        """All events delivered in one round (shared list — don't mutate)."""
        return self._by_round.get(round_index, [])

    def faults_in_round(self, round_index: int) -> List[FaultEvent]:
        """All faults injected in one round (shared list — don't mutate)."""
        return self._faults_by_round.get(round_index, [])

    def render(self, max_payload_width: int = 60) -> str:
        """Round-by-round ASCII timeline of the execution."""
        lines: List[str] = []
        corrupted_at: Dict[int, List[int]] = {}
        for round_index, pid in self.corruptions:
            corrupted_at.setdefault(round_index, []).append(pid)
        for round_index in range(0, self.rounds + 1):
            events = self.events_in_round(round_index)
            faults = self.faults_in_round(round_index)
            if not events and not faults and round_index not in corrupted_at:
                continue
            lines.append(f"── round {round_index} " + "─" * 40)
            if round_index in corrupted_at:
                pids = ", ".join(f"P{p}" for p in corrupted_at[round_index])
                lines.append(f"   ⚡ corrupted: {pids}")
            # Injected faults, one line per (kind, sender, detail) group.
            fault_grouped: Dict[Tuple[str, int, int], List[int]] = {}
            for fault in faults:
                key = (fault.kind, fault.sender, fault.detail or 0)
                fault_grouped.setdefault(key, []).append(fault.recipient)
            for (kind, sender, detail), recipients in sorted(fault_grouped.items()):
                label = f"{kind} +{detail}" if kind == "delay" else kind
                lines.append(f"   ✂ P{sender} ⇢ {sorted(recipients)}: {label}")
            # Broadcasts collapse into one line per (sender, summary).
            grouped: Dict[Tuple[int, str, bool], List[int]] = {}
            for event in events:
                key = (event.sender, event.summary, event.sender_honest)
                grouped.setdefault(key, []).append(event.recipient)
            for (sender, summary, honest), recipients in sorted(grouped.items()):
                marker = " " if honest else "!"
                if len(recipients) == len({e.recipient for e in events if e.sender == sender}) and len(set(recipients)) > 2:
                    target = "→ all" if len(set(recipients)) >= self._population(events) else f"→ {sorted(set(recipients))}"
                else:
                    target = f"→ {sorted(set(recipients))}"
                clipped = summary if len(summary) <= max_payload_width else summary[: max_payload_width - 1] + "…"
                lines.append(f" {marker} P{sender} {target}: {clipped}")
        return "\n".join(lines)

    @staticmethod
    def _population(events: List[TraceEvent]) -> int:
        return len({e.recipient for e in events})


class Tracer:
    """Reduces simulator deliveries to trace records and feeds a sink.

    ``Tracer()`` keeps the historical behavior exactly: records go to a
    fresh :class:`MemoryTraceSink`, and ``events`` / ``corruptions`` /
    ``rounds`` / ``events_in_round`` / ``render`` proxy through to it.
    With a streaming sink those accessors raise ``AttributeError`` —
    deliberately: a sink that cannot answer them is one that did not
    accumulate the transcript, which is the whole point.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink: TraceSink = MemoryTraceSink() if sink is None else sink
        self._known_corrupted: Set[int] = set()

    def record_message(
        self, round_index: int, sender: int, recipient: int, payload: Any,
        sender_honest: bool,
    ) -> None:
        """Record one delivered message (payload summarized, not copied)."""
        self.sink.record_event(
            TraceEvent(
                round_index=round_index,
                sender=sender,
                recipient=recipient,
                summary=summarize_payload(payload),
                sender_honest=sender_honest,
                signatures=count_signatures(payload),
            )
        )

    def record_corruptions(self, round_index: int, corrupted: Set[int]) -> None:
        for pid in sorted(corrupted - self._known_corrupted):
            self.sink.record_corruption(round_index, pid)
            self._known_corrupted.add(pid)

    def record_fault(
        self, round_index: int, kind: str, sender: int, recipient: int,
        detail: Optional[int] = None,
    ) -> None:
        """Record one injected network fault (loss/delay/partition/...)."""
        self.sink.record_fault(
            FaultEvent(
                round_index=round_index,
                kind=kind,
                sender=sender,
                recipient=recipient,
                detail=detail,
            )
        )

    def close(self) -> None:
        self.sink.close()

    # ── in-memory transcript accessors (MemoryTraceSink only) ─────────

    @property
    def events(self) -> List[TraceEvent]:
        return self.sink.events

    @property
    def corruptions(self) -> List[Tuple[int, int]]:
        return self.sink.corruptions

    @property
    def faults(self) -> List[FaultEvent]:
        return self.sink.faults

    @property
    def rounds(self) -> int:
        return self.sink.rounds

    def events_in_round(self, round_index: int) -> List[TraceEvent]:
        return self.sink.events_in_round(round_index)

    def faults_in_round(self, round_index: int) -> List[FaultEvent]:
        return self.sink.faults_in_round(round_index)

    def render(self, max_payload_width: int = 60) -> str:
        return self.sink.render(max_payload_width)
