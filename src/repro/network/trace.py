"""Execution tracing: record and render full message transcripts.

A :class:`Tracer` attached to :class:`~repro.network.simulator.SyncSimulator`
records every delivered message (round, sender, recipient, payload, sender
honesty at send time) plus corruption events.  Transcripts render as a
round-by-round ASCII timeline — handy for debugging a protocol, teaching
the FM iteration structure, or eyeballing what an adversary actually did.

Payloads are summarized, not deep-copied: tracing a 2^64-slot Proxcensus
must not blow up memory, so each payload is reduced to a short structural
description at record time (dict keys, tuple arity, signature markers).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from .messages import PARALLEL_KEY

__all__ = ["TraceEvent", "Tracer", "summarize_payload"]


def summarize_payload(payload: Any, depth: int = 0) -> str:
    """A short, bounded structural description of a message payload."""
    if depth > 3:
        return "…"
    if payload is None:
        return "∅"
    if isinstance(payload, bool):
        return str(payload)
    if isinstance(payload, int):
        return str(payload) if abs(payload) < 10 ** 6 else f"int({payload.bit_length()}b)"
    if isinstance(payload, str):
        return repr(payload if len(payload) <= 12 else payload[:9] + "...")
    if isinstance(payload, bytes):
        return f"bytes[{len(payload)}]"
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        if type(payload).__module__.startswith("repro.crypto"):
            return f"<{type(payload).__name__.lstrip('_')}>"
        return type(payload).__name__
    if isinstance(payload, dict):
        if PARALLEL_KEY in payload and isinstance(payload[PARALLEL_KEY], dict):
            inner = payload[PARALLEL_KEY]
            parts = ", ".join(
                f"{tag}: {summarize_payload(sub, depth + 1)}"
                for tag, sub in sorted(inner.items())
            )
            return f"∥{{{parts}}}"
        parts = ", ".join(
            f"{key}={summarize_payload(value, depth + 1)}"
            for key, value in list(sorted(payload.items(), key=lambda kv: str(kv[0])))[:4]
        )
        suffix = ", …" if len(payload) > 4 else ""
        return f"{{{parts}{suffix}}}"
    if isinstance(payload, (list, tuple)):
        items = ", ".join(summarize_payload(item, depth + 1) for item in payload[:3])
        suffix = ", …" if len(payload) > 3 else ""
        return f"({items}{suffix})"
    return type(payload).__name__


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    round_index: int
    sender: int
    recipient: int
    summary: str
    sender_honest: bool


@dataclass
class Tracer:
    """Collects message events and corruption history during a run."""

    events: List[TraceEvent] = field(default_factory=list)
    corruptions: List[Tuple[int, int]] = field(default_factory=list)  # (round, pid)
    _known_corrupted: Set[int] = field(default_factory=set)

    def record_message(
        self, round_index: int, sender: int, recipient: int, payload: Any,
        sender_honest: bool,
    ) -> None:
        """Record one delivered message (payload summarized, not copied)."""
        self.events.append(
            TraceEvent(
                round_index=round_index,
                sender=sender,
                recipient=recipient,
                summary=summarize_payload(payload),
                sender_honest=sender_honest,
            )
        )

    def record_corruptions(self, round_index: int, corrupted: Set[int]) -> None:
        for pid in sorted(corrupted - self._known_corrupted):
            self.corruptions.append((round_index, pid))
            self._known_corrupted.add(pid)

    @property
    def rounds(self) -> int:
        """Highest round with a recorded event."""
        return max((e.round_index for e in self.events), default=0)

    def events_in_round(self, round_index: int) -> List[TraceEvent]:
        """All events delivered in one round."""
        return [e for e in self.events if e.round_index == round_index]

    def render(self, max_payload_width: int = 60) -> str:
        """Round-by-round ASCII timeline of the execution."""
        lines: List[str] = []
        corrupted_at: Dict[int, List[int]] = {}
        for round_index, pid in self.corruptions:
            corrupted_at.setdefault(round_index, []).append(pid)
        for round_index in range(0, self.rounds + 1):
            events = self.events_in_round(round_index)
            if not events and round_index not in corrupted_at:
                continue
            lines.append(f"── round {round_index} " + "─" * 40)
            if round_index in corrupted_at:
                pids = ", ".join(f"P{p}" for p in corrupted_at[round_index])
                lines.append(f"   ⚡ corrupted: {pids}")
            # Broadcasts collapse into one line per (sender, summary).
            grouped: Dict[Tuple[int, str, bool], List[int]] = {}
            for event in events:
                key = (event.sender, event.summary, event.sender_honest)
                grouped.setdefault(key, []).append(event.recipient)
            for (sender, summary, honest), recipients in sorted(grouped.items()):
                marker = " " if honest else "!"
                if len(recipients) == len({e.recipient for e in events if e.sender == sender}) and len(set(recipients)) > 2:
                    target = "→ all" if len(set(recipients)) >= self._population(events) else f"→ {sorted(set(recipients))}"
                else:
                    target = f"→ {sorted(set(recipients))}"
                clipped = summary if len(summary) <= max_payload_width else summary[: max_payload_width - 1] + "…"
                lines.append(f" {marker} P{sender} {target}: {clipped}")
        return "\n".join(lines)

    @staticmethod
    def _population(events: List[TraceEvent]) -> int:
        return len({e.recipient for e in events})
