"""Deterministic fault injection: loss, delay, partitions, crash-recovery.

The paper's model (§2.1) is a clean synchronous network: every message an
honest party sends in round ``r`` arrives in round ``r``.  Production
networks do not behave — they drop, delay, partition, and lose whole
nodes for a while — and the interesting empirical question is how the
paper's κ+1 / 3κ/2 round counts and 2^-κ error bounds degrade as the
synchrony assumption bends (the bridge to mobile-sluggish synchronous BFT
and probabilistic BFT in PAPERS.md).

A :class:`FaultPlan` is plain frozen data describing *adversarial
network* behavior, orthogonal to the Byzantine adversary:

* **loss** — every non-self message is dropped i.i.d. with probability
  ``loss``;
* **delay** — every surviving non-self message is deferred i.i.d. with
  probability ``delay`` by a uniform 1..``max_delay`` rounds;
* **partitions** — during ``start <= r < heal`` messages crossing a
  group boundary are dropped (parties in no listed group form one
  implicit "rest" group); ``heal=None`` never heals;
* **crashes** — party ``pid`` is offline for ``down <= r < up``: nothing
  it sends is delivered and nothing sent to it arrives, but its program
  keeps running on empty inboxes and resumes cleanly on recovery (the
  crash-*recover* / mobile-sluggish model, not fail-stop);
* **dynamic membership** — with ``epoch_length > 0``, epoch ``e`` is
  rounds ``e*L+1 .. (e+1)*L`` and the validator set
  ``disabled[e % len(disabled)]`` is offline for the epoch — a live
  disabled-validator list rotated per epoch (the negative-UNL pattern).

Determinism contract (load-bearing, pinned by ``tests/chaos`` and
``tests/network/test_faults.py``): every loss/delay decision draws from
one :class:`random.Random` seeded from the simulator's master RNG, in a
fixed iteration order, so ``(seed, plan)`` fully determines the
execution — byte-identical across worker counts, serial vs pooled.  A
simulator with ``faults=None`` never touches this module and is
byte-identical to the pre-fault-layer code.

Delivery semantics, explicitly: the synchronous inbox holds at most one
message per ``(sender, recipient)`` per round.  Current-round deliveries
claim their slot first; delayed copies drain afterwards, freshest send
first, and a copy that finds its slot taken is discarded as stale.
Self-delivery (``sender == recipient``) is internal state, not network
traffic — no fault ever touches it.  Delayed messages are re-checked
against partition/offline state *at the delivery round* (a healed
partition releases them; a crashed recipient loses them); metrics tally
them in the round they actually arrive, with sender honesty frozen at
send time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["Crash", "FaultEvent", "FaultInjector", "FaultPlan", "Partition"]


@dataclass(frozen=True)
class Partition:
    """One scheduled network split: ``groups`` cannot talk across during
    rounds ``start <= r < heal`` (``heal=None`` = never heals)."""

    groups: Tuple[Tuple[int, ...], ...]
    start: int = 1
    heal: Optional[int] = None

    def __post_init__(self) -> None:
        groups = tuple(tuple(group) for group in self.groups)
        object.__setattr__(self, "groups", groups)
        if not groups or not any(groups):
            raise ValueError(
                "a partition needs at least one non-empty group "
                "(unlisted parties form the implicit rest group)"
            )
        seen: set = set()
        for group in groups:
            for pid in group:
                if pid in seen:
                    raise ValueError(f"party {pid} appears in two partition groups")
                seen.add(pid)
        if self.start < 1:
            raise ValueError(f"partition start must be >= 1, got {self.start}")
        if self.heal is not None and self.heal <= self.start:
            raise ValueError(
                f"partition heal round must exceed start, got "
                f"start={self.start} heal={self.heal}"
            )

    def active(self, round_index: int) -> bool:
        return self.start <= round_index and (
            self.heal is None or round_index < self.heal
        )

    def separates(self, sender: int, recipient: int) -> bool:
        """True when the two parties sit in different groups."""
        sender_group = recipient_group = -1  # -1 = the implicit rest group
        for number, group in enumerate(self.groups):
            if sender in group:
                sender_group = number
            if recipient in group:
                recipient_group = number
        return sender_group != recipient_group


@dataclass(frozen=True)
class Crash:
    """One crash-recover window: ``pid`` is offline for ``down <= r < up``."""

    pid: int
    down: int
    up: int

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ValueError(f"crash pid must be >= 0, got {self.pid}")
        if not (1 <= self.down < self.up):
            raise ValueError(
                f"need 1 <= down < up, got down={self.down} up={self.up}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of adversarial network behavior.

    Plain frozen data: picklable, hashable, and buildable from registry
    params (:func:`repro.engine.registry.build_fault_plan`), so a
    :class:`~repro.engine.plan.TrialSpec` can name one and worker
    processes reconstruct it bit-identically.
    """

    loss: float = 0.0
    delay: float = 0.0
    max_delay: int = 1
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[Crash, ...] = ()
    epoch_length: int = 0
    disabled: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss <= 1.0):
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if not (0.0 <= self.delay <= 1.0):
            raise ValueError(f"delay must be in [0, 1], got {self.delay}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(
            self, "disabled", tuple(tuple(group) for group in self.disabled)
        )
        if self.epoch_length < 0:
            raise ValueError(
                f"epoch_length must be >= 0, got {self.epoch_length}"
            )
        if self.epoch_length and not self.disabled:
            raise ValueError("epoch_length > 0 needs a disabled rotation")
        if self.disabled and not self.epoch_length:
            raise ValueError("a disabled rotation needs epoch_length > 0")

    def is_noop(self) -> bool:
        """True when this plan can never affect a delivery."""
        return (
            self.loss == 0.0
            and self.delay == 0.0
            and not self.partitions
            and not self.crashes
            and not self.epoch_length
        )

    def offline(self, round_index: int) -> FrozenSet[int]:
        """Parties offline in one round (crash windows + rotated membership)."""
        down = {
            crash.pid
            for crash in self.crashes
            if crash.down <= round_index < crash.up
        }
        if self.epoch_length:
            epoch = (round_index - 1) // self.epoch_length
            down.update(self.disabled[epoch % len(self.disabled)])
        return frozenset(down)

    def partitioned(self, round_index: int, sender: int, recipient: int) -> bool:
        """True when an active partition separates sender from recipient."""
        return any(
            partition.active(round_index)
            and partition.separates(sender, recipient)
            for partition in self.partitions
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for traces (``repro trace`` replays show these).

    ``kind`` is one of ``loss`` / ``delay`` / ``partition`` / ``offline``
    / ``stale``; ``detail`` carries the delay length for ``delay`` events
    and the suppression reason for late-dropped delayed messages.
    """

    round_index: int
    kind: str
    sender: int
    recipient: int
    detail: Optional[int] = None


@dataclass
class _InFlight:
    """A delayed message waiting for its delivery round."""

    sent_round: int
    sender: int
    recipient: int
    payload: Any
    sender_honest: bool


@dataclass
class FaultCounts:
    """Injection tallies for one execution (telemetry/benchmark summary)."""

    delivered: int = 0
    delivered_late: int = 0
    lost: int = 0
    delayed: int = 0
    partitioned: int = 0
    offline: int = 0
    stale: int = 0

    @property
    def suppressed(self) -> int:
        """Messages the network ate outright (everything but delays)."""
        return self.lost + self.partitioned + self.offline + self.stale


class FaultInjector:
    """Executes one :class:`FaultPlan` against one simulated run.

    Created per execution by :class:`~repro.network.simulator.SyncSimulator`
    with an RNG derived from the master seed; holds the delay queue and
    the per-run fault tallies.  All decisions are made in the simulator's
    fixed delivery order, so the injected fault sequence is a pure
    function of ``(plan, seed)``.
    """

    def __init__(
        self, plan: FaultPlan, num_parties: int, rng: random.Random
    ) -> None:
        self.plan = plan
        self.num_parties = num_parties
        self.rng = rng
        self.counts = FaultCounts()
        self._deferred: Dict[int, List[_InFlight]] = {}

    def offline(self, round_index: int) -> FrozenSet[int]:
        return self.plan.offline(round_index)

    def route(
        self, round_index: int, sender: int, recipient: int,
        offline: FrozenSet[int],
    ) -> Tuple[str, int]:
        """Decide one current-round message's fate.

        Returns ``(kind, delay_rounds)`` where kind is ``deliver`` or a
        :class:`FaultEvent` kind.  Self-delivery is always ``deliver``
        and draws no randomness — it is party-internal state.
        """
        if sender == recipient:
            return "deliver", 0
        if sender in offline or recipient in offline:
            return "offline", 0
        if self.plan.partitioned(round_index, sender, recipient):
            return "partition", 0
        if self.plan.loss and self.rng.random() < self.plan.loss:
            return "loss", 0
        if self.plan.delay and self.rng.random() < self.plan.delay:
            return "delay", self.rng.randint(1, self.plan.max_delay)
        return "deliver", 0

    def defer(
        self, round_index: int, delay: int, sender: int, recipient: int,
        payload: Any, sender_honest: bool,
    ) -> None:
        """Queue a delayed message for round ``round_index + delay``."""
        self._deferred.setdefault(round_index + delay, []).append(
            _InFlight(round_index, sender, recipient, payload, sender_honest)
        )

    def due(self, round_index: int) -> List[_InFlight]:
        """Delayed messages arriving this round, freshest send first.

        Freshest-first ordering makes the stale-copy rule uniform: when
        several copies contend for one ``(sender, recipient)`` inbox
        slot, the most recently sent one wins and older copies are
        discarded (see the module docstring).
        """
        entries = self._deferred.pop(round_index, [])
        entries.sort(key=lambda m: (-m.sent_round, m.sender, m.recipient))
        return entries

    def pending(self) -> int:
        """Delayed messages still in flight (undelivered at run end)."""
        return sum(len(entries) for entries in self._deferred.values())
