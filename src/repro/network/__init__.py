"""Synchronous authenticated network simulator and party-program model."""

from .errors import AdversaryBudgetError, RoundLimitError, SimulationError
from .faults import Crash, FaultEvent, FaultInjector, FaultPlan, Partition
from .messages import (
    Broadcast,
    Inbox,
    Outbox,
    get_field,
    get_int,
    get_int_in_range,
    get_pair,
    normalize_outbox,
)
from .metrics import RoundStats, RunMetrics, count_signatures
from .party import Context, ProgramFactory, resume_with, run_parallel
from .simulator import ExecutionResult, SyncSimulator, run_protocol
from .trace import TraceEvent, Tracer, summarize_payload

__all__ = [
    "AdversaryBudgetError",
    "Broadcast",
    "Context",
    "Crash",
    "ExecutionResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Inbox",
    "Partition",
    "Outbox",
    "ProgramFactory",
    "RoundLimitError",
    "RoundStats",
    "RunMetrics",
    "SimulationError",
    "SyncSimulator",
    "TraceEvent",
    "Tracer",
    "count_signatures",
    "summarize_payload",
    "get_field",
    "get_int",
    "get_int_in_range",
    "get_pair",
    "normalize_outbox",
    "resume_with",
    "run_parallel",
    "run_protocol",
]
