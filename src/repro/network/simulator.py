"""The synchronous network simulator.

Drives generator party programs (see :mod:`repro.network.party`) round by
round over authenticated point-to-point channels, with a strongly-rushing,
adaptive Byzantine adversary interposed between message *computation* and
message *delivery* — exactly the paper's §2.1 model.

The simulator is single-process and fully deterministic given its seed: the
per-party RNGs, the adversary RNG and the (ideal) coin secret all derive
from it.  Every experiment in ``benchmarks/`` is therefore reproducible
bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from ..adversary.base import Adversary, AdversaryEnv, RoundDecision, RoundView
from ..crypto.keys import CryptoSuite
from .errors import AdversaryBudgetError, RoundLimitError, SimulationError
from .faults import FaultCounts, FaultInjector, FaultPlan
from .messages import Outbox, normalize_outbox
from .metrics import RunMetrics, count_signatures, count_signatures_reference
from .party import Context, ProgramFactory
from .trace import Tracer

__all__ = ["ExecutionResult", "SyncSimulator", "run_protocol"]


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution.

    Field contract (load-bearing for the engine's compact result
    transport, :mod:`repro.engine.transport`, which packs and rebuilds
    these objects across process boundaries): ``outputs`` and
    ``finish_rounds`` are always recorded *together* — a party appears in
    both or in neither — and a party that never terminates (e.g. a
    corrupted program running past every honest finish) is simply
    **absent** from both dicts, never mapped to ``None``.  ``inputs`` is
    exactly ``dict(enumerate(inputs))`` for the inputs the run was given.
    """

    outputs: Dict[int, Any]
    corrupted: Set[int]
    metrics: RunMetrics
    inputs: Dict[int, Any]
    # Round in which each party's program returned (0 = before round 1).
    # Fixed-round protocols finish everyone in the same round; protocols
    # with probabilistic termination visibly do not — see
    # repro.core.probabilistic.
    finish_rounds: Dict[int, int] = field(default_factory=dict)

    @property
    def honest_parties(self) -> List[int]:
        """Ids of parties never corrupted during the run."""
        return sorted(set(self.inputs) - self.corrupted)

    @property
    def honest_outputs(self) -> Dict[int, Any]:
        """Outputs restricted to honest parties."""
        return {
            pid: self.outputs[pid]
            for pid in self.honest_parties
            if pid in self.outputs
        }

    def honest_agree(self) -> bool:
        """Did all honest parties produce the same output?"""
        values = list(self.honest_outputs.values())
        return all(value == values[0] for value in values) if values else True


class SyncSimulator:
    """A configured synchronous network ready to run party programs."""

    def __init__(
        self,
        num_parties: int,
        max_faulty: int,
        crypto: CryptoSuite,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        session: str = "run",
        max_rounds: int = 4096,
        tracer: Optional[Tracer] = None,
        collect_signatures: bool = True,
        legacy_metrics: bool = False,
        faults: Optional[FaultPlan] = None,
        collector: Optional[Any] = None,
    ) -> None:
        if crypto.num_parties != num_parties:
            raise SimulationError(
                f"crypto suite dealt for n={crypto.num_parties}, "
                f"simulator has n={num_parties}"
            )
        if not (0 <= max_faulty < num_parties):
            raise SimulationError(f"need 0 <= t < n, got t={max_faulty}")
        self.num_parties = num_parties
        self.max_faulty = max_faulty
        self.crypto = crypto
        self.adversary = adversary or Adversary()
        self.seed = seed
        self.session = session
        self.max_rounds = max_rounds
        self.tracer = tracer
        # collect_signatures=False skips the per-payload signature walk
        # entirely (message/round tallies stay exact, signature tallies
        # read 0) — the right setting for agreement-rate sweeps, where
        # the walk is pure overhead.  legacy_metrics=True restores the
        # pre-optimization per-message reference walk; it exists solely
        # so `repro bench --compare-baseline` can measure the win.
        self.collect_signatures = collect_signatures
        self.legacy_metrics = legacy_metrics
        # Fault injection (repro.network.faults): loss/delay/partition/
        # crash/membership faults applied at delivery time.  None keeps
        # the delivery path byte-identical to the pre-fault-layer code;
        # the legacy baseline predates faults and must stay a pure
        # measurement control, so combining them is an error.
        if faults is not None and legacy_metrics:
            raise SimulationError(
                "legacy_metrics is a benchmark baseline; it does not "
                "support fault injection"
            )
        self.faults = faults
        # Protocol-metrics collector (repro.obs.metrics.MetricsRegistry,
        # duck-typed here because network must not import obs): gets
        # on_message()/on_fault() callbacks from the delivery path, same
        # seam as the tracer.  collector=None keeps delivery byte-identical
        # to the pre-metrics code; the legacy baseline predates the seam
        # and must stay a pure measurement control.
        if collector is not None and legacy_metrics:
            raise SimulationError(
                "legacy_metrics is a benchmark baseline; it does not "
                "support metrics collection"
            )
        self.collector = collector
        # Per-run injection tallies of the most recent run() with faults.
        self.last_fault_counts: Optional[FaultCounts] = None

    def run(self, factory: ProgramFactory, inputs: Sequence[Any]) -> ExecutionResult:
        """Execute ``factory(ctx_i, inputs[i])`` for every party to completion."""
        n = self.num_parties
        if len(inputs) != n:
            raise SimulationError(f"need {n} inputs, got {len(inputs)}")
        input_map = dict(enumerate(inputs))
        master = random.Random(self.seed)
        party_seeds = [master.getrandbits(64) for _ in range(n)]
        adversary_rng = random.Random(master.getrandbits(64))
        # The fault RNG is drawn from the master strictly after the party
        # seeds and adversary seed, and only when a plan is present —
        # with faults=None the seed→randomness mapping is untouched and
        # every execution is byte-identical to the pre-fault-layer code.
        injector: Optional[FaultInjector] = None
        if self.faults is not None:
            injector = FaultInjector(
                self.faults, n, random.Random(master.getrandbits(64))
            )
            self.last_fault_counts = injector.counts

        self.adversary.setup(
            AdversaryEnv(
                num_parties=n,
                max_faulty=self.max_faulty,
                session=self.session,
                crypto=self.crypto,
                rng=adversary_rng,
                inputs=dict(input_map),
            )
        )
        corrupted: Set[int] = set(self.adversary.initial_corruptions())
        self._check_budget(corrupted)

        contexts = [
            Context(
                party_id=i,
                num_parties=n,
                max_faulty=self.max_faulty,
                session=self.session,
                crypto=self.crypto,
                rng=random.Random(party_seeds[i]),
            )
            for i in range(n)
        ]
        programs: List[Optional[Any]] = []
        outputs: Dict[int, Any] = {}
        finish_rounds: Dict[int, int] = {}
        pending: Dict[int, Outbox] = {}
        for i in range(n):
            program = factory(contexts[i], inputs[i])
            try:
                pending[i] = next(program)
                programs.append(program)
            except StopIteration as stop:
                outputs[i] = stop.value
                finish_rounds[i] = 0
                programs.append(None)
            except Exception:
                if i in corrupted:
                    programs.append(None)  # broken shadow: silent hereafter
                else:
                    raise

        metrics = RunMetrics()
        round_index = 0
        while self._honest_unfinished(outputs, corrupted):
            round_index += 1
            if round_index > self.max_rounds:
                raise RoundLimitError(
                    f"protocol exceeded {self.max_rounds} rounds; "
                    "fixed-round protocols must terminate — this is a bug"
                )
            normalized = {
                pid: normalize_outbox(outbox, n) for pid, outbox in pending.items()
            }
            for pid in range(n):
                normalized.setdefault(pid, {})
            decision = self.adversary.decide(
                RoundView(
                    round_index=round_index,
                    outboxes=normalized,
                    corrupted=frozenset(corrupted),
                )
            )
            corrupted = self._apply_decision(decision, corrupted, normalized)
            if self.tracer is not None:
                self.tracer.record_corruptions(round_index, corrupted)

            inboxes: Dict[int, Dict[int, Any]] = {pid: {} for pid in range(n)}
            if injector is not None:
                self._deliver_faulty(
                    round_index, normalized, corrupted, inboxes, metrics, injector
                )
            elif self.legacy_metrics:
                self._deliver_legacy(round_index, normalized, corrupted, inboxes, metrics)
            else:
                self._deliver(round_index, normalized, corrupted, inboxes, metrics)

            self.adversary.observe(
                round_index, {pid: inboxes[pid] for pid in corrupted}
            )

            pending = {}
            for pid in range(n):
                program = programs[pid]
                if program is None:
                    continue
                try:
                    pending[pid] = program.send(inboxes[pid])
                except StopIteration as stop:
                    outputs[pid] = stop.value
                    finish_rounds[pid] = round_index
                    programs[pid] = None
                except Exception:
                    if pid in corrupted:
                        programs[pid] = None  # broken shadow: silent hereafter
                    else:
                        raise
        metrics.rounds = round_index
        return ExecutionResult(
            outputs=outputs,
            corrupted=corrupted,
            metrics=metrics,
            inputs=input_map,
            finish_rounds=finish_rounds,
        )

    def _deliver(
        self,
        round_index: int,
        normalized: Dict[int, Dict[int, Any]],
        corrupted: Set[int],
        inboxes: Dict[int, Dict[int, Any]],
        metrics: RunMetrics,
    ) -> None:
        """Deliver one round's messages and tally metrics (the hot loop).

        Restructured for throughput: the round's tally object is fetched
        once, the tracer check is hoisted out of the per-message loop, and
        the signature walk runs once per distinct payload *object* per
        sender — a sender multicasting one payload to n recipients costs
        one walk, not n.  Tallies are bit-identical to the legacy
        per-message path (``legacy_metrics=True``).
        """
        tracer = self.tracer
        collector = self.collector
        collect = self.collect_signatures
        stats = None
        for sender in range(self.num_parties):
            outbox = normalized[sender]
            if not outbox:
                continue
            if stats is None:
                stats = metrics.round_stats(round_index)
            sender_honest = sender not in corrupted
            messages = 0
            signatures = 0
            if collect:
                # Payloads are alive for the whole round, so id() keys
                # are stable here.
                walked: Dict[int, int] = {}
                for recipient, payload in outbox.items():
                    inboxes[recipient][sender] = payload
                    key = id(payload)
                    count = walked.get(key)
                    if count is None:
                        count = walked[key] = count_signatures(payload)
                    signatures += count
                    messages += 1
            else:
                for recipient, payload in outbox.items():
                    inboxes[recipient][sender] = payload
                    messages += 1
            if sender_honest:
                stats.honest_messages += messages
                stats.honest_signatures += signatures
            else:
                stats.corrupt_messages += messages
                stats.corrupt_signatures += signatures
            if tracer is not None:
                for recipient, payload in outbox.items():
                    tracer.record_message(
                        round_index, sender, recipient, payload, sender_honest
                    )
            if collector is not None:
                for recipient, payload in outbox.items():
                    collector.on_message(
                        round_index, sender, recipient, payload, sender_honest
                    )

    def _deliver_faulty(
        self,
        round_index: int,
        normalized: Dict[int, Dict[int, Any]],
        corrupted: Set[int],
        inboxes: Dict[int, Dict[int, Any]],
        metrics: RunMetrics,
        injector: FaultInjector,
    ) -> None:
        """Deliver one round's messages through the fault injector.

        Same tally structure as :meth:`_deliver` (per-sender signature
        dedup, honesty split), restricted to messages that actually
        arrive: suppressed messages tally nothing, delayed messages
        tally in the round they arrive, with sender honesty frozen at
        send time.  With a no-op plan every message routes ``deliver``
        without consuming randomness, so tallies match :meth:`_deliver`
        exactly — pinned by ``tests/chaos/test_faults.py``.
        """
        tracer = self.tracer
        collector = self.collector
        collect = self.collect_signatures
        counts = injector.counts
        offline = injector.offline(round_index)
        stats = None
        for sender in range(self.num_parties):
            outbox = normalized[sender]
            if not outbox:
                continue
            if stats is None:
                stats = metrics.round_stats(round_index)
            sender_honest = sender not in corrupted
            messages = 0
            signatures = 0
            walked: Dict[int, int] = {}
            for recipient, payload in outbox.items():
                kind, delay = injector.route(round_index, sender, recipient, offline)
                if kind == "deliver":
                    inboxes[recipient][sender] = payload
                    messages += 1
                    counts.delivered += 1
                    if collect:
                        key = id(payload)
                        count = walked.get(key)
                        if count is None:
                            count = walked[key] = count_signatures(payload)
                        signatures += count
                    if tracer is not None:
                        tracer.record_message(
                            round_index, sender, recipient, payload, sender_honest
                        )
                    if collector is not None:
                        collector.on_message(
                            round_index, sender, recipient, payload, sender_honest
                        )
                    continue
                if kind == "delay":
                    injector.defer(
                        round_index, delay, sender, recipient, payload, sender_honest
                    )
                    counts.delayed += 1
                elif kind == "loss":
                    counts.lost += 1
                elif kind == "partition":
                    counts.partitioned += 1
                else:
                    counts.offline += 1
                if tracer is not None:
                    tracer.record_fault(
                        round_index, kind, sender, recipient,
                        delay if kind == "delay" else None,
                    )
                if collector is not None:
                    collector.on_fault(round_index, kind)
            if sender_honest:
                stats.honest_messages += messages
                stats.honest_signatures += signatures
            else:
                stats.corrupt_messages += messages
                stats.corrupt_signatures += signatures
        # Drain delayed messages due this round, freshest send first.  A
        # copy whose (sender, recipient) inbox slot is already taken —
        # by a current-round delivery or a fresher delayed copy — is
        # discarded as stale; a copy whose recipient is offline now, or
        # that an active partition still separates, is dropped late.
        for entry in injector.due(round_index):
            kind = None
            if entry.recipient in offline:
                kind = "offline"
            elif self.faults.partitioned(round_index, entry.sender, entry.recipient):
                kind = "partition"
            elif entry.sender in inboxes[entry.recipient]:
                kind = "stale"
            if kind is not None:
                if kind == "offline":
                    counts.offline += 1
                elif kind == "partition":
                    counts.partitioned += 1
                else:
                    counts.stale += 1
                if tracer is not None:
                    tracer.record_fault(
                        round_index, kind, entry.sender, entry.recipient, None
                    )
                if collector is not None:
                    collector.on_fault(round_index, kind)
                continue
            inboxes[entry.recipient][entry.sender] = entry.payload
            counts.delivered_late += 1
            if stats is None:
                stats = metrics.round_stats(round_index)
            signature_count = (
                count_signatures(entry.payload) if collect else 0
            )
            if entry.sender_honest:
                stats.honest_messages += 1
                stats.honest_signatures += signature_count
            else:
                stats.corrupt_messages += 1
                stats.corrupt_signatures += signature_count
            if tracer is not None:
                tracer.record_message(
                    round_index, entry.sender, entry.recipient, entry.payload,
                    entry.sender_honest,
                )
            if collector is not None:
                collector.on_message(
                    round_index, entry.sender, entry.recipient, entry.payload,
                    entry.sender_honest,
                )

    def _deliver_legacy(
        self,
        round_index: int,
        normalized: Dict[int, Dict[int, Any]],
        corrupted: Set[int],
        inboxes: Dict[int, Dict[int, Any]],
        metrics: RunMetrics,
    ) -> None:
        """Pre-optimization delivery: reference walk on every message.

        Benchmark baseline only (`repro bench --compare-baseline`); must
        stay behaviorally identical to :meth:`_deliver` with
        ``collect_signatures=True``.
        """
        for sender in range(self.num_parties):
            sender_honest = sender not in corrupted
            for recipient, payload in normalized[sender].items():
                inboxes[recipient][sender] = payload
                metrics.record(
                    round_index, sender_honest, count_signatures_reference(payload)
                )
                if self.tracer is not None:
                    self.tracer.record_message(
                        round_index, sender, recipient, payload, sender_honest
                    )

    def _honest_unfinished(self, outputs: Dict[int, Any], corrupted: Set[int]) -> bool:
        return any(
            pid not in outputs and pid not in corrupted
            for pid in range(self.num_parties)
        )

    def _apply_decision(
        self,
        decision: RoundDecision,
        corrupted: Set[int],
        normalized: Dict[int, Dict[int, Any]],
    ) -> Set[int]:
        for pid, outbox in decision.replace.items():
            if pid not in corrupted:
                raise SimulationError(
                    f"adversary tried to replace messages of honest party {pid} "
                    "without corrupting it"
                )
            normalized[pid] = normalize_outbox(outbox, self.num_parties)
        new_corrupted = set(corrupted)
        for pid, outbox in decision.corrupt.items():
            if not (0 <= pid < self.num_parties):
                raise SimulationError(f"adversary named nonexistent party {pid}")
            new_corrupted.add(pid)
            # Strongly rushing: replace (or drop, when None) the in-flight
            # round-r messages of the freshly corrupted party.
            normalized[pid] = normalize_outbox(outbox, self.num_parties)
        self._check_budget(new_corrupted)
        return new_corrupted

    def _check_budget(self, corrupted: Set[int]) -> None:
        if len(corrupted) > self.max_faulty:
            raise AdversaryBudgetError(
                f"adversary corrupted {len(corrupted)} parties, budget is "
                f"{self.max_faulty}"
            )
        for pid in corrupted:
            if not (0 <= pid < self.num_parties):
                raise SimulationError(f"adversary named nonexistent party {pid}")


def run_protocol(
    factory: ProgramFactory,
    inputs: Sequence[Any],
    max_faulty: int,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    session: str = "run",
    crypto: Optional[CryptoSuite] = None,
    max_rounds: int = 4096,
    faults: Optional[FaultPlan] = None,
    collector: Optional[Any] = None,
) -> ExecutionResult:
    """One-call convenience wrapper: deal ideal keys, build a simulator, run.

    ``crypto`` may be supplied to reuse key material across executions (key
    dealing dominates runtime for the real backend) or to select the real
    backend explicitly.
    """
    num_parties = len(inputs)
    if crypto is None:
        crypto = CryptoSuite.ideal(
            num_parties, max_faulty, random.Random(seed ^ 0x5E7_0000)
        )
    simulator = SyncSimulator(
        num_parties=num_parties,
        max_faulty=max_faulty,
        crypto=crypto,
        adversary=adversary,
        seed=seed,
        session=session,
        max_rounds=max_rounds,
        faults=faults,
        collector=collector,
    )
    return simulator.run(factory, inputs)
