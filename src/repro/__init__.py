"""Round-efficient fixed-round Byzantine Agreement via Proxcensus.

A full reproduction of Fitzi, Liu-Zhang & Loss, *"A New Way to Achieve
Round-Efficient Byzantine Agreement"* (PODC 2021): the Proxcensus protocol
family, the expand–coin–extract iteration paradigm, the two headline BA
protocols (κ+1 rounds for t < n/3; 3κ/2 rounds for t < n/2), executable
baselines, a synchronous network simulator with a strongly rushing
adaptive adversary, and the full cryptographic substrate (ideal and real
threshold signatures, common coins).

Quickstart::

    from repro import run_protocol, ba_one_third_program

    result = run_protocol(
        lambda ctx, bit: ba_one_third_program(ctx, bit, kappa=16),
        inputs=[1, 0, 1, 0], max_faulty=1, seed=7,
    )
    assert result.honest_agree()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .adversary import (
    Adversary,
    CrashAdversary,
    EavesdropCoinAdversary,
    GradeSplitAdversary,
    LastRoundCorruptionAdversary,
    LinearHalfStraddleAdversary,
    MalformedAdversary,
    OneThirdStraddleAdversary,
    PassiveAdversary,
    TwoFaceAdversary,
)
from .applications import NO_OP, replicated_log_program
from .core import (
    ba_one_half_generalized,
    ba_one_half_program,
    ba_one_third_chunked,
    ba_one_third_program,
    fm_probabilistic_program,
    dolev_strong_ba_program,
    dolev_strong_broadcast_program,
    extract,
    feldman_micali_program,
    ideal_coin_factory,
    micali_vaikuntanathan_program,
    multivalued_ba_program,
    mv_pki_program,
    pi_iter_program,
    threshold_coin_factory,
    turpin_coan_classic_program,
)
from .crypto import CryptoSuite, IdealCoin
from .engine import ParallelRunner, PlanResult, TrialPlan, TrialSpec
from .network import (
    ExecutionResult,
    RunMetrics,
    SyncSimulator,
    Tracer,
    run_protocol,
)
from .proxcensus import (
    ProxOutput,
    check_proxcensus_consistency,
    check_proxcensus_validity,
    prox_linear_half_program,
    prox_one_third_program,
    prox_quadratic_half_program,
    proxcast_player_replaceable_program,
    proxcast_program,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "CrashAdversary",
    "CryptoSuite",
    "EavesdropCoinAdversary",
    "ExecutionResult",
    "GradeSplitAdversary",
    "IdealCoin",
    "LastRoundCorruptionAdversary",
    "LinearHalfStraddleAdversary",
    "MalformedAdversary",
    "NO_OP",
    "OneThirdStraddleAdversary",
    "ParallelRunner",
    "PassiveAdversary",
    "PlanResult",
    "ProxOutput",
    "RunMetrics",
    "TrialPlan",
    "TrialSpec",
    "SyncSimulator",
    "Tracer",
    "TwoFaceAdversary",
    "ba_one_half_generalized",
    "ba_one_half_program",
    "ba_one_third_chunked",
    "ba_one_third_program",
    "fm_probabilistic_program",
    "replicated_log_program",
    "check_proxcensus_consistency",
    "check_proxcensus_validity",
    "dolev_strong_ba_program",
    "dolev_strong_broadcast_program",
    "extract",
    "feldman_micali_program",
    "ideal_coin_factory",
    "micali_vaikuntanathan_program",
    "multivalued_ba_program",
    "mv_pki_program",
    "pi_iter_program",
    "prox_linear_half_program",
    "prox_one_third_program",
    "prox_quadratic_half_program",
    "proxcast_player_replaceable_program",
    "proxcast_program",
    "run_protocol",
    "threshold_coin_factory",
    "turpin_coan_classic_program",
]
