"""Random oracle (hash) utilities.

The paper proves its coin in the random-oracle model: the coin value is the
hash of a unique threshold signature, mapped into the coin's range.  This
module centralizes all hashing so that domain separation is enforced in one
place and every byte fed into SHA-256 is canonical (no ``repr``-based
hashing, which would be Python-version dependent).
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

__all__ = ["encode_term", "oracle_digest", "hash_to_int", "hash_to_range"]

Term = Union[int, str, bytes, bool, None, Tuple["Term", ...]]


def encode_term(term: Term) -> bytes:
    """Canonical, injective encoding of nested tuples/ints/strings/bytes.

    The encoding is length-prefixed, so distinct terms never collide as byte
    strings.  Protocol messages are hashed through this, never via ``str``.
    """
    if term is None:
        return b"N"
    if isinstance(term, bool):  # must precede int: bool is a subclass of int
        return b"B1" if term else b"B0"
    if isinstance(term, int):
        raw = term.to_bytes((term.bit_length() + 8) // 8 or 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if isinstance(term, str):
        raw = term.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if isinstance(term, bytes):
        return b"Y" + len(term).to_bytes(4, "big") + term
    if isinstance(term, tuple):
        parts = [encode_term(part) for part in term]
        body = b"".join(parts)
        return b"T" + len(parts).to_bytes(4, "big") + body
    raise TypeError(f"cannot canonically encode {type(term).__name__}")


def oracle_digest(domain: str, term: Term) -> bytes:
    """SHA-256 digest of ``term`` under domain-separation tag ``domain``."""
    h = hashlib.sha256()
    h.update(domain.encode("utf-8"))
    h.update(b"\x00")
    h.update(encode_term(term))
    return h.digest()


def hash_to_int(domain: str, term: Term, bits: int = 256) -> int:
    """Hash into a ``bits``-bit integer (counter-mode expansion for > 256)."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    output = b""
    counter = 0
    while len(output) * 8 < bits:
        output += oracle_digest(domain, (counter, term))
        counter += 1
    return int.from_bytes(output, "big") % (1 << bits)


def hash_to_range(domain: str, term: Term, low: int, high: int) -> int:
    """Hash into the inclusive integer range ``[low, high]``.

    Uses 128 bits of slack beyond the range size, so the modular bias is
    below ``2^-128`` — negligible next to the protocol's own error terms.
    """
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    span = high - low + 1
    bits = span.bit_length() + 128
    return low + hash_to_int(domain, term, bits) % span
