"""Trusted setup: deal all key material a protocol run needs.

The paper assumes "all parties start the protocol after the setup phase has
been completed" (§2.2), with setup done by a trusted dealer or a broadcast
channel.  :class:`CryptoSuite` plays that dealer.  One suite holds:

* ``plain``  — per-party signatures (proxcast's dealer PKI / PKI-mode runs),
* ``quorum`` — an ``(n - t)``-of-``n`` unique threshold scheme
  (Proxcensus for t < n/2 combines ``n - t`` shares), and
* ``coin``   — a ``(t + 1)``-of-``n`` unique threshold scheme
  (the common coin needs unpredictability until the first honest share).

Backends: :meth:`CryptoSuite.ideal` (default; the paper's idealization) or
:meth:`CryptoSuite.real` (RSA-FDH + Shoup threshold RSA).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .ideal import IdealSignatureScheme, IdealThresholdScheme
from .interfaces import SignatureScheme, ThresholdSignatureScheme
from .rsa import RsaSignatureScheme
from .threshold_rsa import generate_threshold_rsa

__all__ = ["CryptoSuite"]


@dataclass(frozen=True)
class CryptoSuite:
    """All dealt key material for one protocol session."""

    num_parties: int
    max_faulty: int
    plain: SignatureScheme
    quorum: ThresholdSignatureScheme
    coin: ThresholdSignatureScheme

    @classmethod
    def ideal(cls, num_parties: int, max_faulty: int, rng: random.Random) -> "CryptoSuite":
        """Idealized backend — fast; matches the paper's §2.2 treatment."""
        cls._check(num_parties, max_faulty)
        return cls(
            num_parties=num_parties,
            max_faulty=max_faulty,
            plain=IdealSignatureScheme(num_parties, rng),
            quorum=IdealThresholdScheme(num_parties, num_parties - max_faulty, rng),
            coin=IdealThresholdScheme(num_parties, max_faulty + 1, rng),
        )

    @classmethod
    def real(
        cls,
        num_parties: int,
        max_faulty: int,
        rng: random.Random,
        bits: int = 256,
    ) -> "CryptoSuite":
        """Real backend — RSA-FDH plus Shoup threshold RSA.

        Key generation is the expensive step; ``bits=256`` keeps it tolerable
        for tests while exercising every code path of the real scheme.
        """
        cls._check(num_parties, max_faulty)
        return cls(
            num_parties=num_parties,
            max_faulty=max_faulty,
            plain=RsaSignatureScheme.setup(num_parties, bits, rng),
            quorum=generate_threshold_rsa(
                num_parties, num_parties - max_faulty, bits, rng
            ),
            coin=generate_threshold_rsa(num_parties, max_faulty + 1, bits, rng),
        )

    @staticmethod
    def _check(num_parties: int, max_faulty: int) -> None:
        if num_parties < 1:
            raise ValueError("need at least one party")
        if not (0 <= max_faulty < num_parties):
            raise ValueError(
                f"need 0 <= t < n, got t={max_faulty}, n={num_parties}"
            )
