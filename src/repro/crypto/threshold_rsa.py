"""Shoup's unique threshold RSA-FDH (real threshold-signature backend).

This is the classic "Practical Threshold Signatures" (Shoup, EUROCRYPT 2000)
construction, which is exactly the kind of *unique* threshold scheme the
paper's CoinFlip assumes (it cites non-interactive threshold schemes with
unique signatures per message/public key, e.g. [16]).

Construction summary (k-of-n over an RSA modulus built from safe primes):

* Dealer: safe primes ``p = 2p' + 1``, ``q = 2q' + 1``; ``N = pq``;
  ``m = p'q'``; public exponent ``e`` prime with ``e > n``; secret
  ``d = e^{-1} mod m`` Shamir-shared over ``Z_m`` with threshold ``k``.
* Share on message ``M``: ``x_i = x^{2Δ s_i} mod N`` where ``x = FDH(M)``
  and ``Δ = n!``, accompanied by a Chaum–Pedersen-style NIZK of discrete-log
  equality against the verification keys ``v, v_i = v^{s_i}``.
* Combine: integer Lagrange coefficients ``λ_i = Δ·l_i(0)`` give
  ``w = Π x_i^{2 λ_i} = x^{4Δ² d}``; since ``gcd(e, 4Δ²) = 1``, extended
  gcd ``ae + b·4Δ² = 1`` yields the standard signature ``y = w^b x^a`` with
  ``y^e = x``.

Signatures are plain RSA-FDH signatures, hence unique and stateless to
verify.  Key generation dominates cost; use small moduli in tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .interfaces import CryptoError, ThresholdSignatureScheme
from .primes import generate_safe_prime, is_probable_prime
from .random_oracle import Term, hash_to_int

__all__ = ["ThresholdRsaScheme", "generate_threshold_rsa"]

_CHALLENGE_BITS = 128


@dataclass(frozen=True)
class _RsaShare:
    signer: int
    value: int
    # NIZK of discrete-log equality: (challenge, response)
    challenge: int
    response: int


@dataclass(frozen=True)
class _RsaThresholdSignature:
    value: int


def _fdh(message: Term, modulus: int) -> int:
    digest = hash_to_int("threshold-rsa-fdh", message, modulus.bit_length() + 128)
    return 2 + digest % (modulus - 2)


def _next_prime_above(floor: int) -> int:
    candidate = max(floor + 1, 3) | 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


class ThresholdRsaScheme(ThresholdSignatureScheme):
    """A dealt instance of Shoup threshold RSA.

    Built by :func:`generate_threshold_rsa`.  The object holds all share
    keys (the simulator plays every party in one process); a deployment
    would split ``_shares`` across hosts.
    """

    def __init__(
        self,
        n_parties: int,
        threshold: int,
        modulus: int,
        public_exponent: int,
        shares: List[int],
        verification_base: int,
        verification_keys: List[int],
    ) -> None:
        self._n = n_parties
        self._k = threshold
        self._N = modulus
        self._e = public_exponent
        self._shares = shares
        self._v = verification_base
        self._vks = verification_keys
        self._delta = math.factorial(n_parties)

    @property
    def num_parties(self) -> int:
        return self._n

    @property
    def threshold(self) -> int:
        return self._k

    @property
    def public_key(self) -> Tuple[int, int]:
        return (self._N, self._e)

    def sign_share(self, signer: int, message: Term) -> _RsaShare:
        if not (0 <= signer < self._n):
            raise CryptoError(f"no such signer {signer}")
        x = _fdh(message, self._N)
        s_i = self._shares[signer]
        value = pow(x, 2 * self._delta * s_i, self._N)
        challenge, response = self._prove(signer, x, value, s_i, message)
        return _RsaShare(signer, value, challenge, response)

    def _prove(
        self, signer: int, x: int, share_value: int, s_i: int, message: Term
    ) -> Tuple[int, int]:
        # Fiat-Shamir'd Chaum-Pedersen proof that
        #   log_v(v_i) == log_{x^{4Δ}}(share_value²)  (both equal s_i).
        x_tilde = pow(x, 4 * self._delta, self._N)
        nonce_bits = self._N.bit_length() + 2 * _CHALLENGE_BITS
        r = hash_to_int(
            "trsa-nonce", ("deterministic-r", signer, s_i, message), nonce_bits
        )
        v_prime = pow(self._v, r, self._N)
        x_prime = pow(x_tilde, r, self._N)
        challenge = self._challenge(signer, x, share_value, v_prime, x_prime)
        response = s_i * challenge + r
        return challenge, response

    def _challenge(
        self, signer: int, x: int, share_value: int, v_prime: int, x_prime: int
    ) -> int:
        return hash_to_int(
            "trsa-challenge",
            (
                signer,
                self._N,
                self._e,
                self._v,
                self._vks[signer],
                x,
                share_value,
                v_prime,
                x_prime,
            ),
            _CHALLENGE_BITS,
        )

    def verify_share(self, signer: int, share, message: Term) -> bool:
        if not isinstance(share, _RsaShare) or share.signer != signer:
            return False
        if not isinstance(signer, int) or not (0 <= signer < self._n):
            return False
        if not isinstance(share.value, int) or not (0 < share.value < self._N):
            return False
        if not isinstance(share.challenge, int) or not isinstance(share.response, int):
            return False
        if share.response < 0:
            return False
        try:
            x = _fdh(message, self._N)
        except TypeError:
            return False
        x_tilde = pow(x, 4 * self._delta, self._N)
        try:
            v_prime = (
                pow(self._v, share.response, self._N)
                * pow(self._vks[signer], -share.challenge, self._N)
            ) % self._N
            x_prime = (
                pow(x_tilde, share.response, self._N)
                * pow(share.value, -2 * share.challenge, self._N)
            ) % self._N
        except ValueError:
            return False  # non-invertible element: certainly forged
        return share.challenge == self._challenge(
            signer, x, share.value, v_prime, x_prime
        )

    def combine(self, shares: Sequence, message: Term) -> _RsaThresholdSignature:
        distinct: Dict[int, _RsaShare] = {}
        for item in shares:
            signer, share = item if isinstance(item, tuple) else (
                getattr(item, "signer", None),
                item,
            )
            if signer is None:
                raise CryptoError("shares must be (signer, share) pairs")
            if not self.verify_share(signer, share, message):
                raise CryptoError(f"invalid share from signer {signer}")
            distinct[signer] = share
        if len(distinct) < self._k:
            raise CryptoError(
                f"need {self._k} distinct valid shares, got {len(distinct)}"
            )
        chosen = dict(list(distinct.items())[: self._k])
        x = _fdh(message, self._N)
        points = sorted(chosen)  # 0-based ids; evaluation points are id + 1
        w = 1
        for i in points:
            lam = self._integer_lagrange(i, points)
            w = (w * pow(chosen[i].value, 2 * lam, self._N)) % self._N
        e_prime = 4 * self._delta * self._delta
        g, a, b = _extended_gcd(self._e, e_prime)
        if g != 1:
            raise CryptoError("public exponent not coprime to 4Δ² (bad setup)")
        y = (pow(w, b, self._N) * pow(x, a, self._N)) % self._N
        signature = _RsaThresholdSignature(y)
        if not self.verify(signature, message):
            raise CryptoError("combined signature failed verification")
        return signature

    def _integer_lagrange(self, i: int, points: Sequence[int]) -> int:
        """``Δ · l_i(0)`` with 1-based evaluation points — always an integer."""
        numerator = self._delta
        denominator = 1
        x_i = i + 1
        for j in points:
            if j == i:
                continue
            x_j = j + 1
            numerator *= -x_j
            denominator *= x_i - x_j
        quotient, remainder = divmod(numerator, denominator)
        if remainder != 0:
            raise CryptoError("Lagrange coefficient not integral (bad points)")
        return quotient

    def verify(self, signature, message: Term) -> bool:
        if not isinstance(signature, _RsaThresholdSignature):
            return False
        if not isinstance(signature.value, int) or not (0 < signature.value < self._N):
            return False
        try:
            x = _fdh(message, self._N)
        except TypeError:
            return False
        return pow(signature.value, self._e, self._N) == x

    def signature_bytes(self, signature) -> bytes:
        if not isinstance(signature, _RsaThresholdSignature):
            raise CryptoError("not a threshold RSA signature")
        length = (self._N.bit_length() + 7) // 8
        return signature.value.to_bytes(length, "big")


def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``ax + by = g = gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def generate_threshold_rsa(
    num_parties: int,
    threshold: int,
    bits: int,
    rng: random.Random,
) -> ThresholdRsaScheme:
    """Deal a ``threshold``-of-``num_parties`` Shoup scheme.

    ``bits`` is the modulus size.  256–512 bits keeps tests fast; nothing in
    the protocol logic depends on the size.
    """
    if not (1 <= threshold <= num_parties):
        raise CryptoError("need 1 <= threshold <= num_parties")
    if bits < 64:
        raise CryptoError("modulus below 64 bits is too small for safe primes")
    half = bits // 2
    while True:
        p = generate_safe_prime(half, rng)
        q = generate_safe_prime(bits - half, rng)
        if p == q:
            continue
        modulus = p * q
        m = ((p - 1) // 2) * ((q - 1) // 2)
        e = _next_prime_above(max(num_parties, 16))
        if math.gcd(e, m) != 1:
            continue
        break
    d = pow(e, -1, m)
    # Shamir-share d over Z_m (degree threshold-1 polynomial).
    coefficients = [d] + [rng.randrange(m) for _ in range(threshold - 1)]

    def evaluate(x: int) -> int:
        acc = 0
        for c in reversed(coefficients):
            acc = (acc * x + c) % m
        return acc

    shares = [evaluate(i + 1) for i in range(num_parties)]
    v = pow(rng.randrange(2, modulus - 1), 2, modulus)
    verification_keys = [pow(v, s, modulus) for s in shares]
    return ThresholdRsaScheme(
        n_parties=num_parties,
        threshold=threshold,
        modulus=modulus,
        public_exponent=e,
        shares=shares,
        verification_base=v,
        verification_keys=verification_keys,
    )
