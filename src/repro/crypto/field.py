"""Prime-field arithmetic.

The threshold-signature and secret-sharing substrates work over ``Z_p`` (or,
for threshold RSA, over ``Z_m`` for a secret composite ``m``).  This module
provides a small, explicit field abstraction plus the Lagrange machinery that
Shamir reconstruction and Shoup-style share combination need.

Everything here is deterministic, pure-Python big-integer arithmetic: the
reproduction never depends on platform word size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "FieldElement",
    "PrimeField",
    "lagrange_coefficients_at_zero",
    "lagrange_interpolate_at",
]


class FieldError(ValueError):
    """Raised for invalid field operations (mixing fields, zero inverse)."""


@dataclass(frozen=True)
class FieldElement:
    """An element of ``Z_p``; immutable and hashable.

    Instances are produced by :class:`PrimeField`; arithmetic between
    elements of different fields raises :class:`FieldError` rather than
    silently producing nonsense.
    """

    value: int
    modulus: int

    def __post_init__(self) -> None:
        if not (0 <= self.value < self.modulus):
            object.__setattr__(self, "value", self.value % self.modulus)

    def _check(self, other: "FieldElement") -> None:
        if self.modulus != other.modulus:
            raise FieldError(
                f"mixing fields Z_{self.modulus} and Z_{other.modulus}"
            )

    def __add__(self, other: "FieldElement") -> "FieldElement":
        self._check(other)
        return FieldElement((self.value + other.value) % self.modulus, self.modulus)

    def __sub__(self, other: "FieldElement") -> "FieldElement":
        self._check(other)
        return FieldElement((self.value - other.value) % self.modulus, self.modulus)

    def __mul__(self, other: "FieldElement") -> "FieldElement":
        self._check(other)
        return FieldElement((self.value * other.value) % self.modulus, self.modulus)

    def __neg__(self) -> "FieldElement":
        return FieldElement(-self.value % self.modulus, self.modulus)

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises FieldError on zero."""
        if self.value == 0:
            raise FieldError("zero has no multiplicative inverse")
        return FieldElement(pow(self.value, -1, self.modulus), self.modulus)

    def __truediv__(self, other: "FieldElement") -> "FieldElement":
        self._check(other)
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(pow(self.value, exponent, self.modulus), self.modulus)

    def __int__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0


class PrimeField:
    """The field ``Z_p`` for a prime ``p``.

    The constructor trusts the caller that ``p`` is prime (checked by
    :mod:`repro.crypto.primes` at key-generation time); re-verifying
    primality on every field construction would be wasteful in tests that
    build thousands of small fields.
    """

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise FieldError(f"modulus must be >= 2, got {modulus}")
        self.modulus = modulus

    def __call__(self, value: int) -> FieldElement:
        return FieldElement(value % self.modulus, self.modulus)

    def zero(self) -> FieldElement:
        """The additive identity."""
        return FieldElement(0, self.modulus)

    def one(self) -> FieldElement:
        """The multiplicative identity."""
        return FieldElement(1, self.modulus)

    def element(self, value: int) -> FieldElement:
        """Alias of calling the field: reduce ``value`` into Z_p."""
        return self(value)

    def random_element(self, rng) -> FieldElement:
        """Uniform element drawn from a ``random.Random``-like source."""
        return FieldElement(rng.randrange(self.modulus), self.modulus)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField({self.modulus})"


def lagrange_coefficients_at_zero(
    xs: Sequence[int], modulus: int
) -> List[int]:
    """Lagrange coefficients ``λ_i`` with ``f(0) = Σ λ_i · f(x_i)`` mod p.

    ``xs`` must be distinct and non-zero modulo ``modulus``.
    """
    _require_distinct(xs, modulus)
    coefficients = []
    for i, x_i in enumerate(xs):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            numerator = (numerator * (-x_j)) % modulus
            denominator = (denominator * (x_i - x_j)) % modulus
        coefficients.append(numerator * pow(denominator, -1, modulus) % modulus)
    return coefficients


def lagrange_interpolate_at(
    points: Iterable[Tuple[int, int]], x: int, modulus: int
) -> int:
    """Evaluate, at ``x``, the unique polynomial through ``points`` mod p."""
    points = list(points)
    xs = [p[0] for p in points]
    _require_distinct(xs, modulus)
    total = 0
    for i, (x_i, y_i) in enumerate(points):
        numerator = 1
        denominator = 1
        for j, (x_j, _) in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (x - x_j)) % modulus
            denominator = (denominator * (x_i - x_j)) % modulus
        total = (total + y_i * numerator * pow(denominator, -1, modulus)) % modulus
    return total


def _require_distinct(xs: Sequence[int], modulus: int) -> None:
    reduced = [x % modulus for x in xs]
    if len(set(reduced)) != len(reduced):
        raise FieldError(f"interpolation points must be distinct mod {modulus}")
