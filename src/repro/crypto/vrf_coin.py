"""The Chen–Micali VRF-style common coin — and why the paper avoids it.

Paper §1 ("More on previous work"): Chen and Micali [4] implement the
common coin "by means of verifiable random functions — at the price of
downgrading to computational security against an adversary that is *not
strongly rushing*".  This module implements that coin so the trade-off is
executable:

* every party evaluates its VRF at the coin index — here, the unique
  RSA-FDH signature on the index, hashed to a value in ``[0, 2^128)``
  (uniqueness + public verifiability is exactly the VRF contract);
* parties broadcast their evaluation (1 round, like the threshold coin);
* the coin is derived from the *minimum* valid evaluation received.

Against a **strongly rushing** adversary this is biased: the adversary
sees all honest evaluations first and then decides, per corrupted party,
whether to reveal its (possibly minimal) evaluation — steering the coin
whenever a corrupted party holds the global minimum, i.e. with probability
about ``t/n`` per flip (:class:`repro.adversary.coin_bias.WithholdingCoinAdversary`,
measured in ``benchmarks/bench_coin_bias.py``).  The threshold-signature
coin of :mod:`repro.crypto.coin` is immune: its value is fixed by the key
material alone, so withholding shares can only *fail* the flip, never
steer it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .interfaces import SignatureScheme
from .random_oracle import Term, hash_to_int, hash_to_range

__all__ = [
    "vrf_evaluate",
    "vrf_verify",
    "vrf_coin_from_evaluations",
    "vrf_coin_program",
]

_EVALUATION_BITS = 128


def vrf_message(session: str, index: Term) -> Term:
    """The message every party signs for this coin instance."""
    return ("vrf-coin", session, index)


def vrf_evaluate(
    scheme: SignatureScheme, signer: int, session: str, index: Term
) -> Tuple[int, Any]:
    """This party's VRF output at the coin index: ``(value, proof)``.

    The proof is the unique signature; the value is its hash.  (With
    RSA-FDH the signature *is* a classic VRF; with the idealized backend
    uniqueness holds by construction.)
    """
    proof = scheme.sign(signer, vrf_message(session, index))
    value = hash_to_int("vrf-value", ("out", session, index, _proof_term(proof)),
                        _EVALUATION_BITS)
    return value, proof


def vrf_verify(
    scheme: SignatureScheme, signer: int, value: Any, proof: Any,
    session: str, index: Term,
) -> bool:
    """Publicly verify an evaluation; never raises on garbage."""
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    if not scheme.verify(signer, proof, vrf_message(session, index)):
        return False
    expected = hash_to_int(
        "vrf-value", ("out", session, index, _proof_term(proof)),
        _EVALUATION_BITS,
    )
    return value == expected


def _proof_term(proof: Any) -> Term:
    # Both backends' signature objects reduce to stable byte/int content.
    tag = getattr(proof, "tag", None)
    if isinstance(tag, bytes):
        return tag
    numeric = getattr(proof, "value", None)
    if isinstance(numeric, int):
        return numeric
    return repr(proof)


def vrf_coin_from_evaluations(
    evaluations: Dict[int, int], session: str, index: Term, low: int, high: int
) -> Optional[int]:
    """Derive the coin from the minimum valid evaluation (already verified).

    Ties broken by party id; returns ``None`` when no evaluation arrived.
    """
    if not evaluations:
        return None
    winner = min(evaluations.items(), key=lambda kv: (kv[1], kv[0]))
    return hash_to_range(
        "vrf-coin-extract", (session, index, winner[0], winner[1]), low, high
    )


def vrf_coin_program(ctx, index: Term, low: int, high: int):
    """One-round VRF coin subprotocol (same interface as the others).

    Insecure against strongly rushing adversaries by design — that is the
    point of having it in the repository; see the module docstring.
    """
    scheme = ctx.crypto.plain
    value, proof = vrf_evaluate(scheme, ctx.party_id, ctx.session, index)
    inbox = yield ctx.broadcast({"vrf": (value, proof)})
    valid: Dict[int, int] = {}
    for sender, payload in inbox.items():
        pair = payload.get("vrf") if isinstance(payload, dict) else None
        if not (isinstance(pair, tuple) and len(pair) == 2):
            continue
        received_value, received_proof = pair
        if vrf_verify(
            scheme, sender, received_value, received_proof, ctx.session, index
        ):
            valid[sender] = received_value
    return vrf_coin_from_evaluations(valid, ctx.session, index, low, high)
