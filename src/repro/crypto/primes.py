"""Primality testing and prime generation.

Used by the real (non-idealized) cryptographic backends: RSA-FDH plain
signatures and Shoup threshold RSA.  Key generation is the only genuinely
expensive operation in the repository, so the safe-prime search keeps bit
sizes modest in tests and exposes deterministic, seeded generation.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
]


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test.

    With ``rounds=40`` the error probability is below ``4^-40``, far beyond
    anything the simulation can observe.  A deterministic small-prime sieve
    runs first so that tiny candidates are cheap.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 3:
        raise ValueError("need at least 3 bits for a random prime")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: random.Random) -> int:
    """Generate a safe prime ``p = 2q + 1`` with ``p`` having ``bits`` bits.

    Safe primes are what Shoup threshold RSA requires: the sharing of the
    secret exponent lives in ``Z_m`` for ``m = p'q'`` where ``p = 2p' + 1``
    and ``q = 2q' + 1``.
    """
    if bits < 5:
        raise ValueError("need at least 5 bits for a safe prime")
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p
