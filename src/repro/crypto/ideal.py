"""Idealized signature backends.

The paper (§2.2) analyses its protocols against *idealized* signatures:
"we require that for any given threshold t, signatures remain perfectly
unforgeable for a message m, given t signature shares on m".  This module
realizes that idealization concretely: a trusted registry holds a secret
MAC key; signatures and shares are HMAC tags over canonical encodings, so

* they are unforgeable to any code that only uses the public API (the
  simulated adversary), because producing a tag requires the registry key;
* combined signatures are **unique** per (registry, message) — required by
  the common coin; and
* verification is pure recomputation, with no global mutable state, so a
  signature formed by one party verifies at every other party.

Corrupted parties legitimately hold their own secret keys, which here means
they may call ``sign``/``sign_share`` for their own ids — exactly the power
the model grants them — but cannot mint shares for honest ids nor combined
signatures without ``threshold`` distinct shares.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import Sequence

from .interfaces import CryptoError, SignatureScheme, ThresholdSignatureScheme
from .random_oracle import Term, encode_term

__all__ = ["IdealSignatureScheme", "IdealThresholdScheme", "set_tag_memoization"]


def _tag(key: bytes, *parts: Term) -> bytes:
    return hmac.new(key, encode_term(tuple(parts)), hashlib.sha256).digest()


# Tag memoization.  Signing and verifying are pure functions of
# (registry key, domain, signer, message); in a simulated run the same
# few tags are recomputed constantly — every share is verified by all n
# parties, and every combine re-verifies its inputs — so each scheme
# instance memoizes tags it has already derived.  The memo is an
# implementation detail: results are bit-identical with it disabled
# (`set_tag_memoization(False)`, used by `repro bench --compare-baseline`).
_MEMO_ENABLED = True
_MEMO_LIMIT = 1 << 14  # per scheme instance; cleared wholesale when full


def set_tag_memoization(enabled: bool) -> bool:
    """Globally enable/disable tag memoization; returns the old setting."""
    global _MEMO_ENABLED
    previous = _MEMO_ENABLED
    _MEMO_ENABLED = enabled
    return previous


def _memo_key(term):
    """Type-tagged mirror of a term, equal iff the canonical encodings are.

    Plain tuple keys would conflate ``0``/``False`` (equal as dict keys,
    distinct under :func:`encode_term`); tagging nodes with their exact
    type restores injectivity.  ``str``/``bytes`` stay bare — they never
    compare equal to any other builtin — and tuples map to bare tuples of
    mapped children (a mapped node is never a bare type object, so the
    2-tuple wrappers cannot collide with mapped 2-element terms).
    """
    tp = term.__class__
    if tp is tuple:
        return tuple([_memo_key(part) for part in term])
    if tp is str or tp is bytes:
        return term
    return (tp, term)


class _TagMemo:
    """Bounded memo of HMAC tags for one registry key.

    Two layers: a structural memo (term key → tag bytes) shared by all
    callers, and an identity cache (id of a live message object → its
    structural key) so call sites that reuse one message object across
    many sign/verify calls pay the key walk once.  The identity cache
    holds strong references to its messages, which is what keeps the
    ``id()`` keys valid.
    """

    __slots__ = ("_key", "_memo", "_message_keys")

    _MESSAGE_KEY_LIMIT = 512

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._memo: dict = {}
        self._message_keys: dict = {}

    def _message_key(self, message: Term):
        cache = self._message_keys
        entry = cache.get(id(message))
        if entry is not None and entry[0] is message:
            return entry[1]
        key = _memo_key(message)
        if len(cache) >= self._MESSAGE_KEY_LIMIT:
            cache.clear()
        cache[id(message)] = (message, key)
        return key

    def _lookup(self, key, *parts: Term) -> bytes:
        memo = self._memo
        try:
            cached = memo.get(key)
        except TypeError:  # unhashable part: compute directly (and let
            return _tag(self._key, *parts)  # encode_term raise if non-Term)
        if cached is None:
            cached = _tag(self._key, *parts)
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[key] = cached
        return cached

    def signer_tag(self, domain: str, signer, message: Term) -> bytes:
        """Tag over (domain, signer, message) — plain signatures and shares."""
        if not _MEMO_ENABLED:
            return _tag(self._key, domain, signer, message)
        key = (domain, signer.__class__, signer, self._message_key(message))
        return self._lookup(key, domain, signer, message)

    def combined_tag(self, domain: str, message: Term) -> bytes:
        """Tag over (domain, message) — combined threshold signatures."""
        if not _MEMO_ENABLED:
            return _tag(self._key, domain, message)
        key = (domain, self._message_key(message))
        return self._lookup(key, domain, message)


@dataclass(frozen=True)
class _IdealShare:
    signer: int
    tag: bytes


@dataclass(frozen=True)
class _IdealSignature:
    tag: bytes


class IdealSignatureScheme(SignatureScheme):
    """Per-party idealized plain signatures."""

    def __init__(self, num_parties: int, rng: random.Random) -> None:
        if num_parties < 1:
            raise CryptoError("need at least one party")
        self._n = num_parties
        self._key = rng.getrandbits(256).to_bytes(32, "big")
        self._tags = _TagMemo(self._key)

    @property
    def num_parties(self) -> int:
        return self._n

    def sign(self, signer: int, message: Term) -> _IdealSignature:
        self._check_signer(signer)
        return _IdealSignature(self._tags.signer_tag("plain", signer, message))

    def verify(self, signer: int, signature, message: Term) -> bool:
        if not isinstance(signature, _IdealSignature):
            return False
        if not isinstance(signer, int) or not (0 <= signer < self._n):
            return False
        try:
            expected = self._tags.signer_tag("plain", signer, message)
        except TypeError:
            return False
        return hmac.compare_digest(signature.tag, expected)

    def _check_signer(self, signer: int) -> None:
        if not (0 <= signer < self._n):
            raise CryptoError(f"no such signer {signer}")


class IdealThresholdScheme(ThresholdSignatureScheme):
    """Idealized ``threshold``-of-``n`` unique threshold signatures."""

    def __init__(self, num_parties: int, threshold: int, rng: random.Random) -> None:
        if not (1 <= threshold <= num_parties):
            raise CryptoError(
                f"need 1 <= threshold <= n, got {threshold}/{num_parties}"
            )
        self._n = num_parties
        self._threshold = threshold
        self._key = rng.getrandbits(256).to_bytes(32, "big")
        self._tags = _TagMemo(self._key)

    @property
    def num_parties(self) -> int:
        return self._n

    @property
    def threshold(self) -> int:
        return self._threshold

    def sign_share(self, signer: int, message: Term) -> _IdealShare:
        if not (0 <= signer < self._n):
            raise CryptoError(f"no such signer {signer}")
        return _IdealShare(signer, self._tags.signer_tag("share", signer, message))

    def verify_share(self, signer: int, share, message: Term) -> bool:
        if not isinstance(share, _IdealShare) or share.signer != signer:
            return False
        if not isinstance(signer, int) or not (0 <= signer < self._n):
            return False
        try:
            expected = self._tags.signer_tag("share", signer, message)
        except TypeError:
            return False
        return hmac.compare_digest(share.tag, expected)

    def combine(self, shares: Sequence, message: Term) -> _IdealSignature:
        distinct = {}
        for item in shares:
            signer, share = item if isinstance(item, tuple) else (getattr(item, "signer", None), item)
            if signer is None:
                raise CryptoError("shares must be (signer, share) pairs or carry .signer")
            if not self.verify_share(signer, share, message):
                raise CryptoError(f"invalid share from signer {signer}")
            distinct[signer] = share
        if len(distinct) < self._threshold:
            raise CryptoError(
                f"need {self._threshold} distinct valid shares, got {len(distinct)}"
            )
        return _IdealSignature(self._tags.combined_tag("combined", message))

    def verify(self, signature, message: Term) -> bool:
        if not isinstance(signature, _IdealSignature):
            return False
        try:
            expected = self._tags.combined_tag("combined", message)
        except TypeError:
            return False
        return hmac.compare_digest(signature.tag, expected)

    def signature_bytes(self, signature) -> bytes:
        """Canonical bytes of a combined signature (coin input)."""
        if not isinstance(signature, _IdealSignature):
            raise CryptoError("not an ideal signature")
        return signature.tag

    def combined_bytes(self, message: Term) -> bytes:
        """Bytes of the (unique) combined signature on ``message``.

        Combined ideal signatures depend only on the registry key and the
        message — not on which shares produced them — so callers that can
        *prove* a combine would succeed (e.g. the vector engine backend,
        which counts honest shares arithmetically) may derive the
        signature bytes directly without materializing share objects.
        Equal to ``signature_bytes(combine(shares, message))`` for any
        valid quorum of shares.
        """
        return self._tags.combined_tag("combined", message)
