"""Idealized signature backends.

The paper (§2.2) analyses its protocols against *idealized* signatures:
"we require that for any given threshold t, signatures remain perfectly
unforgeable for a message m, given t signature shares on m".  This module
realizes that idealization concretely: a trusted registry holds a secret
MAC key; signatures and shares are HMAC tags over canonical encodings, so

* they are unforgeable to any code that only uses the public API (the
  simulated adversary), because producing a tag requires the registry key;
* combined signatures are **unique** per (registry, message) — required by
  the common coin; and
* verification is pure recomputation, with no global mutable state, so a
  signature formed by one party verifies at every other party.

Corrupted parties legitimately hold their own secret keys, which here means
they may call ``sign``/``sign_share`` for their own ids — exactly the power
the model grants them — but cannot mint shares for honest ids nor combined
signatures without ``threshold`` distinct shares.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import Sequence

from .interfaces import CryptoError, SignatureScheme, ThresholdSignatureScheme
from .random_oracle import Term, encode_term

__all__ = ["IdealSignatureScheme", "IdealThresholdScheme"]


def _tag(key: bytes, *parts: Term) -> bytes:
    return hmac.new(key, encode_term(tuple(parts)), hashlib.sha256).digest()


@dataclass(frozen=True)
class _IdealShare:
    signer: int
    tag: bytes


@dataclass(frozen=True)
class _IdealSignature:
    tag: bytes


class IdealSignatureScheme(SignatureScheme):
    """Per-party idealized plain signatures."""

    def __init__(self, num_parties: int, rng: random.Random) -> None:
        if num_parties < 1:
            raise CryptoError("need at least one party")
        self._n = num_parties
        self._key = rng.getrandbits(256).to_bytes(32, "big")

    @property
    def num_parties(self) -> int:
        return self._n

    def sign(self, signer: int, message: Term) -> _IdealSignature:
        self._check_signer(signer)
        return _IdealSignature(_tag(self._key, "plain", signer, message))

    def verify(self, signer: int, signature, message: Term) -> bool:
        if not isinstance(signature, _IdealSignature):
            return False
        if not isinstance(signer, int) or not (0 <= signer < self._n):
            return False
        try:
            expected = _tag(self._key, "plain", signer, message)
        except TypeError:
            return False
        return hmac.compare_digest(signature.tag, expected)

    def _check_signer(self, signer: int) -> None:
        if not (0 <= signer < self._n):
            raise CryptoError(f"no such signer {signer}")


class IdealThresholdScheme(ThresholdSignatureScheme):
    """Idealized ``threshold``-of-``n`` unique threshold signatures."""

    def __init__(self, num_parties: int, threshold: int, rng: random.Random) -> None:
        if not (1 <= threshold <= num_parties):
            raise CryptoError(
                f"need 1 <= threshold <= n, got {threshold}/{num_parties}"
            )
        self._n = num_parties
        self._threshold = threshold
        self._key = rng.getrandbits(256).to_bytes(32, "big")

    @property
    def num_parties(self) -> int:
        return self._n

    @property
    def threshold(self) -> int:
        return self._threshold

    def sign_share(self, signer: int, message: Term) -> _IdealShare:
        if not (0 <= signer < self._n):
            raise CryptoError(f"no such signer {signer}")
        return _IdealShare(signer, _tag(self._key, "share", signer, message))

    def verify_share(self, signer: int, share, message: Term) -> bool:
        if not isinstance(share, _IdealShare) or share.signer != signer:
            return False
        if not isinstance(signer, int) or not (0 <= signer < self._n):
            return False
        try:
            expected = _tag(self._key, "share", signer, message)
        except TypeError:
            return False
        return hmac.compare_digest(share.tag, expected)

    def combine(self, shares: Sequence, message: Term) -> _IdealSignature:
        distinct = {}
        for item in shares:
            signer, share = item if isinstance(item, tuple) else (getattr(item, "signer", None), item)
            if signer is None:
                raise CryptoError("shares must be (signer, share) pairs or carry .signer")
            if not self.verify_share(signer, share, message):
                raise CryptoError(f"invalid share from signer {signer}")
            distinct[signer] = share
        if len(distinct) < self._threshold:
            raise CryptoError(
                f"need {self._threshold} distinct valid shares, got {len(distinct)}"
            )
        return _IdealSignature(_tag(self._key, "combined", message))

    def verify(self, signature, message: Term) -> bool:
        if not isinstance(signature, _IdealSignature):
            return False
        try:
            expected = _tag(self._key, "combined", message)
        except TypeError:
            return False
        return hmac.compare_digest(signature.tag, expected)

    def signature_bytes(self, signature) -> bytes:
        """Canonical bytes of a combined signature (coin input)."""
        if not isinstance(signature, _IdealSignature):
            raise CryptoError("not an ideal signature")
        return signature.tag
