"""Abstract interfaces for the cryptographic backends.

The paper treats (threshold) signatures as idealized objects (§2.2).  The
reproduction offers two interchangeable backends behind these interfaces:

* :mod:`repro.crypto.ideal` — a registry-based idealized scheme that is
  unforgeable *by construction*, mirroring the paper's abstraction; and
* :mod:`repro.crypto.threshold_rsa` — Shoup's unique threshold RSA-FDH,
  a real scheme (slow keygen, small moduli in tests).

Both provide *unique* signatures — a fixed (public key, message) pair has a
single valid signature — which is exactly the property the common coin needs.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from .random_oracle import Term

__all__ = ["SignatureScheme", "ThresholdSignatureScheme", "CryptoError"]


class CryptoError(Exception):
    """Raised on misuse of a crypto backend (wrong party id, bad shares)."""


class SignatureScheme(abc.ABC):
    """Per-party plain signatures (used by proxcast's dealer PKI)."""

    @property
    @abc.abstractmethod
    def num_parties(self) -> int:
        """Number of key pairs dealt at setup."""

    @abc.abstractmethod
    def sign(self, signer: int, message: Term):
        """Produce ``signer``'s signature on ``message``."""

    @abc.abstractmethod
    def verify(self, signer: int, signature, message: Term) -> bool:
        """Publicly verify a signature; never raises on garbage input."""


class ThresholdSignatureScheme(abc.ABC):
    """A ``threshold``-out-of-``n`` unique threshold signature scheme.

    ``threshold`` is the number of shares *sufficient* (and necessary) to
    produce the combined signature.  The paper uses two instantiations:
    ``n - t``-of-``n`` inside Proxcensus and ``t + 1``-of-``n`` for the coin.
    """

    @property
    @abc.abstractmethod
    def num_parties(self) -> int:
        """Total number of share holders ``n``."""

    @property
    @abc.abstractmethod
    def threshold(self) -> int:
        """Number of shares needed to combine."""

    @abc.abstractmethod
    def sign_share(self, signer: int, message: Term):
        """Produce ``signer``'s signature share on ``message``."""

    @abc.abstractmethod
    def verify_share(self, signer: int, share, message: Term) -> bool:
        """Verify one share; never raises on garbage input."""

    @abc.abstractmethod
    def combine(self, shares: Sequence, message: Term):
        """Combine ``threshold`` valid shares into the unique signature.

        Raises :class:`CryptoError` if the shares are insufficient or
        invalid; callers that may hold Byzantine-supplied shares should
        filter through :meth:`verify_share` first (the protocols do).
        """

    @abc.abstractmethod
    def verify(self, signature, message: Term) -> bool:
        """Publicly verify a combined signature; never raises."""

    @abc.abstractmethod
    def signature_bytes(self, signature) -> bytes:
        """Canonical byte serialization of a combined signature.

        Uniqueness of the scheme makes these bytes a deterministic function
        of (public key, message); the common coin hashes them.
        """

    def try_combine(self, indexed_shares: Iterable, message: Term):
        """Best-effort combine: filter invalid shares, return the signature
        or ``None`` if fewer than ``threshold`` valid shares remain.

        ``indexed_shares`` yields ``(signer, share)`` pairs, possibly
        containing Byzantine garbage; this helper is the defensive entry
        point the protocol code uses.
        """
        valid = {}
        for signer, share in indexed_shares:
            if not isinstance(signer, int) or not (0 <= signer < self.num_parties):
                continue
            if signer in valid:
                continue
            if self.verify_share(signer, share, message):
                valid[signer] = share
        if len(valid) < self.threshold:
            return None
        chosen = list(valid.items())[: self.threshold]
        signature = self.combine(chosen, message)
        if not self.verify(signature, message):
            return None
        return signature
