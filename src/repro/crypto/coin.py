"""The common coin (CoinFlip) built from unique threshold signatures.

Paper, §2.2: "To obtain a uniform value on input k, parties simply sign the
value k and send their so obtained signature share to all parties.  Parties
can then hash the reconstructed signature on the value k into a suitable
domain."  Unforgeability keeps the coin uniform from the adversary's view
until the first honest share is released; uniqueness makes all honest
parties derive the *same* value.

Two flavours, both occupying exactly one communication round so that round
counts match the paper:

* :func:`threshold_coin_program` — the real construction over a
  ``(t+1)``-of-``n`` unique threshold scheme; and
* :class:`IdealCoin` / :func:`ideal_coin_program` — the "ideal 1-round
  multivalued coin-toss" the paper's round-complexity statements assume.
  The value is a deterministic hash of a session secret, so it is common to
  all parties and outside the adversary's influence, yet still takes its
  one round on the wire.
"""

from __future__ import annotations

import random
from .interfaces import ThresholdSignatureScheme
from .random_oracle import Term, hash_to_range

__all__ = [
    "coin_message_tag",
    "coin_value_from_signature",
    "threshold_coin_program",
    "IdealCoin",
    "ideal_coin_program",
]


def coin_message_tag(session: str, index: Term) -> Term:
    """The message all parties threshold-sign for coin ``index``."""
    return ("coin-flip", session, index)


def coin_value_from_signature(
    scheme: ThresholdSignatureScheme,
    signature,
    session: str,
    index: Term,
    low: int,
    high: int,
) -> int:
    """Hash the unique combined signature into ``[low, high]``."""
    return hash_to_range(
        "coin-extract",
        (session, index, scheme.signature_bytes(signature)),
        low,
        high,
    )


def threshold_coin_program(ctx, index: Term, low: int, high: int):
    """One-round CoinFlip subprotocol (generator; see network.party docs).

    Broadcasts this party's coin share, collects the round's shares, combines
    and hashes.  Returns the coin value, or ``None`` in the (honest-majority
    impossible) case that fewer than ``t + 1`` valid shares arrived — callers
    treat ``None`` as a failed coin, which only ever costs one iteration.
    """
    scheme = ctx.crypto.coin
    message = coin_message_tag(ctx.session, index)
    share = scheme.sign_share(ctx.party_id, message)
    inbox = yield ctx.broadcast({"coin_share": share})
    indexed = []
    for sender, payload in inbox.items():
        if isinstance(payload, dict) and "coin_share" in payload:
            indexed.append((sender, payload["coin_share"]))
    signature = scheme.try_combine(indexed, message)
    if signature is None:
        return None
    return coin_value_from_signature(scheme, signature, ctx.session, index, low, high)


class IdealCoin:
    """An ideal multivalued coin: uniform, common, adversary-independent.

    A session-scoped secret seeds the coin so that protocol code (and, more
    importantly, adversary strategies) cannot predict values for indices
    that have not been opened yet without access to this object's secret.
    """

    def __init__(self, rng: random.Random) -> None:
        self._secret = rng.getrandbits(256)

    def value(self, index: Term, low: int, high: int) -> int:
        return hash_to_range("ideal-coin", (self._secret, index), low, high)


def ideal_coin_program(ctx, coin: IdealCoin, index: Term, low: int, high: int):
    """One-round wrapper around :class:`IdealCoin` (empty broadcast).

    The round is spent (the paper's ideal coin is 1-round), but no payload
    travels; the value is read locally after the round boundary, which
    models "the adversary cannot see the coin before honest round-r
    messages are fixed".
    """
    yield None  # silent round: the round is spent, nothing travels
    return coin.value(index, low, high)
