"""Plain RSA-FDH signatures (real backend for the dealer PKI).

Full-domain-hash RSA: ``sign(m) = H(m)^d mod N`` with ``H`` hashing into
``Z_N``.  Deterministic, hence *unique* signatures — the same property the
idealized backend provides.  Key sizes are a parameter; tests use small
moduli because the simulation cares about protocol logic, not concrete
hardness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .interfaces import CryptoError, SignatureScheme
from .primes import generate_prime
from .random_oracle import Term, hash_to_int

__all__ = ["RsaKeyPair", "generate_rsa_keypair", "RsaSignatureScheme"]

_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; ``d`` is private, ``(n, e)`` public."""

    n: int
    e: int
    d: int


def generate_rsa_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 32:
        raise CryptoError("modulus below 32 bits cannot host SHA-based FDH")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        return RsaKeyPair(n=n, e=_PUBLIC_EXPONENT, d=d)


def _fdh(message: Term, modulus: int) -> int:
    """Full-domain hash into ``Z_N`` (strictly, into [2, N-1])."""
    digest = hash_to_int("rsa-fdh", message, modulus.bit_length() + 128)
    return 2 + digest % (modulus - 2)


@dataclass(frozen=True)
class _RsaSignature:
    signer: int
    value: int


class RsaSignatureScheme(SignatureScheme):
    """One RSA-FDH key pair per party, dealt by trusted setup."""

    def __init__(self, keypairs: List[RsaKeyPair]) -> None:
        if not keypairs:
            raise CryptoError("need at least one key pair")
        self._keypairs = list(keypairs)

    @classmethod
    def setup(cls, num_parties: int, bits: int, rng: random.Random) -> "RsaSignatureScheme":
        return cls([generate_rsa_keypair(bits, rng) for _ in range(num_parties)])

    @property
    def num_parties(self) -> int:
        return len(self._keypairs)

    def sign(self, signer: int, message: Term) -> _RsaSignature:
        if not (0 <= signer < self.num_parties):
            raise CryptoError(f"no such signer {signer}")
        key = self._keypairs[signer]
        h = _fdh(message, key.n)
        return _RsaSignature(signer, pow(h, key.d, key.n))

    def verify(self, signer: int, signature, message: Term) -> bool:
        if not isinstance(signature, _RsaSignature) or signature.signer != signer:
            return False
        if not isinstance(signer, int) or not (0 <= signer < self.num_parties):
            return False
        key = self._keypairs[signer]
        if not isinstance(signature.value, int) or not (0 < signature.value < key.n):
            return False
        try:
            h = _fdh(message, key.n)
        except TypeError:
            return False
        return pow(signature.value, key.e, key.n) == h
