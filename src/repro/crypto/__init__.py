"""Cryptographic substrate: fields, sharing, signatures, coins.

Public surface re-exported here; see module docstrings for construction
details and the DESIGN.md substitution notes (ideal vs real backends).
"""

from .coin import (
    IdealCoin,
    coin_message_tag,
    coin_value_from_signature,
    ideal_coin_program,
    threshold_coin_program,
)
from .field import FieldElement, PrimeField, lagrange_interpolate_at
from .ideal import IdealSignatureScheme, IdealThresholdScheme
from .interfaces import CryptoError, SignatureScheme, ThresholdSignatureScheme
from .keys import CryptoSuite
from .primes import generate_prime, generate_safe_prime, is_probable_prime
from .random_oracle import encode_term, hash_to_int, hash_to_range, oracle_digest
from .rsa import RsaSignatureScheme, generate_rsa_keypair
from .shamir import Share, ShamirError, reconstruct_secret, split_secret
from .threshold_rsa import ThresholdRsaScheme, generate_threshold_rsa
from .vrf_coin import (
    vrf_coin_from_evaluations,
    vrf_coin_program,
    vrf_evaluate,
    vrf_verify,
)

__all__ = [
    "CryptoError",
    "CryptoSuite",
    "FieldElement",
    "IdealCoin",
    "IdealSignatureScheme",
    "IdealThresholdScheme",
    "PrimeField",
    "RsaSignatureScheme",
    "ShamirError",
    "Share",
    "SignatureScheme",
    "ThresholdRsaScheme",
    "ThresholdSignatureScheme",
    "coin_message_tag",
    "coin_value_from_signature",
    "encode_term",
    "generate_prime",
    "generate_rsa_keypair",
    "generate_safe_prime",
    "generate_threshold_rsa",
    "hash_to_int",
    "hash_to_range",
    "ideal_coin_program",
    "is_probable_prime",
    "lagrange_interpolate_at",
    "oracle_digest",
    "reconstruct_secret",
    "split_secret",
    "threshold_coin_program",
    "vrf_coin_from_evaluations",
    "vrf_coin_program",
    "vrf_evaluate",
    "vrf_verify",
]
