"""Shamir secret sharing over a prime field.

This is the sharing substrate underneath the idealized threshold-signature
backend's key material and is exposed publicly because it is independently
useful (and independently tested with hypothesis).

Shares use 1-based evaluation points: party ``i`` (0-based id) holds the
polynomial evaluated at ``x = i + 1``, so the secret is the evaluation at 0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List

from .field import lagrange_interpolate_at

__all__ = ["Share", "split_secret", "reconstruct_secret", "ShamirError"]


class ShamirError(ValueError):
    """Raised on malformed share sets (duplicates, too few, mixed moduli)."""


@dataclass(frozen=True)
class Share:
    """One Shamir share: the polynomial evaluated at point ``x``."""

    x: int
    y: int
    modulus: int


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    modulus: int,
    rng: random.Random,
) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it; fewer reveal nothing (information-theoretically).

    ``threshold`` is the number of shares *sufficient* to reconstruct
    (degree ``threshold - 1`` polynomial).
    """
    if not (1 <= threshold <= num_shares):
        raise ShamirError(
            f"need 1 <= threshold <= num_shares, got {threshold}/{num_shares}"
        )
    if num_shares >= modulus:
        raise ShamirError("modulus too small for the requested share count")
    secret %= modulus
    coefficients = [secret] + [rng.randrange(modulus) for _ in range(threshold - 1)]

    def evaluate(x: int) -> int:
        accumulator = 0
        for coefficient in reversed(coefficients):
            accumulator = (accumulator * x + coefficient) % modulus
        return accumulator

    return [Share(x=i, y=evaluate(i), modulus=modulus) for i in range(1, num_shares + 1)]


def reconstruct_secret(shares: Iterable[Share]) -> int:
    """Reconstruct the secret (evaluation at 0) from a set of shares."""
    shares = list(shares)
    if not shares:
        raise ShamirError("no shares given")
    moduli = {s.modulus for s in shares}
    if len(moduli) != 1:
        raise ShamirError("shares come from different fields")
    modulus = moduli.pop()
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise ShamirError("duplicate share points")
    return lagrange_interpolate_at(((s.x, s.y) for s in shares), 0, modulus)
