"""FIG-ERR — Theorem 1 / Corollary 2 error probabilities, measured.

Paper claims reproduced here:

1. **Per-iteration failure ≤ 1/(s-1)** (Theorem 1), and the bound is
   *tight*: under the worst-case straddle adversaries
   (:mod:`repro.adversary.straddle`) the measured disagreement rate of a
   single Π_iter^s matches ``1/(s-1)`` up to sampling noise.
2. **Exponential decay with κ** (Corollary 2): the measured end-to-end
   failure of the t<n/3 protocol halves per extra round; the t<n/2
   protocol gains 2 bits per 3-round iteration.  Both track ``2^-κ``.

The Monte-Carlo loops run through the parallel experiment engine
(:mod:`repro.engine`) with the historical seed schedule, so the measured
rates are identical to the legacy serial harness; set
``REPRO_BENCH_WORKERS=<n>`` to fan trials across processes (results are
bit-identical regardless — see ``tests/engine/test_determinism.py``).
The adaptive test at the bottom re-runs one sweep through
:class:`repro.engine.AdaptiveRunner` and reports the trials early
stopping saved while reaching the same verdicts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_workers
from repro.analysis.curves import log_sparkline
from repro.analysis.report import format_table
from repro.analysis.theory import per_iteration_failure
from repro.engine import AdaptiveRunner, ParallelRunner, TrialPlan

TRIALS = 300

_RUNNER = ParallelRunner(workers=bench_workers())


def _failure_rate(
    protocol, inputs, max_faulty, kappa, adversary, victims,
    trials=TRIALS, seed=0,
):
    plan = TrialPlan.monte_carlo(
        name=f"{protocol}-k{kappa}",
        protocol=protocol,
        inputs=inputs,
        max_faulty=max_faulty,
        trials=trials,
        params={"kappa": kappa},
        adversary=adversary,
        adversary_params={"victims": victims},
        seed=seed,
        # Agreement rates don't need signature tallies; skip the walk.
        collect_signatures=False,
    )
    return _RUNNER.run(plan).disagreement_rate()


def one_third_failure(kappa, adversary="straddle13", trials=TRIALS, seed=0):
    return _failure_rate(
        "ba_one_third", (0, 0, 1, 1), 1, kappa, adversary, (3,),
        trials=trials, seed=seed + kappa,
    )


def one_half_failure(kappa, adversary="straddle12", trials=TRIALS, seed=0):
    return _failure_rate(
        "ba_one_half", (0, 0, 1, 1, 1), 2, kappa, adversary, (3, 4),
        trials=trials, seed=seed + 100 + kappa,
    )


def _sigma(bound: float, trials: int) -> float:
    return max((bound * (1 - bound) / trials) ** 0.5, 1e-6)


def test_theorem1_bound_is_met_and_tight_one_third(benchmark, report_sink):
    """t<n/3: single iteration with s = 2^κ+1 slots — the κ-round case of
    the protocol IS one iteration, so end-to-end failure equals the
    per-iteration failure 1/(s-1) = 2^-κ."""
    rows = []
    for kappa in (1, 2, 3, 4):
        slots = 2 ** kappa + 1
        bound = float(per_iteration_failure(slots))
        rate = one_third_failure(kappa)
        assert rate <= bound + 4 * _sigma(bound, TRIALS), (kappa, rate, bound)
        assert rate >= bound - 4 * _sigma(bound, TRIALS), (
            "straddle adversary should realize the bound",
            kappa, rate, bound,
        )
        rows.append([slots, f"{bound:.4f}", f"{rate:.4f}", TRIALS])
    report_sink.append(
        "\nFIG-ERR (a)  t<n/3 single iteration vs worst-case straddle "
        "adversary (Theorem 1 tight)\n"
        + format_table(["slots s", "bound 1/(s-1)", "measured", "trials"], rows)
    )
    benchmark(lambda: one_third_failure(2, trials=20))


def test_theorem1_bound_is_met_and_tight_one_half(benchmark, report_sink):
    """t<n/2: one 3-round Prox_5 iteration fails with probability 1/4."""
    bound = float(per_iteration_failure(5))
    rate = one_half_failure(2)
    assert abs(rate - bound) <= 4 * _sigma(bound, TRIALS), (rate, bound)
    report_sink.append(
        f"FIG-ERR (b)  t<n/2 single Prox_5 iteration vs straddle adversary: "
        f"measured {rate:.4f}, bound {bound:.4f}"
    )
    benchmark(lambda: one_half_failure(2, trials=20))


def test_end_to_end_error_decays_exponentially(benchmark, report_sink):
    rows = []
    curves = {}
    for protocol, runner in (
        ("one_third", one_third_failure),
        ("one_half", one_half_failure),
    ):
        rates = {}
        for kappa in (1, 2, 4, 6, 8):
            rates[kappa] = runner(kappa)
            bound = 2.0 ** -kappa
            assert rates[kappa] <= bound + 4 * _sigma(bound, TRIALS), (
                protocol, kappa, rates[kappa], bound,
            )
            rows.append([protocol, kappa, f"{bound:.4f}", f"{rates[kappa]:.4f}"])
        assert rates[8] < max(rates[1], 1 / TRIALS)
        curves[protocol] = [rates[k] for k in (1, 2, 4, 6, 8)]
    report_sink.append(
        "FIG-ERR (c)  end-to-end failure vs kappa under worst-case attack "
        "(bound 2^-kappa)\n"
        + format_table(["protocol", "kappa", "bound 2^-k", "measured"], rows)
        + "\n  decay (log scale, kappa = 1,2,4,6,8): "
        + "   ".join(
            f"{name} {log_sparkline(series, floor=1 / (2 * TRIALS))}"
            for name, series in curves.items()
        )
    )
    benchmark(lambda: one_third_failure(2, trials=20))


def _kappa_sweep_plan(kappas, trials):
    return TrialPlan.concat(
        "adaptive-sweep",
        [
            TrialPlan.monte_carlo(
                name=f"one_third-k{kappa}",
                protocol="ba_one_third",
                inputs=(0, 0, 1, 1),
                max_faulty=1,
                trials=trials,
                params={"kappa": kappa},
                adversary="straddle13",
                adversary_params={"victims": (3,)},
                seed=kappa,
                collect_signatures=False,
            )
            for kappa in kappas
        ],
    )


def test_adaptive_allocation_saves_trials_same_verdicts(benchmark, report_sink):
    """FIG-ERR (e): adaptive early stopping spends measurably fewer trials
    on the κ-sweep yet reaches the same accept/reject verdict per config
    — the property that makes backend="real" sweeps affordable."""
    kappas = (1, 2, 4)
    plan = _kappa_sweep_plan(kappas, TRIALS)
    bounds = {f"one_third-k{kappa}": 2.0 ** -kappa for kappa in kappas}

    fixed = _RUNNER.run(plan)
    runner = AdaptiveRunner(workers=bench_workers(), batch_size=25)
    adaptive = runner.run(plan, bounds)

    rows = []
    for name, indices in plan.configs().items():
        outcome = adaptive.configs[name]
        fixed_estimate = runner.estimate_for(name, bounds)
        fixed_hits = sum(
            1 for index in indices if not fixed.results[index].honest_agree()
        )
        fixed_estimate.update(fixed_hits, len(indices))
        assert outcome.accepted == fixed_estimate.accepted, name
        rows.append(
            [
                name,
                f"{outcome.bound:.4f}",
                len(indices),
                outcome.executed,
                outcome.status,
                "yes" if outcome.stopped_early else "-",
            ]
        )
    assert adaptive.spent < len(plan), (
        "early stopping should save trials on this sweep",
        adaptive.spent,
        len(plan),
    )
    report_sink.append(
        "FIG-ERR (e)  adaptive allocation vs fixed budget "
        f"(spent {adaptive.spent}/{len(plan)} trials, verdicts identical)\n"
        + format_table(
            ["config", "bound", "fixed n", "adaptive n", "status", "early"],
            rows,
        )
    )
    benchmark(
        lambda: AdaptiveRunner(batch_size=10).run(
            _kappa_sweep_plan((1, 2), 40),
            {"one_third-k1": 0.5, "one_third-k2": 0.25},
        )
    )


def test_generic_equivocation_stays_below_bound(benchmark, report_sink):
    """A protocol-agnostic equivocator must do no better than Theorem 1
    allows — and in fact does far worse for s > 3 (context for why the
    dedicated straddle adversaries exist)."""
    rows = []
    for kappa in (1, 3):
        rate = one_third_failure(
            kappa, adversary="two_face", trials=100, seed=31,
        )
        bound = 2.0 ** -kappa
        assert rate <= bound + 4 * _sigma(bound, 100)
        rows.append([kappa, f"{bound:.4f}", f"{rate:.4f}"])
    report_sink.append(
        "FIG-ERR (d)  generic two-face equivocation (non-optimal attack)\n"
        + format_table(["kappa", "bound", "measured"], rows)
    )
    benchmark(
        lambda: one_third_failure(1, adversary="two_face", trials=20, seed=32)
    )
