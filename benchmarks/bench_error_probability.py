"""FIG-ERR — Theorem 1 / Corollary 2 error probabilities, measured.

Paper claims reproduced here:

1. **Per-iteration failure ≤ 1/(s-1)** (Theorem 1), and the bound is
   *tight*: under the worst-case straddle adversaries
   (:mod:`repro.adversary.straddle`) the measured disagreement rate of a
   single Π_iter^s matches ``1/(s-1)`` up to sampling noise.
2. **Exponential decay with κ** (Corollary 2): the measured end-to-end
   failure of the t<n/3 protocol halves per extra round; the t<n/2
   protocol gains 2 bits per 3-round iteration.  Both track ``2^-κ``.
"""

from __future__ import annotations

import pytest

from repro.adversary.straddle import (
    LinearHalfStraddleAdversary,
    OneThirdStraddleAdversary,
)
from repro.adversary.strategies import TwoFaceAdversary
from repro.analysis.experiments import (
    ExperimentSetup,
    disagreement_rate,
    run_trials,
)
from repro.analysis.curves import log_sparkline
from repro.analysis.report import format_table
from repro.analysis.theory import per_iteration_failure
from repro.core.ba import ba_one_half_program, ba_one_third_program

TRIALS = 300


def one_third_failure(kappa, adversary_factory, trials=TRIALS, seed=0):
    setup = ExperimentSetup(num_parties=4, max_faulty=1)
    factory = lambda c, b: ba_one_third_program(c, b, kappa=kappa)
    return disagreement_rate(
        run_trials(
            setup, factory, [0, 0, 1, 1], trials=trials,
            adversary_factory=adversary_factory, seed=seed + kappa,
        )
    )


def one_half_failure(kappa, adversary_factory, trials=TRIALS, seed=0):
    setup = ExperimentSetup(num_parties=5, max_faulty=2)
    factory = lambda c, b: ba_one_half_program(c, b, kappa=kappa)
    return disagreement_rate(
        run_trials(
            setup, factory, [0, 0, 1, 1, 1], trials=trials,
            adversary_factory=adversary_factory, seed=seed + 100 + kappa,
        )
    )


def _sigma(bound: float, trials: int) -> float:
    return max((bound * (1 - bound) / trials) ** 0.5, 1e-6)


def test_theorem1_bound_is_met_and_tight_one_third(benchmark, report_sink):
    """t<n/3: single iteration with s = 2^κ+1 slots — the κ-round case of
    the protocol IS one iteration, so end-to-end failure equals the
    per-iteration failure 1/(s-1) = 2^-κ."""
    rows = []
    for kappa in (1, 2, 3, 4):
        slots = 2 ** kappa + 1
        bound = float(per_iteration_failure(slots))
        rate = one_third_failure(
            kappa, lambda: OneThirdStraddleAdversary([3])
        )
        assert rate <= bound + 4 * _sigma(bound, TRIALS), (kappa, rate, bound)
        assert rate >= bound - 4 * _sigma(bound, TRIALS), (
            "straddle adversary should realize the bound",
            kappa, rate, bound,
        )
        rows.append([slots, f"{bound:.4f}", f"{rate:.4f}", TRIALS])
    report_sink.append(
        "\nFIG-ERR (a)  t<n/3 single iteration vs worst-case straddle "
        "adversary (Theorem 1 tight)\n"
        + format_table(["slots s", "bound 1/(s-1)", "measured", "trials"], rows)
    )
    benchmark(
        lambda: one_third_failure(2, lambda: OneThirdStraddleAdversary([3]), trials=20)
    )


def test_theorem1_bound_is_met_and_tight_one_half(benchmark, report_sink):
    """t<n/2: one 3-round Prox_5 iteration fails with probability 1/4."""
    bound = float(per_iteration_failure(5))
    rate = one_half_failure(2, lambda: LinearHalfStraddleAdversary([3, 4]))
    assert abs(rate - bound) <= 4 * _sigma(bound, TRIALS), (rate, bound)
    report_sink.append(
        f"FIG-ERR (b)  t<n/2 single Prox_5 iteration vs straddle adversary: "
        f"measured {rate:.4f}, bound {bound:.4f}"
    )
    benchmark(
        lambda: one_half_failure(
            2, lambda: LinearHalfStraddleAdversary([3, 4]), trials=20
        )
    )


def test_end_to_end_error_decays_exponentially(benchmark, report_sink):
    rows = []
    curves = {}
    for protocol, runner, adversary_factory in (
        (
            "one_third",
            one_third_failure,
            lambda: OneThirdStraddleAdversary([3]),
        ),
        (
            "one_half",
            one_half_failure,
            lambda: LinearHalfStraddleAdversary([3, 4]),
        ),
    ):
        rates = {}
        for kappa in (1, 2, 4, 6, 8):
            rates[kappa] = runner(kappa, adversary_factory)
            bound = 2.0 ** -kappa
            assert rates[kappa] <= bound + 4 * _sigma(bound, TRIALS), (
                protocol, kappa, rates[kappa], bound,
            )
            rows.append([protocol, kappa, f"{bound:.4f}", f"{rates[kappa]:.4f}"])
        assert rates[8] < max(rates[1], 1 / TRIALS)
        curves[protocol] = [rates[k] for k in (1, 2, 4, 6, 8)]
    report_sink.append(
        "FIG-ERR (c)  end-to-end failure vs kappa under worst-case attack "
        "(bound 2^-kappa)\n"
        + format_table(["protocol", "kappa", "bound 2^-k", "measured"], rows)
        + "\n  decay (log scale, kappa = 1,2,4,6,8): "
        + "   ".join(
            f"{name} {log_sparkline(series, floor=1 / (2 * TRIALS))}"
            for name, series in curves.items()
        )
    )
    benchmark(
        lambda: one_third_failure(
            2, lambda: OneThirdStraddleAdversary([3]), trials=20
        )
    )


def test_generic_equivocation_stays_below_bound(benchmark, report_sink):
    """A protocol-agnostic equivocator must do no better than Theorem 1
    allows — and in fact does far worse for s > 3 (context for why the
    dedicated straddle adversaries exist)."""
    rows = []
    for kappa in (1, 3):
        factory = lambda c, b: ba_one_third_program(c, b, kappa=kappa)
        rate = one_third_failure(
            kappa,
            lambda: TwoFaceAdversary(victims=[3], factory=factory),
            trials=100,
            seed=31,
        )
        bound = 2.0 ** -kappa
        assert rate <= bound + 4 * _sigma(bound, 100)
        rows.append([kappa, f"{bound:.4f}", f"{rate:.4f}"])
    report_sink.append(
        "FIG-ERR (d)  generic two-face equivocation (non-optimal attack)\n"
        + format_table(["kappa", "bound", "measured"], rows)
    )
    benchmark(
        lambda: one_third_failure(
            1,
            lambda: TwoFaceAdversary(
                victims=[3],
                factory=lambda c, b: ba_one_third_program(c, b, kappa=1),
            ),
            trials=20,
            seed=32,
        )
    )
