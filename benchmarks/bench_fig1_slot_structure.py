"""FIG1 — the paper's Fig. 1: the Proxcensus slot structure.

Fig. 1 depicts the two defining geometric facts of Definition 2:

* (a) *consistency*: honest outputs always occupy at most two **adjacent**
  slots; and
* (b) *validity*: pre-agreement on a value lands everyone on the extremal
  slot of that value, for odd and even slot counts alike.

This benchmark measures both over many adversarial executions of both
multi-party Proxcensus families and prints the honest slot-occupancy
histograms.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.adversary.straddle import OneThirdStraddleAdversary
from repro.adversary.strategies import TwoFaceAdversary
from repro.analysis.experiments import ExperimentSetup, run_trials, slot_occupancy
from repro.analysis.report import format_table
from repro.proxcensus.base import slot_index, slot_label
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program

from .conftest import run

TRIALS = 60


def one_third(rounds):
    return lambda c, x: prox_one_third_program(c, x, rounds=rounds)


def linear_half(rounds):
    return lambda c, x: prox_linear_half_program(c, x, rounds=rounds)


def _positions(result, slots):
    positions = set()
    for output in result.honest_outputs.values():
        value, grade = output
        if value not in (0, 1):
            value, grade = 0, 0
        positions.add(slot_index(value, grade, slots))
    return positions


def test_adjacency_invariant_holds_in_every_execution(benchmark, report_sink):
    """Fig. 1 brace (a): at most two adjacent slots, always."""
    def sweep():
        checked = 0
        for family, factory, slots, n, t, victims in (
            ("one_third", one_third(3), 9, 4, 1, [3]),
            ("one_third", one_third(4), 17, 7, 2, [5, 6]),
            ("linear_half", linear_half(3), 5, 5, 2, [3, 4]),
            ("linear_half", linear_half(4), 7, 5, 2, [3, 4]),
        ):
            setup = ExperimentSetup(num_parties=n, max_faulty=t)
            inputs = [i % 2 for i in range(n)]
            results = run_trials(
                setup, factory, inputs, trials=TRIALS // 4,
                adversary_factory=lambda: TwoFaceAdversary(
                    victims=victims, factory=factory
                ),
                seed=slots,
            )
            for result in results:
                positions = _positions(result, slots)
                assert len(positions) <= 2, (family, positions)
                if len(positions) == 2:
                    low, high = sorted(positions)
                    assert high - low == 1, (family, positions)
                checked += 1
        return checked

    checked = benchmark(sweep)
    report_sink.append(
        f"\nFIG1 (a)  adjacency: {checked} adversarial executions, honest "
        "parties never beyond two adjacent slots"
    )


def test_validity_lands_on_extremal_slots(benchmark, report_sink):
    """Fig. 1 brace (b): pre-agreement -> extremal slot, odd and even s."""
    def check():
        # odd s = 9 (one_third, r = 3)
        res = run(one_third(3), [1] * 4, 1, session="f1v1")
        assert _positions(res, 9) == {8}
        res = run(one_third(3), [0] * 4, 1, session="f1v0")
        assert _positions(res, 9) == {0}
        # odd s = 5 (linear_half, r = 3)
        res = run(linear_half(3), [1] * 5, 2, session="f1v2")
        assert _positions(res, 5) == {4}
        return True

    assert benchmark(check)
    report_sink.append(
        "FIG1 (b)  validity: pre-agreement on 0/1 lands on the leftmost/"
        "rightmost slot"
    )


def test_occupancy_histogram_under_straddle(benchmark, report_sink):
    """The printed figure: where an optimal adversary can hold parties."""
    slots = 9
    setup = ExperimentSetup(num_parties=4, max_faulty=1)

    def histogram():
        return slot_occupancy(
            setup, one_third(3), slots, [0, 0, 1, 1], trials=TRIALS,
            adversary_factory=lambda: OneThirdStraddleAdversary([3]),
            seed=5,
        )

    occupancy = benchmark(histogram)
    labels = [slot_label(p, slots) for p in range(slots)]
    rows = [
        [
            f"({l[0] if l[0] is not None else '⊥'},{l[1]})",
            occupancy.get(p, 0),
        ]
        for p, l in enumerate(labels)
    ]
    report_sink.append(
        "FIG1 (c)  honest slot occupancy under the straddle adversary "
        f"(Prox_9, {TRIALS} runs x 3 honest)\n"
        + format_table(["slot", "count"], rows)
    )
    # The straddle parks parties around the (0,1)/center boundary.
    assert occupancy  # non-empty
    assert set(occupancy) <= set(range(slots))
