"""FIG1 — the paper's Fig. 1: the Proxcensus slot structure.

Fig. 1 depicts the two defining geometric facts of Definition 2:

* (a) *consistency*: honest outputs always occupy at most two **adjacent**
  slots; and
* (b) *validity*: pre-agreement on a value lands everyone on the extremal
  slot of that value, for odd and even slot counts alike.

This benchmark measures both over many adversarial executions of both
multi-party Proxcensus families and prints the honest slot-occupancy
histograms.  All executions drive the experiment engine, so
``REPRO_BENCH_WORKERS`` and ``REPRO_BENCH_BACKEND=vector`` apply.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.report import format_table
from repro.proxcensus.base import slot_index, slot_label

from .conftest import engine_spec, monte_carlo_specs, run_plan

TRIALS = 60

#: (family, protocol, rounds, slots, n, t, victims) — one adversarial
#: sweep per Proxcensus family and expansion depth.
ADJACENCY_SWEEP = (
    ("one_third", "prox_one_third", 3, 9, 4, 1, (3,)),
    ("one_third", "prox_one_third", 4, 17, 7, 2, (5, 6)),
    ("linear_half", "prox_linear_half", 3, 5, 5, 2, (3, 4)),
    ("linear_half", "prox_linear_half", 4, 7, 5, 2, (3, 4)),
)


def _positions(result, slots):
    positions = set()
    for output in result.honest_outputs.values():
        value, grade = output
        if value not in (0, 1):
            value, grade = 0, 0
        positions.add(slot_index(value, grade, slots))
    return positions


def test_adjacency_invariant_holds_in_every_execution(benchmark, report_sink):
    """Fig. 1 brace (a): at most two adjacent slots, always."""
    def sweep():
        checked = 0
        for family, protocol, rounds, slots, n, t, victims in ADJACENCY_SWEEP:
            inputs = [i % 2 for i in range(n)]
            results = run_plan(
                f"fig1-adjacency-{family}-{slots}",
                monte_carlo_specs(
                    protocol, inputs, t, trials=TRIALS // 4,
                    params={"rounds": rounds},
                    adversary="two_face",
                    adversary_params={"victims": victims},
                    seed=slots,
                ),
            )
            for result in results:
                positions = _positions(result, slots)
                assert len(positions) <= 2, (family, positions)
                if len(positions) == 2:
                    low, high = sorted(positions)
                    assert high - low == 1, (family, positions)
                checked += 1
        return checked

    checked = benchmark(sweep)
    report_sink.append(
        f"\nFIG1 (a)  adjacency: {checked} adversarial executions, honest "
        "parties never beyond two adjacent slots"
    )


def test_validity_lands_on_extremal_slots(benchmark, report_sink):
    """Fig. 1 brace (b): pre-agreement -> extremal slot, odd and even s."""
    def check():
        pre1, pre0, half = run_plan(
            "fig1-validity",
            [
                # odd s = 9 (one_third, r = 3)
                engine_spec(
                    "prox_one_third", [1] * 4, 1,
                    params={"rounds": 3}, session="f1v1",
                ),
                engine_spec(
                    "prox_one_third", [0] * 4, 1,
                    params={"rounds": 3}, session="f1v0",
                ),
                # odd s = 5 (linear_half, r = 3)
                engine_spec(
                    "prox_linear_half", [1] * 5, 2,
                    params={"rounds": 3}, session="f1v2",
                ),
            ],
        )
        assert _positions(pre1, 9) == {8}
        assert _positions(pre0, 9) == {0}
        assert _positions(half, 5) == {4}
        return True

    assert benchmark(check)
    report_sink.append(
        "FIG1 (b)  validity: pre-agreement on 0/1 lands on the leftmost/"
        "rightmost slot"
    )


def test_occupancy_histogram_under_straddle(benchmark, report_sink):
    """The printed figure: where an optimal adversary can hold parties."""
    slots = 9

    def histogram():
        results = run_plan(
            "fig1-occupancy",
            monte_carlo_specs(
                "prox_one_third", [0, 0, 1, 1], 1, trials=TRIALS,
                params={"rounds": 3},
                adversary="straddle13",
                adversary_params={"victims": (3,)},
                seed=5,
            ),
        )
        occupancy: Counter = Counter()
        for result in results:
            for output in result.honest_outputs.values():
                value, grade = output
                if value not in (0, 1):
                    value, grade = 0, 0
                occupancy[slot_index(value, grade, slots)] += 1
        return occupancy

    occupancy = benchmark(histogram)
    labels = [slot_label(p, slots) for p in range(slots)]
    rows = [
        [
            f"({l[0] if l[0] is not None else '⊥'},{l[1]})",
            occupancy.get(p, 0),
        ]
        for p, l in enumerate(labels)
    ]
    report_sink.append(
        "FIG1 (c)  honest slot occupancy under the straddle adversary "
        f"(Prox_9, {TRIALS} runs x 3 honest)\n"
        + format_table(["slot", "count"], rows)
    )
    # The straddle parks parties around the (0,1)/center boundary.
    assert occupancy  # non-empty
    assert set(occupancy) <= set(range(slots))
