"""GC-SUB — the §3.5 closing remark: Prox_4 proxcast vs certificate gradecast.

Paper: "the communication complexity of the MV protocol (for t < n/2) can
be reduced by a factor of n by substituting their 3-round {0,1,2}-gradecast
protocol by 3-round Prox_s^4, the single-sender version of Prox_4".

Both 3-round single-sender primitives are implemented here; this benchmark
measures their signature traffic side by side.  The certificate gradecast
forwards full ``n - t``-signature certificates in round 3 (Θ(n) signatures
per message → Θ(n³) total), while 4-slot proxcast relays at most two
dealer signatures per message (Θ(n²) total) — so the measured ratio grows
linearly in ``n``.  All executions drive the experiment engine.
"""

from __future__ import annotations

from repro.analysis.report import format_table

from .conftest import engine_spec, run_plan

SWEEP_N = (5, 9, 13, 17)


def test_prox4_substitution_saves_factor_n(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        specs = []
        for n in SWEEP_N:
            t = (n - 1) // 2
            specs.append(
                engine_spec(
                    "certificate_gradecast", ["v"] * n, t,
                    params={"dealer": 0}, session=f"gc{n}",
                )
            )
            specs.append(
                engine_spec(
                    "proxcast", ["v"] * n, t,
                    params={"slots": 4, "dealer": 0}, session=f"px{n}",
                )
            )
        results = run_plan("gradecast-substitution", specs)
        ratios = []
        for position, n in enumerate(SWEEP_N):
            cert = results[2 * position].metrics.honest_signatures
            prox4 = results[2 * position + 1].metrics.honest_signatures
            ratio = cert / prox4
            ratios.append(ratio)
            rows.append([n, cert, prox4, f"{ratio:.2f}"])
        # factor-n shape: the ratio grows (roughly linearly) with n.
        assert ratios == sorted(ratios)
        assert ratios[-1] / ratios[0] > 2.0
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nGC-SUB  3-round single-sender gradecast: certificate echo vs "
        "Prox_4 proxcast (honest signatures)\n"
        + format_table(["n", "cert gradecast", "Prox_4 proxcast", "ratio"], rows)
    )


def test_both_primitives_run_in_three_rounds(benchmark):
    def check():
        res_cert, res_prox = run_plan(
            "gradecast-three-rounds",
            [
                engine_spec(
                    "certificate_gradecast", ["v"] * 5, 2,
                    params={"dealer": 0}, session="gr3a",
                ),
                engine_spec(
                    "proxcast", ["v"] * 5, 2,
                    params={"slots": 4, "dealer": 0}, session="gr3b",
                ),
            ],
        )
        assert res_cert.metrics.rounds == res_prox.metrics.rounds == 3
        return True

    assert benchmark(check)
