"""GC-SUB — the §3.5 closing remark: Prox_4 proxcast vs certificate gradecast.

Paper: "the communication complexity of the MV protocol (for t < n/2) can
be reduced by a factor of n by substituting their 3-round {0,1,2}-gradecast
protocol by 3-round Prox_s^4, the single-sender version of Prox_4".

Both 3-round single-sender primitives are implemented here; this benchmark
measures their signature traffic side by side.  The certificate gradecast
forwards full ``n - t``-signature certificates in round 3 (Θ(n) signatures
per message → Θ(n³) total), while 4-slot proxcast relays at most two
dealer signatures per message (Θ(n²) total) — so the measured ratio grows
linearly in ``n``.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.proxcensus.gradecast_cert import certificate_gradecast_program
from repro.proxcensus.proxcast import proxcast_program

from .conftest import run


def _signatures(factory, n, t, session):
    res = run(factory, ["v"] * n, t, session=session)
    return res.metrics.honest_signatures


def test_prox4_substitution_saves_factor_n(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        ratios = []
        for n in (5, 9, 13, 17):
            t = (n - 1) // 2
            cert = _signatures(
                lambda c, v: certificate_gradecast_program(c, v, 0),
                n, t, f"gc{n}",
            )
            prox4 = _signatures(
                lambda c, v: proxcast_program(c, v, slots=4, dealer=0),
                n, t, f"px{n}",
            )
            ratio = cert / prox4
            ratios.append(ratio)
            rows.append([n, cert, prox4, f"{ratio:.2f}"])
        # factor-n shape: the ratio grows (roughly linearly) with n.
        assert ratios == sorted(ratios)
        assert ratios[-1] / ratios[0] > 2.0
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nGC-SUB  3-round single-sender gradecast: certificate echo vs "
        "Prox_4 proxcast (honest signatures)\n"
        + format_table(["n", "cert gradecast", "Prox_4 proxcast", "ratio"], rows)
    )


def test_both_primitives_run_in_three_rounds(benchmark):
    def check():
        res_cert = run(
            lambda c, v: certificate_gradecast_program(c, v, 0),
            ["v"] * 5, 2, session="gr3a",
        )
        res_prox = run(
            lambda c, v: proxcast_program(c, v, slots=4, dealer=0),
            ["v"] * 5, 2, session="gr3b",
        )
        assert res_cert.metrics.rounds == res_prox.metrics.rounds == 3
        return True

    assert benchmark(check)
