"""FIG-FAULT — how the paper's guarantees degrade as synchrony bends.

The κ+1 / 3κ/2 round bounds and 2^-κ error probabilities are proved in
a clean synchronous network (PAPER.md §2.1).  This sweep measures what
actually happens when the network misbehaves: a grid of background
loss/delay rate × partition length (the ``degraded`` registry scenario:
i.i.d. loss and delay plus one healing split) crossed with two
protocols —

* ``ba_one_third`` (fixed κ+1 rounds): round count cannot move, so the
  degradation shows up purely as *error probability* — the agreement
  rate falls as the network eats messages;
* ``fm_probabilistic`` (probabilistic termination): agreement is
  enforced by termination detection, so the degradation shows up as
  *round count* — expected rounds stretch as coins and echoes go
  missing.

Every cell runs through ``engine_spec``/``run_plan`` (the legacy-seeded
engine path), so results are bit-identical across worker counts; the
full sweep writes the committed ``BENCH_faults.json`` degradation
curves.  ``REPRO_BENCH_FAULT_TRIALS`` bounds per-cell trials for the
``make bench-quick`` smoke (which skips the artifact — a 6-trial grid
must never overwrite the committed curves).
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import engine_spec, run_plan
from repro.analysis.report import format_table

FULL_TRIALS = 120
LOSS_RATES = (0.0, 0.05, 0.1, 0.2)
SPLIT_ROUNDS = (0, 2, 4)
KAPPA = 3

_ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_faults.json")


def _trials() -> int:
    raw = os.environ.get("REPRO_BENCH_FAULT_TRIALS", "").strip()
    if not raw:
        return FULL_TRIALS
    try:
        return max(1, int(raw))
    except ValueError:
        return FULL_TRIALS


def _fault_args(rate, split_rounds):
    """(faults, fault_params) for one grid cell; the clean cell is None."""
    if rate == 0.0 and split_rounds == 0:
        return None, None
    params = {"rate": rate, "max_delay": 2}
    if split_rounds:
        params.update(split=(0, 1), heal=1 + split_rounds)
    return "degraded", params


def _cell(protocol, inputs, params, rate, split_rounds, trials, seed_base):
    faults, fault_params = _fault_args(rate, split_rounds)
    specs = [
        engine_spec(
            protocol,
            inputs,
            (len(inputs) - 1) // 3,
            params=params,
            seed=seed_base + index,
            session=f"fault-{protocol}-{rate}-{split_rounds}-{index}",
            faults=faults,
            fault_params=fault_params,
        )
        for index in range(trials)
    ]
    results = run_plan(f"fault-{protocol}-{rate}-{split_rounds}", specs)
    agreed = sum(1 for result in results if result.honest_agree())
    return {
        "loss": rate,
        "partition_rounds": split_rounds,
        "agreement_rate": agreed / trials,
        "mean_rounds": sum(r.metrics.rounds for r in results) / trials,
        "mean_messages": sum(r.metrics.total_messages for r in results) / trials,
    }


def _sweep(protocol, inputs, params, trials, seed_base):
    return [
        _cell(protocol, inputs, params, rate, split_rounds, trials,
              seed_base + 10_000 * cell_index)
        for cell_index, (rate, split_rounds) in enumerate(
            (rate, split_rounds)
            for rate in LOSS_RATES
            for split_rounds in SPLIT_ROUNDS
        )
    ]


def _rows(cells, value_key, fmt):
    return [
        [cell["loss"], cell["partition_rounds"], fmt % cell[value_key]]
        for cell in cells
    ]


def test_fault_tolerance_degradation_curves(benchmark, report_sink):
    trials = _trials()

    ba_cells = _sweep(
        "ba_one_third", (1, 0, 1, 0, 1), {"kappa": KAPPA}, trials, 0
    )
    fm_cells = _sweep("fm_probabilistic", (1, 0, 1, 0), {}, trials, 500_000)

    by_key = {
        (cell["loss"], cell["partition_rounds"]): cell for cell in ba_cells
    }
    clean = by_key[(0.0, 0)]
    worst = by_key[(LOSS_RATES[-1], SPLIT_ROUNDS[-1])]
    # The clean cell IS the paper's model: fault-free, no adversary, so
    # agreement is certain and the round count is exactly kappa + 1.
    assert clean["agreement_rate"] == 1.0
    assert clean["mean_rounds"] == KAPPA + 1
    # Degradation is monotone at the corners: the heaviest cell can
    # never beat the clean one.
    assert worst["agreement_rate"] <= clean["agreement_rate"]
    for cell in ba_cells:
        assert 0.0 <= cell["agreement_rate"] <= 1.0
        assert cell["mean_rounds"] == KAPPA + 1  # fixed-round, by design

    fm_by_key = {
        (cell["loss"], cell["partition_rounds"]): cell for cell in fm_cells
    }
    fm_clean = fm_by_key[(0.0, 0)]
    fm_worst = fm_by_key[(LOSS_RATES[-1], SPLIT_ROUNDS[-1])]
    # Probabilistic termination pays for faults in rounds, not safety.
    assert fm_worst["mean_rounds"] >= fm_clean["mean_rounds"]

    report_sink.append(
        "\nFIG-FAULT (a)  ba_one_third (kappa=3, fixed-round): agreement "
        f"rate vs loss x partition ({trials} trials/cell)\n"
        + format_table(
            ["loss", "split rounds", "agreement"],
            _rows(ba_cells, "agreement_rate", "%.4f"),
        )
        + "\n\nFIG-FAULT (b)  fm_probabilistic: mean rounds to terminate "
        f"vs loss x partition ({trials} trials/cell)\n"
        + format_table(
            ["loss", "split rounds", "mean rounds"],
            _rows(fm_cells, "mean_rounds", "%.2f"),
        )
    )

    if trials >= FULL_TRIALS:
        artifact = {
            "schema": "repro-bench-faults/1",
            "scenario": "degraded",
            "kappa": KAPPA,
            "trials": trials,
            "loss_rates": list(LOSS_RATES),
            "partition_rounds": list(SPLIT_ROUNDS),
            "protocols": {
                "ba_one_third": ba_cells,
                "fm_probabilistic": fm_cells,
            },
        }
        with open(_ARTIFACT, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report_sink.append(f"\nwrote {os.path.normpath(_ARTIFACT)}")
    else:
        report_sink.append(
            f"\nsmoke run ({trials} trials/cell < {FULL_TRIALS}): "
            "BENCH_faults.json not rewritten"
        )

    benchmark(
        lambda: _cell(
            "ba_one_third", (1, 0, 1, 0, 1), {"kappa": KAPPA},
            LOSS_RATES[-1], SPLIT_ROUNDS[-1], min(trials, 10), 0,
        )
    )
