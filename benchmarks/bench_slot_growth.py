"""FIG-SLOTS — slots-per-round growth of the four Proxcensus families.

Paper formulas reproduced and *executed*:

* Corollary 1 (t < n/3): ``2^r + 1`` slots in ``r`` rounds;
* Lemma 3 (t < n/2): ``2r - 1`` slots in ``r`` rounds;
* Lemma 7 (t < n/2): ``3 + (r-3)(r-2)`` slots in ``r`` rounds;
* Lemma 6 (t < n, single sender): ``s`` slots in ``s - 1`` rounds.

"Executed" means the protocol is actually run for each (family, r) and
must (a) consume exactly ``r`` simulator rounds and (b) hand out the
maximal grade ``⌊(s-1)/2⌋`` under pre-agreement — i.e. the advertised slot
range genuinely exists in the implementation, not just in a formula.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.proxcensus.base import max_grade
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program
from repro.proxcensus.proxcast import proxcast_program
from repro.proxcensus.quadratic_half import prox_quadratic_half_program
from repro.proxcensus.registry import FAMILIES

from .conftest import run


def _execute(family, rounds):
    """Run the family's protocol at `rounds`; return (sim rounds, grade)."""
    if family == "one_third":
        res = run(
            lambda c, x: prox_one_third_program(c, x, rounds=rounds),
            [1] * 4, 1, session=f"sg13-{rounds}",
        )
    elif family == "linear_half":
        res = run(
            lambda c, x: prox_linear_half_program(c, x, rounds=rounds),
            [1] * 5, 2, session=f"sglh-{rounds}",
        )
    elif family == "quadratic_half":
        res = run(
            lambda c, x: prox_quadratic_half_program(c, x, rounds=rounds),
            [1] * 5, 2, session=f"sgqh-{rounds}",
        )
    elif family == "proxcast":
        res = run(
            lambda c, x: proxcast_program(c, x, slots=rounds + 1, dealer=0),
            [1] * 4, 3, session=f"sgpx-{rounds}",
        )
    else:
        raise AssertionError(family)
    grades = {o.grade for o in res.outputs.values()}
    assert len(grades) == 1
    return res.metrics.rounds, grades.pop()


def test_slot_growth_formulas_and_executions(benchmark, report_sink):
    sweep_rounds = {
        "one_third": [1, 2, 3, 4, 5],
        "linear_half": [2, 3, 4, 5],
        "quadratic_half": [3, 4, 5, 6],
        "proxcast": [1, 2, 3, 4],
    }
    rows = []

    def sweep():
        rows.clear()  # benchmark() re-runs this callable
        for name, rounds_list in sweep_rounds.items():
            family = FAMILIES[name]
            for rounds in rounds_list:
                slots = family.slots_for_rounds(rounds)
                sim_rounds, grade = _execute(name, rounds)
                assert sim_rounds == rounds, (name, rounds, sim_rounds)
                assert grade == max_grade(slots), (name, rounds, grade, slots)
                rows.append([name, rounds, slots, grade])
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nFIG-SLOTS  slots per round, formula == execution "
        "(grade = max grade reached under pre-agreement)\n"
        + format_table(["family", "rounds", "slots", "max grade"], rows)
    )


def test_exponential_beats_quadratic_beats_linear(benchmark, report_sink):
    def ordering():
        for rounds in (6, 10, 20, 40):
            exp = FAMILIES["one_third"].slots_for_rounds(rounds)
            quad = FAMILIES["quadratic_half"].slots_for_rounds(rounds)
            lin = FAMILIES["linear_half"].slots_for_rounds(rounds)
            cast = FAMILIES["proxcast"].slots_for_rounds(rounds)
            assert exp > quad > lin > cast
        return True

    assert benchmark(ordering)
    report_sink.append(
        "FIG-SLOTS  asymptotic ordering holds: 2^r+1 > 3+(r-3)(r-2) > 2r-1 "
        "> r+1 for r >= 6"
    )
