"""FIG-SLOTS — slots-per-round growth of the four Proxcensus families.

Paper formulas reproduced and *executed*:

* Corollary 1 (t < n/3): ``2^r + 1`` slots in ``r`` rounds;
* Lemma 3 (t < n/2): ``2r - 1`` slots in ``r`` rounds;
* Lemma 7 (t < n/2): ``3 + (r-3)(r-2)`` slots in ``r`` rounds;
* Lemma 6 (t < n, single sender): ``s`` slots in ``s - 1`` rounds.

"Executed" means the protocol is actually run for each (family, r) and
must (a) consume exactly ``r`` simulator rounds and (b) hand out the
maximal grade ``⌊(s-1)/2⌋`` under pre-agreement — i.e. the advertised slot
range genuinely exists in the implementation, not just in a formula.  The
whole (family × rounds) sweep fans out through one engine plan.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.proxcensus.base import max_grade
from repro.proxcensus.registry import FAMILIES

from .conftest import engine_spec, run_plan

SWEEP_ROUNDS = {
    "one_third": [1, 2, 3, 4, 5],
    "linear_half": [2, 3, 4, 5],
    "quadratic_half": [3, 4, 5, 6],
    "proxcast": [1, 2, 3, 4],
}


def _spec(family, rounds):
    if family == "one_third":
        return engine_spec(
            "prox_one_third", [1] * 4, 1,
            params={"rounds": rounds}, session=f"sg13-{rounds}",
        )
    if family == "linear_half":
        return engine_spec(
            "prox_linear_half", [1] * 5, 2,
            params={"rounds": rounds}, session=f"sglh-{rounds}",
        )
    if family == "quadratic_half":
        return engine_spec(
            "prox_quadratic_half", [1] * 5, 2,
            params={"rounds": rounds}, session=f"sgqh-{rounds}",
        )
    if family == "proxcast":
        return engine_spec(
            "proxcast", [1] * 4, 3,
            params={"slots": rounds + 1, "dealer": 0},
            session=f"sgpx-{rounds}",
        )
    raise AssertionError(family)


def test_slot_growth_formulas_and_executions(benchmark, report_sink):
    points = [
        (name, rounds)
        for name, rounds_list in SWEEP_ROUNDS.items()
        for rounds in rounds_list
    ]
    rows = []

    def sweep():
        rows.clear()  # benchmark() re-runs this callable
        results = run_plan(
            "slot-growth", [_spec(name, rounds) for name, rounds in points]
        )
        for (name, rounds), res in zip(points, results):
            slots = FAMILIES[name].slots_for_rounds(rounds)
            grades = {o.grade for o in res.outputs.values()}
            assert len(grades) == 1
            grade = grades.pop()
            assert res.metrics.rounds == rounds, (name, rounds, res.metrics.rounds)
            assert grade == max_grade(slots), (name, rounds, grade, slots)
            rows.append([name, rounds, slots, grade])
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nFIG-SLOTS  slots per round, formula == execution "
        "(grade = max grade reached under pre-agreement)\n"
        + format_table(["family", "rounds", "slots", "max grade"], rows)
    )


def test_exponential_beats_quadratic_beats_linear(benchmark, report_sink):
    def ordering():
        for rounds in (6, 10, 20, 40):
            exp = FAMILIES["one_third"].slots_for_rounds(rounds)
            quad = FAMILIES["quadratic_half"].slots_for_rounds(rounds)
            lin = FAMILIES["linear_half"].slots_for_rounds(rounds)
            cast = FAMILIES["proxcast"].slots_for_rounds(rounds)
            assert exp > quad > lin > cast
        return True

    assert benchmark(ordering)
    report_sink.append(
        "FIG-SLOTS  asymptotic ordering holds: 2^r+1 > 3+(r-3)(r-2) > 2r-1 "
        "> r+1 for r >= 6"
    )
