"""TAB-EFF — the §3.5 efficiency-comparison table, measured.

Paper claim: for target error 2^-κ (assuming a 1-round coin),

    t < n/3:  ours κ+1 rounds   vs  fixed-round Feldman–Micali 2κ
    t < n/2:  ours 3κ/2 rounds  vs  Micali–Vaikuntanathan 2κ

This benchmark *runs* all four protocols in the simulator, counts actual
communication rounds, and asserts they equal the paper's closed forms; the
deterministic Dolev–Strong yardstick (t+1 rounds) is printed alongside.

Execution goes through the experiment engine (hand-built
:class:`~repro.engine.plan.TrialSpec`s with the legacy seeds/sessions, so
every measured number is bit-identical to the old serial loop) — set
``REPRO_BENCH_WORKERS`` to fan the κ-sweep across processes.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.analysis.theory import rounds_for_error

from .conftest import engine_spec, run_plan

KAPPAS = [2, 4, 8, 16]
INPUTS_13 = [1, 0, 1, 0]        # n = 4, t = 1  (t < n/3)
INPUTS_12 = [1, 0, 1, 0, 1]     # n = 5, t = 2  (t < n/2)


def _specs_for(kappa):
    return [
        engine_spec(
            "ba_one_third", INPUTS_13, 1,
            params={"kappa": kappa}, session=f"eff13-{kappa}",
        ),
        engine_spec(
            "feldman_micali", INPUTS_13, 1,
            params={"kappa": kappa}, session=f"efffm-{kappa}",
        ),
        engine_spec(
            "ba_one_half", INPUTS_12, 2,
            params={"kappa": kappa}, session=f"eff12-{kappa}",
        ),
        engine_spec(
            "micali_vaikuntanathan", INPUTS_12, 2,
            params={"kappa": kappa}, session=f"effmv-{kappa}",
        ),
    ]


def _rounds(results):
    ours13, fm, ours12, mv = (result.metrics.rounds for result in results)
    return {"ours13": ours13, "fm": fm, "ours12": ours12, "mv": mv}


def measured_rounds(kappa):
    return _rounds(run_plan(f"eff-k{kappa}", _specs_for(kappa)))


def test_efficiency_table(benchmark, report_sink):
    # One plan for the whole κ-sweep: 4 protocols × len(KAPPAS) specs,
    # fanned across REPRO_BENCH_WORKERS processes when set.
    results = run_plan(
        "eff-sweep", [spec for kappa in KAPPAS for spec in _specs_for(kappa)]
    )
    rows = []
    for position, kappa in enumerate(KAPPAS):
        measured = _rounds(results[position * 4 : position * 4 + 4])
        expected = {
            "ours13": rounds_for_error("ours_one_third", kappa),
            "fm": rounds_for_error("feldman_micali", kappa),
            "ours12": rounds_for_error("ours_one_half", kappa),
            "mv": rounds_for_error("micali_vaikuntanathan", kappa),
        }
        assert measured == expected, f"kappa={kappa}: {measured} != {expected}"
        # The paper's headline orderings.
        assert measured["ours13"] < measured["fm"]
        assert measured["ours12"] < measured["mv"]
        rows.append(
            [
                kappa,
                f"{measured['ours13']} ({expected['ours13']})",
                f"{measured['fm']} ({expected['fm']})",
                f"{measured['ours12']} ({expected['ours12']})",
                f"{measured['mv']} ({expected['mv']})",
                f"{measured['fm'] / measured['ours13']:.2f}x",
                f"{measured['mv'] / measured['ours12']:.2f}x",
            ]
        )
    dolev_strong = run_plan(
        "eff-ds", [engine_spec("dolev_strong", INPUTS_13, 1, session="effds")]
    )[0].metrics.rounds
    report_sink.append(
        "\nTAB-EFF  rounds to reach error 2^-kappa - measured (paper)\n"
        + format_table(
            [
                "kappa",
                "ours t<n/3",
                "FM t<n/3",
                "ours t<n/2",
                "MV t<n/2",
                "speedup 1/3",
                "speedup 1/2",
            ],
            rows,
        )
        + f"\n(deterministic Dolev-Strong yardstick at n=4, t=1: "
        f"{dolev_strong} rounds regardless of kappa; error 0)"
    )
    benchmark(lambda: measured_rounds(8))
