"""TAB-EFF — the §3.5 efficiency-comparison table, measured.

Paper claim: for target error 2^-κ (assuming a 1-round coin),

    t < n/3:  ours κ+1 rounds   vs  fixed-round Feldman–Micali 2κ
    t < n/2:  ours 3κ/2 rounds  vs  Micali–Vaikuntanathan 2κ

This benchmark *runs* all four protocols in the simulator, counts actual
communication rounds, and asserts they equal the paper's closed forms; the
deterministic Dolev–Strong yardstick (t+1 rounds) is printed alongside.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.analysis.theory import rounds_for_error
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.core.dolev_strong import dolev_strong_ba_program
from repro.core.feldman_micali import feldman_micali_program
from repro.core.micali_vaikuntanathan import micali_vaikuntanathan_program

from .conftest import run

KAPPAS = [2, 4, 8, 16]
INPUTS_13 = [1, 0, 1, 0]        # n = 4, t = 1  (t < n/3)
INPUTS_12 = [1, 0, 1, 0, 1]     # n = 5, t = 2  (t < n/2)


def measured_rounds(kappa):
    ours13 = run(
        lambda c, b: ba_one_third_program(c, b, kappa), INPUTS_13, 1,
        session=f"eff13-{kappa}",
    ).metrics.rounds
    fm = run(
        lambda c, b: feldman_micali_program(c, b, kappa), INPUTS_13, 1,
        session=f"efffm-{kappa}",
    ).metrics.rounds
    ours12 = run(
        lambda c, b: ba_one_half_program(c, b, kappa), INPUTS_12, 2,
        session=f"eff12-{kappa}",
    ).metrics.rounds
    mv = run(
        lambda c, b: micali_vaikuntanathan_program(c, b, kappa), INPUTS_12, 2,
        session=f"effmv-{kappa}",
    ).metrics.rounds
    return {"ours13": ours13, "fm": fm, "ours12": ours12, "mv": mv}


def test_efficiency_table(benchmark, report_sink):
    rows = []
    for kappa in KAPPAS:
        measured = measured_rounds(kappa)
        expected = {
            "ours13": rounds_for_error("ours_one_third", kappa),
            "fm": rounds_for_error("feldman_micali", kappa),
            "ours12": rounds_for_error("ours_one_half", kappa),
            "mv": rounds_for_error("micali_vaikuntanathan", kappa),
        }
        assert measured == expected, f"kappa={kappa}: {measured} != {expected}"
        # The paper's headline orderings.
        assert measured["ours13"] < measured["fm"]
        assert measured["ours12"] < measured["mv"]
        rows.append(
            [
                kappa,
                f"{measured['ours13']} ({expected['ours13']})",
                f"{measured['fm']} ({expected['fm']})",
                f"{measured['ours12']} ({expected['ours12']})",
                f"{measured['mv']} ({expected['mv']})",
                f"{measured['fm'] / measured['ours13']:.2f}x",
                f"{measured['mv'] / measured['ours12']:.2f}x",
            ]
        )
    dolev_strong = run(
        lambda c, v: dolev_strong_ba_program(c, v), INPUTS_13, 1, session="effds"
    ).metrics.rounds
    report_sink.append(
        "\nTAB-EFF  rounds to reach error 2^-kappa - measured (paper)\n"
        + format_table(
            [
                "kappa",
                "ours t<n/3",
                "FM t<n/3",
                "ours t<n/2",
                "MV t<n/2",
                "speedup 1/3",
                "speedup 1/2",
            ],
            rows,
        )
        + f"\n(deterministic Dolev-Strong yardstick at n=4, t=1: "
        f"{dolev_strong} rounds regardless of kappa; error 0)"
    )
    benchmark(lambda: measured_rounds(8))
