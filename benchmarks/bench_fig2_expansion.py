"""FIG2 — the paper's Fig. 2: the one-round Proxcensus expansion.

Fig. 2 tabulates the quorum conditions that map a ``Prox_4`` (resp.
``Prox_5``) echo profile onto the 7 (resp. 9) slots of the expanded
Proxcensus.  We regenerate those condition rows from the implementation's
own case analysis and validate the expansion *behaviourally*: one extra
round must double the slot range (2s - 1) while preserving validity and
consistency, including from non-binary inner Proxcensus states.
"""

from __future__ import annotations

import pytest

from repro.adversary.strategies import TwoFaceAdversary
from repro.analysis.report import format_table
from repro.analysis.tables import fig2_expansion_conditions
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    check_proxcensus_validity,
    max_grade,
)
from repro.proxcensus.one_third import (
    prox_expand_once_program,
    prox_one_third_program,
    slots_after_rounds,
)

from .conftest import run


def test_fig2_condition_rows(benchmark, report_sink):
    """The condition table for both of the figure's examples."""
    for inner, outer in ((4, 7), (5, 9)):
        rows = fig2_expansion_conditions(inner)
        grades = sorted(grade for (_v, grade), _cond in rows)
        # one condition row per value-side grade 1..G plus the default slot
        assert grades == list(range(0, max_grade(outer) + 1)), (inner, grades)
    report_sink.append(
        "\nFIG2  expansion conditions Prox_5 -> Prox_9 (z = candidate value)\n"
        + format_table(
            ["new slot", "condition"],
            [
                [f"({v},{g})", condition]
                for (v, g), condition in fig2_expansion_conditions(5)
            ],
        )
    )
    benchmark(lambda: fig2_expansion_conditions(5))


def test_expansion_doubles_slots_and_preserves_invariants(benchmark, report_sink):
    """Behavioural check over the iterated expansion chain 2->3->5->9->17."""
    def chain():
        for rounds in (1, 2, 3, 4):
            slots = slots_after_rounds(rounds)
            assert slots == 2 * slots_after_rounds(rounds - 1) - 1
            factory = lambda c, x, r=rounds: prox_one_third_program(c, x, rounds=r)
            res = run(factory, [1] * 4, 1, session=f"f2v{rounds}")
            check_proxcensus_validity(res.outputs.values(), slots, 1)
            adversary = TwoFaceAdversary(victims=[3], factory=factory)
            res = run(
                factory, [0, 0, 1, 1], 1, adversary=adversary,
                session=f"f2c{rounds}",
            )
            check_proxcensus_consistency(res.honest_outputs.values(), slots)
        return True

    assert benchmark(chain)
    report_sink.append(
        "FIG2  executed expansion chain Prox_2 -> Prox_3 -> Prox_5 -> "
        "Prox_9 -> Prox_17: validity and consistency hold at every stage"
    )


def test_fig2_prox4_example_executed(benchmark, report_sink):
    """The figure's even-s example, executed from synthetic Prox_4 states
    (the iterated chain only produces odd s, so this path needs the
    standalone expansion API)."""

    def check():
        expander = lambda c, pair: prox_expand_once_program(c, pair[0], pair[1], 4)
        # extremal Prox_4 slot -> extremal Prox_7 slot
        res = run(expander, [(1, 1)] * 4, 1, session="f2p4a")
        check_proxcensus_validity(res.outputs.values(), 7, 1)
        # adjacent Prox_4 slots -> adjacent Prox_7 slots
        res = run(expander, [(1, 0), (1, 1), (1, 1), (1, 0)], 1, session="f2p4b")
        check_proxcensus_consistency(res.outputs.values(), 7)
        return True

    assert benchmark(check)
    report_sink.append(
        "FIG2  executed Prox_4 -> Prox_7 (the figure's even-s example) "
        "from synthetic inner states: extremal -> extremal, adjacent -> "
        "adjacent"
    )
