"""FIG2 — the paper's Fig. 2: the one-round Proxcensus expansion.

Fig. 2 tabulates the quorum conditions that map a ``Prox_4`` (resp.
``Prox_5``) echo profile onto the 7 (resp. 9) slots of the expanded
Proxcensus.  We regenerate those condition rows from the implementation's
own case analysis and validate the expansion *behaviourally*: one extra
round must double the slot range (2s - 1) while preserving validity and
consistency, including from non-binary inner Proxcensus states.  All
executions drive the experiment engine.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.tables import fig2_expansion_conditions
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    check_proxcensus_validity,
    max_grade,
)
from repro.proxcensus.one_third import slots_after_rounds

from .conftest import engine_spec, run_plan


def test_fig2_condition_rows(benchmark, report_sink):
    """The condition table for both of the figure's examples."""
    for inner, outer in ((4, 7), (5, 9)):
        rows = fig2_expansion_conditions(inner)
        grades = sorted(grade for (_v, grade), _cond in rows)
        # one condition row per value-side grade 1..G plus the default slot
        assert grades == list(range(0, max_grade(outer) + 1)), (inner, grades)
    report_sink.append(
        "\nFIG2  expansion conditions Prox_5 -> Prox_9 (z = candidate value)\n"
        + format_table(
            ["new slot", "condition"],
            [
                [f"({v},{g})", condition]
                for (v, g), condition in fig2_expansion_conditions(5)
            ],
        )
    )
    benchmark(lambda: fig2_expansion_conditions(5))


def test_expansion_doubles_slots_and_preserves_invariants(benchmark, report_sink):
    """Behavioural check over the iterated expansion chain 2->3->5->9->17."""
    def chain():
        specs = []
        for rounds in (1, 2, 3, 4):
            specs.append(
                engine_spec(
                    "prox_one_third", [1] * 4, 1,
                    params={"rounds": rounds}, session=f"f2v{rounds}",
                )
            )
            specs.append(
                engine_spec(
                    "prox_one_third", [0, 0, 1, 1], 1,
                    params={"rounds": rounds},
                    adversary="two_face",
                    adversary_params={"victims": (3,)},
                    session=f"f2c{rounds}",
                )
            )
        results = run_plan("fig2-expansion-chain", specs)
        for position, rounds in enumerate((1, 2, 3, 4)):
            slots = slots_after_rounds(rounds)
            assert slots == 2 * slots_after_rounds(rounds - 1) - 1
            valid, attacked = results[2 * position], results[2 * position + 1]
            check_proxcensus_validity(valid.outputs.values(), slots, 1)
            check_proxcensus_consistency(attacked.honest_outputs.values(), slots)
        return True

    assert benchmark(chain)
    report_sink.append(
        "FIG2  executed expansion chain Prox_2 -> Prox_3 -> Prox_5 -> "
        "Prox_9 -> Prox_17: validity and consistency hold at every stage"
    )


def test_fig2_prox4_example_executed(benchmark, report_sink):
    """The figure's even-s example, executed from synthetic Prox_4 states
    (the iterated chain only produces odd s, so this path needs the
    standalone expansion API)."""

    def check():
        extremal, adjacent = run_plan(
            "fig2-prox4-example",
            [
                # extremal Prox_4 slot -> extremal Prox_7 slot
                engine_spec(
                    "prox_expand_once", [(1, 1)] * 4, 1,
                    params={"slots": 4}, session="f2p4a",
                ),
                # adjacent Prox_4 slots -> adjacent Prox_7 slots
                engine_spec(
                    "prox_expand_once", [(1, 0), (1, 1), (1, 1), (1, 0)], 1,
                    params={"slots": 4}, session="f2p4b",
                ),
            ],
        )
        check_proxcensus_validity(extremal.outputs.values(), 7, 1)
        check_proxcensus_consistency(adjacent.outputs.values(), 7)
        return True

    assert benchmark(check)
    report_sink.append(
        "FIG2  executed Prox_4 -> Prox_7 (the figure's even-s example) "
        "from synthetic inner states: extremal -> extremal, adjacent -> "
        "adjacent"
    )
