"""COIN-BIAS — why the paper's coin must be a *unique threshold* signature.

Paper §1 on Chen–Micali [4]: a VRF-based coin is "computational security
against an adversary that is not strongly rushing".  This benchmark makes
the caveat quantitative.  A strongly rushing adversary that sees honest
VRF evaluations before publishing its own steers the minimum-evaluation
coin whenever a corrupted party holds the global minimum:

    P(coin = preferred) = 1/2 + t/(4n)    (steer when: corrupt holds the
                                           min × baseline wrong × flip right)

The threshold-signature coin (paper §2.2) is immune: its value is a
deterministic function of key material and index; withholding shares can
only make the flip fail (and it cannot, while n - t ≥ t + 1 honest shares
arrive).
"""

from __future__ import annotations

import pytest

from repro.adversary.coin_bias import WithholdingCoinAdversary
from repro.adversary.strategies import CrashAdversary
from repro.analysis.report import format_table
from repro.analysis.stats import wilson_interval
from repro.crypto.coin import threshold_coin_program
from repro.crypto.vrf_coin import vrf_coin_program

from .conftest import run

TRIALS = 300


def vrf_factory(index):
    def factory(ctx, _):
        value = yield from vrf_coin_program(ctx, index, 0, 1)
        return value

    return factory


def threshold_factory(index):
    def factory(ctx, _):
        value = yield from threshold_coin_program(ctx, index, 0, 1)
        return value

    return factory


def measure(kind, attack, trials=TRIALS):
    """Hits for the preferred bit 1, plus total steered flips.

    Sessions depend only on (kind, trial) — NOT on the attack — so the
    passive and withheld series are *paired*: the coin material is
    identical and the attack's effect is exact, not statistical.
    """
    hits = 0
    steered = 0
    for trial in range(trials):
        session = f"cb-{kind}-{trial}"
        if kind == "vrf":
            factory = vrf_factory(trial)
        else:
            factory = threshold_factory(trial)
        if attack == "withhold":
            if kind == "vrf":
                adversary = WithholdingCoinAdversary(
                    [3], index=trial, low=0, high=1, preferred=1, session=session
                )
            else:
                adversary = CrashAdversary([3], crash_round=1)
        else:
            adversary = None
        res = run(factory, [None] * 4, 1, adversary=adversary, session=session)
        hits += next(iter(res.honest_outputs.values())) == 1
        if attack == "withhold" and kind == "vrf":
            steered += adversary.steered
    return hits, steered


def test_vrf_coin_is_biased_threshold_coin_is_not(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        results = {}
        for kind in ("vrf", "threshold"):
            for attack in ("passive", "withhold"):
                hits, steered = measure(kind, attack)
                low, high = wilson_interval(hits, TRIALS)
                results[(kind, attack)] = (hits, steered)
                rows.append(
                    [kind, attack, f"{hits / TRIALS:.4f}",
                     f"[{low:.4f}, {high:.4f}]", steered]
                )
        # Paired exactness: every steered flip converts a miss into a hit.
        vrf_passive, _ = results[("vrf", "passive")]
        vrf_withheld, steered = results[("vrf", "withhold")]
        assert steered > 0, "the attack must find steerable flips (~T/16)"
        assert vrf_withheld == vrf_passive + steered
        # Expected steering rate t/(4n) = 1/16: allow wide slack.
        assert TRIALS / 40 <= steered <= TRIALS / 8
        # The threshold coin cannot move: withholding = share loss only.
        th_passive, _ = results[("threshold", "passive")]
        th_withheld, _ = results[("threshold", "withhold")]
        assert th_withheld == th_passive
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nCOIN-BIAS  P(coin = adversary's preferred bit), paired flips "
        f"({TRIALS} per cell; n=4, t=1; theory for biased VRF: "
        "1/2 + t/4n = 0.5625)\n"
        + format_table(
            ["coin", "adversary", "rate", "95% CI", "steered"], rows
        )
    )
