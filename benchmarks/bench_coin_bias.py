"""COIN-BIAS — why the paper's coin must be a *unique threshold* signature.

Paper §1 on Chen–Micali [4]: a VRF-based coin is "computational security
against an adversary that is not strongly rushing".  This benchmark makes
the caveat quantitative.  A strongly rushing adversary that sees honest
VRF evaluations before publishing its own steers the minimum-evaluation
coin whenever a corrupted party holds the global minimum:

    P(coin = preferred) = 1/2 + t/(4n)    (steer when: corrupt holds the
                                           min × baseline wrong × flip right)

The threshold-signature coin (paper §2.2) is immune: its value is a
deterministic function of key material and index; withholding shares can
only make the flip fail (and it cannot, while n - t ≥ t + 1 honest shares
arrive).

Runs through the parallel experiment engine: all 4 × TRIALS flips are one
:class:`TrialPlan` batch, fanned out by ``REPRO_BENCH_WORKERS``.  The
adversary now lives in the worker process, so instead of reading its
``steered`` counter the steering count is derived from the *paired*
outputs — sessions depend only on ``(kind, trial)``, never on the attack,
so the coin material in the passive and withheld series is identical and
every flip difference is attributable to the attack alone.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.analysis.stats import wilson_interval

from .conftest import engine_spec, run_plan

TRIALS = 300


def _series_specs(kind, attack):
    """One spec per trial; paired sessions across attacks."""
    specs = []
    for trial in range(TRIALS):
        session = f"cb-{kind}-{trial}"
        adversary = None
        adversary_params = None
        if attack == "withhold":
            if kind == "vrf":
                adversary = "withhold_coin"
                adversary_params = {
                    "victims": (3,), "index": trial, "preferred": 1,
                    "session": session,
                }
            else:
                adversary = "crash"
                adversary_params = {"victims": (3,), "crash_round": 1}
        specs.append(
            engine_spec(
                f"{kind}_coin", [None] * 4, 1,
                params={"index": trial},
                adversary=adversary,
                adversary_params=adversary_params,
                session=session,
            )
        )
    return specs


def _flips(results):
    """The honest coin value (0/1) per trial, in trial order."""
    return [next(iter(res.honest_outputs.values())) for res in results]


def test_vrf_coin_is_biased_threshold_coin_is_not(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        cells = [
            (kind, attack)
            for kind in ("vrf", "threshold")
            for attack in ("passive", "withhold")
        ]
        specs = [
            spec for kind, attack in cells for spec in _series_specs(kind, attack)
        ]
        results = run_plan("bench-coin-bias", specs)
        flips = {
            cell: _flips(results[at:at + TRIALS])
            for cell, at in zip(cells, range(0, len(results), TRIALS))
        }

        # Paired exactness: the withheld VRF series may flip a paired
        # miss into a hit (a *steered* flip) but never the reverse.
        steered = sum(
            passive == 0 and withheld == 1
            for passive, withheld in zip(
                flips[("vrf", "passive")], flips[("vrf", "withhold")]
            )
        )
        unsteered = sum(
            passive == 1 and withheld == 0
            for passive, withheld in zip(
                flips[("vrf", "passive")], flips[("vrf", "withhold")]
            )
        )
        assert unsteered == 0, "withholding must never steer away from 1"

        hits = {cell: sum(flips[cell]) for cell in cells}
        for kind, attack in cells:
            count = hits[(kind, attack)]
            low, high = wilson_interval(count, TRIALS)
            rows.append(
                [kind, attack, f"{count / TRIALS:.4f}",
                 f"[{low:.4f}, {high:.4f}]",
                 steered if (kind, attack) == ("vrf", "withhold") else 0]
            )

        assert steered > 0, "the attack must find steerable flips (~T/16)"
        assert hits[("vrf", "withhold")] == hits[("vrf", "passive")] + steered
        # Expected steering rate t/(4n) = 1/16: allow wide slack.
        assert TRIALS / 40 <= steered <= TRIALS / 8
        # The threshold coin cannot move: withholding = share loss only.
        assert hits[("threshold", "withhold")] == hits[("threshold", "passive")]
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nCOIN-BIAS  P(coin = adversary's preferred bit), paired flips "
        f"({TRIALS} per cell; n=4, t=1; theory for biased VRF: "
        "1/2 + t/4n = 0.5625)\n"
        + format_table(
            ["coin", "adversary", "rate", "95% CI", "steered"], rows
        )
    )
