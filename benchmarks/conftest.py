"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure from the paper
(see DESIGN.md §3 for the experiment index) by *running the protocols* and
printing a measured-vs-paper report; the pytest-benchmark fixture times a
representative execution.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables inline; they are also summarized in
EXPERIMENTS.md.)
"""

from __future__ import annotations

import os
import warnings

import pytest

collect_ignore: list = []


def bench_workers(default: int = 1) -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, robustly.

    An empty, non-numeric or non-positive value falls back to
    ``default`` with a warning instead of raising — a stray environment
    variable must never abort collection of the whole benchmark suite.
    A value above ``os.cpu_count()`` is clamped (extra processes on a
    saturated machine only add scheduling overhead; the clamp is logged
    by :func:`repro.engine.clamp_workers`).
    """
    from repro.engine import clamp_workers

    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring REPRO_BENCH_WORKERS={raw!r} (not an integer); "
            f"using {default} worker(s)"
        )
        return default
    if value < 1:
        warnings.warn(
            f"ignoring REPRO_BENCH_WORKERS={value} (must be >= 1); "
            f"using {default} worker(s)"
        )
        return default
    return clamp_workers(value)


#: The engine backends ``REPRO_BENCH_BACKEND`` may select.
VALID_BENCH_BACKENDS = ("object", "vector")


def bench_backend(default: str = "object") -> str:
    """Engine backend from ``REPRO_BENCH_BACKEND``, strictly.

    ``vector`` routes migrated benchmarks through the batch-vectorized
    executor (bit-identical results; unsupported specs fall back to the
    object simulator per spec).  An unrecognized value is an error, not
    a warning: a typo like ``REPRO_BENCH_BACKEND=vectro`` silently
    falling back to the object simulator would produce numbers labeled
    as one backend but measured on another.
    """
    raw = os.environ.get("REPRO_BENCH_BACKEND", "").strip()
    if not raw:
        return default
    if raw not in VALID_BENCH_BACKENDS:
        raise ValueError(
            f"unknown REPRO_BENCH_BACKEND={raw!r}; "
            f"valid backends: {', '.join(VALID_BENCH_BACKENDS)}"
        )
    return raw


def legacy_setup_seed(num_parties: int, max_faulty: int) -> int:
    """The engine ``setup_seed`` that reproduces the legacy bench suites.

    The historical serial harness dealt ideal key material from
    ``random.Random(0xBE7C4 + n * 31 + t)``; the engine deals from
    ``random.Random(setup_seed + 0x5E7)`` (the ``ExperimentSetup``
    convention).  This offset makes an engine trial see bit-identical
    key material to a legacy benchmark run at the same ``(n, t)`` —
    which is what lets benchmark modules migrate onto
    :class:`~repro.engine.plan.TrialPlan` without a single measured
    number changing.
    """
    return 0xBE7C4 + num_parties * 31 + max_faulty - 0x5E7


def engine_spec(
    protocol,
    inputs,
    max_faulty,
    params=None,
    adversary=None,
    adversary_params=None,
    seed=0,
    session="bench",
    faults=None,
    fault_params=None,
    setup_seed=None,
    rsa_bits=256,
    backend="ideal",
):
    """A :class:`TrialSpec` matching a legacy ``run()`` call exactly.

    Seed, session and (via :func:`legacy_setup_seed`) key material all
    line up with the historical serial harness, so results are
    bit-identical — the only thing that changes is that a batch of specs
    can fan out across ``REPRO_BENCH_WORKERS`` processes.  Benchmarks
    that historically dealt from an ``ExperimentSetup`` pass its seed as
    ``setup_seed`` instead of the default legacy dealing seed.
    """
    from repro.engine import TrialSpec

    return TrialSpec(
        protocol=protocol,
        inputs=tuple(inputs),
        max_faulty=max_faulty,
        params=params,
        adversary=adversary,
        adversary_params=adversary_params,
        seed=seed,
        session=session,
        setup_seed=(
            legacy_setup_seed(len(inputs), max_faulty)
            if setup_seed is None
            else setup_seed
        ),
        rsa_bits=rsa_bits,
        backend=backend,
        faults=faults,
        fault_params=fault_params,
    )


def monte_carlo_specs(
    protocol,
    inputs,
    max_faulty,
    trials,
    params=None,
    adversary=None,
    adversary_params=None,
    seed=0,
    setup_seed=0,
):
    """Specs matching :func:`repro.analysis.experiments.run_trials` exactly.

    The legacy Monte-Carlo harness ran trial ``i`` with seed
    ``seed * 1_000_003 + i`` under session ``exp{seed}/{i}`` on an
    ``ExperimentSetup``'s key material (``setup_seed=0`` by default) —
    the same schedule the engine derives, so the migrated benchmarks
    reproduce every historical number bit-for-bit.
    """
    from repro.engine import TrialSpec, derive_trial_seed, derive_trial_session

    return [
        TrialSpec(
            protocol=protocol,
            inputs=tuple(inputs),
            max_faulty=max_faulty,
            params=params,
            adversary=adversary,
            adversary_params=adversary_params,
            seed=derive_trial_seed(seed, trial),
            session=derive_trial_session(seed, trial),
            setup_seed=setup_seed,
        )
        for trial in range(trials)
    ]


def run_plan(name, specs):
    """Execute hand-built specs through the engine; results in order.

    Worker count comes from :func:`bench_workers` and the backend from
    :func:`bench_backend`, so ``REPRO_BENCH_WORKERS`` and
    ``REPRO_BENCH_BACKEND=vector`` accelerate every migrated benchmark;
    with the defaults this is exactly the legacy serial loop.
    """
    from repro.engine import ParallelRunner, TrialPlan

    plan = TrialPlan(name=name, trials=tuple(specs))
    runner = ParallelRunner(workers=bench_workers(), backend=bench_backend())
    return runner.run(plan).results


@pytest.fixture(scope="session")
def report_sink():
    """Collects printed reports so they appear grouped at session end."""
    lines: list = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
