"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure from the paper
(see DESIGN.md §3 for the experiment index) by *running the protocols* and
printing a measured-vs-paper report; the pytest-benchmark fixture times a
representative execution.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables inline; they are also summarized in
EXPERIMENTS.md.)
"""

from __future__ import annotations

import os
import random
import warnings

import pytest

from repro.crypto.keys import CryptoSuite
from repro.network.simulator import SyncSimulator

_SUITE_CACHE = {}

collect_ignore: list = []


def bench_workers(default: int = 1) -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, robustly.

    An empty, non-numeric or non-positive value falls back to
    ``default`` with a warning instead of raising — a stray environment
    variable must never abort collection of the whole benchmark suite.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring REPRO_BENCH_WORKERS={raw!r} (not an integer); "
            f"using {default} worker(s)"
        )
        return default
    if value < 1:
        warnings.warn(
            f"ignoring REPRO_BENCH_WORKERS={value} (must be >= 1); "
            f"using {default} worker(s)"
        )
        return default
    return value


def ideal_suite(num_parties: int, max_faulty: int) -> CryptoSuite:
    key = (num_parties, max_faulty)
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = CryptoSuite.ideal(
            num_parties, max_faulty, random.Random(0xBE7C4 + num_parties * 31 + max_faulty)
        )
    return _SUITE_CACHE[key]


def run(factory, inputs, max_faulty, adversary=None, seed=0, session="bench"):
    simulator = SyncSimulator(
        num_parties=len(inputs),
        max_faulty=max_faulty,
        crypto=ideal_suite(len(inputs), max_faulty),
        adversary=adversary,
        seed=seed,
        session=session,
    )
    return simulator.run(factory, inputs)


@pytest.fixture(scope="session")
def report_sink():
    """Collects printed reports so they appear grouped at session end."""
    lines: list = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
