"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure from the paper
(see DESIGN.md §3 for the experiment index) by *running the protocols* and
printing a measured-vs-paper report; the pytest-benchmark fixture times a
representative execution.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables inline; they are also summarized in
EXPERIMENTS.md.)
"""

from __future__ import annotations

import os
import random
import warnings

import pytest

from repro.crypto.keys import CryptoSuite
from repro.network.simulator import SyncSimulator

_SUITE_CACHE = {}

collect_ignore: list = []


def bench_workers(default: int = 1) -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, robustly.

    An empty, non-numeric or non-positive value falls back to
    ``default`` with a warning instead of raising — a stray environment
    variable must never abort collection of the whole benchmark suite.
    A value above ``os.cpu_count()`` is clamped (extra processes on a
    saturated machine only add scheduling overhead; the clamp is logged
    by :func:`repro.engine.clamp_workers`).
    """
    from repro.engine import clamp_workers

    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring REPRO_BENCH_WORKERS={raw!r} (not an integer); "
            f"using {default} worker(s)"
        )
        return default
    if value < 1:
        warnings.warn(
            f"ignoring REPRO_BENCH_WORKERS={value} (must be >= 1); "
            f"using {default} worker(s)"
        )
        return default
    return clamp_workers(value)


#: The engine backends ``REPRO_BENCH_BACKEND`` may select.
VALID_BENCH_BACKENDS = ("object", "vector")


def bench_backend(default: str = "object") -> str:
    """Engine backend from ``REPRO_BENCH_BACKEND``, strictly.

    ``vector`` routes migrated benchmarks through the batch-vectorized
    executor (bit-identical results; unsupported specs fall back to the
    object simulator per spec).  An unrecognized value is an error, not
    a warning: a typo like ``REPRO_BENCH_BACKEND=vectro`` silently
    falling back to the object simulator would produce numbers labeled
    as one backend but measured on another.
    """
    raw = os.environ.get("REPRO_BENCH_BACKEND", "").strip()
    if not raw:
        return default
    if raw not in VALID_BENCH_BACKENDS:
        raise ValueError(
            f"unknown REPRO_BENCH_BACKEND={raw!r}; "
            f"valid backends: {', '.join(VALID_BENCH_BACKENDS)}"
        )
    return raw


def ideal_suite(num_parties: int, max_faulty: int) -> CryptoSuite:
    key = (num_parties, max_faulty)
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = CryptoSuite.ideal(
            num_parties, max_faulty, random.Random(0xBE7C4 + num_parties * 31 + max_faulty)
        )
    return _SUITE_CACHE[key]


def legacy_setup_seed(num_parties: int, max_faulty: int) -> int:
    """The engine ``setup_seed`` that reproduces :func:`ideal_suite`.

    The engine deals from ``random.Random(setup_seed + 0x5E7)`` (the
    ``ExperimentSetup`` convention); this offsets the legacy benchmark
    dealing seed so an engine trial sees bit-identical key material to a
    ``run()`` call at the same ``(n, t)`` — which is what lets benchmark
    modules migrate onto :class:`~repro.engine.plan.TrialPlan` without
    a single measured number changing.
    """
    return 0xBE7C4 + num_parties * 31 + max_faulty - 0x5E7


def engine_spec(
    protocol,
    inputs,
    max_faulty,
    params=None,
    adversary=None,
    adversary_params=None,
    seed=0,
    session="bench",
    faults=None,
    fault_params=None,
):
    """A :class:`TrialSpec` matching a legacy ``run()`` call exactly.

    Seed, session and (via :func:`legacy_setup_seed`) key material all
    line up with the historical serial harness, so results are
    bit-identical — the only thing that changes is that a batch of specs
    can fan out across ``REPRO_BENCH_WORKERS`` processes.
    """
    from repro.engine import TrialSpec

    return TrialSpec(
        protocol=protocol,
        inputs=tuple(inputs),
        max_faulty=max_faulty,
        params=params,
        adversary=adversary,
        adversary_params=adversary_params,
        seed=seed,
        session=session,
        setup_seed=legacy_setup_seed(len(inputs), max_faulty),
        faults=faults,
        fault_params=fault_params,
    )


def run_plan(name, specs):
    """Execute hand-built specs through the engine; results in order.

    Worker count comes from :func:`bench_workers` and the backend from
    :func:`bench_backend`, so ``REPRO_BENCH_WORKERS`` and
    ``REPRO_BENCH_BACKEND=vector`` accelerate every migrated benchmark;
    with the defaults this is exactly the legacy serial loop.
    """
    from repro.engine import ParallelRunner, TrialPlan

    plan = TrialPlan(name=name, trials=tuple(specs))
    runner = ParallelRunner(workers=bench_workers(), backend=bench_backend())
    return runner.run(plan).results


def run(factory, inputs, max_faulty, adversary=None, seed=0, session="bench"):
    simulator = SyncSimulator(
        num_parties=len(inputs),
        max_faulty=max_faulty,
        crypto=ideal_suite(len(inputs), max_faulty),
        adversary=adversary,
        seed=seed,
        session=session,
    )
    return simulator.run(factory, inputs)


@pytest.fixture(scope="session")
def report_sink():
    """Collects printed reports so they appear grouped at session end."""
    lines: list = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
