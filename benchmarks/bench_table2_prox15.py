"""TAB2 — the paper's Table 2: slot conditions of the quadratic Prox_15.

The condition matrix is *derived inductively* by
:func:`repro.proxcensus.quadratic_half.condition_table`; this benchmark
checks it cell-for-cell against the table printed in the paper (r = 6,
15 slots) and validates executed traces of the protocol itself.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table2
from repro.proxcensus.quadratic_half import (
    condition_table,
    slots_after_rounds,
    top_grade,
)

from .conftest import engine_spec, run_plan

# The paper's Table 2, as printed (rows = rounds, one value column).
PAPER_TABLE2 = {
    7: {1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6},
    6: {2: 1, 3: 2, 4: 3, 5: 4, 6: 5},
    5: {2: 1, 3: 2, 4: 3, 5: 4, 6: 4},
    4: {2: 1, 3: 2, 4: 3, 5: 3, 6: 4},
    3: {2: 1, 3: 2, 4: 3, 5: 3, 6: 3},
    2: {2: 1, 3: 2, 4: 2, 5: 3, 6: 3},
    1: {2: 1, 3: 2, 4: 2, 5: 2, 6: 3},
}


def test_condition_table_matches_paper(benchmark, report_sink):
    assert condition_table(6) == PAPER_TABLE2
    assert slots_after_rounds(6) == 15
    assert top_grade(6) == 7
    report_sink.append(
        "\nTAB2  quadratic Prox_15 conditions (derived inductively; "
        "matches the paper cell-for-cell)\n" + render_table2(6)
    )
    benchmark(lambda: condition_table(6))


def test_omega3_appears_in_every_positive_grade(benchmark):
    """The disjointness anchor the paper's consistency proof leans on."""
    def check():
        for rounds in range(4, 10):
            for grade, per_round in condition_table(rounds).items():
                assert any(v >= 3 for v in per_round.values()), (rounds, grade)
        return True

    assert benchmark(check)


def test_executed_prox15_obeys_the_table(benchmark, report_sink):
    def trace():
        (res,) = run_plan(
            "table2-traces",
            [
                engine_spec(
                    "prox_quadratic_half", [1] * 5, 2,
                    params={"rounds": 6}, session="t2a",
                )
            ],
        )
        # Pre-agreement: all conditions satisfiable every round -> grade 7.
        assert all(tuple(o) == (1, 7) for o in res.outputs.values())
        return res

    benchmark(trace)
    report_sink.append(
        "TAB2  executed trace: pre-agreement -> (v,7), the table's edge column"
    )
