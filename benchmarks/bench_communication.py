"""TAB-COMM — communication-complexity claims, measured.

Paper claims reproduced:

* Corollary 1: ``Prox_{2^r+1}`` costs ``O(r n²)`` **messages** and zero
  signatures (perfect security).
* Lemma 3 / Lemma 7: the t<n/2 Proxcensus protocols cost ``O(r n²)``
  signatures.
* Corollary 2: both BA protocols cost ``O(κ n²)``.
* §3.5: MV with plain signatures (PKI mode) costs ``O(κ n³)`` — a factor
  ``n`` above the threshold-signature versions; measured here as a
  signature-count ratio that grows linearly with ``n``.

"Shape" checks: quadrupling-with-n (n → 2n multiplies honest messages by
~4 for n²-protocols) and linear growth in r / κ.

Executions go through the experiment engine's single-trial path
(:func:`repro.engine.run_trial`) with signature tallies ON — this is the
one experiment family whose *measurement* is the signature count.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.engine import TrialSpec, run_trial


def _measure(protocol, params, n, t, session):
    spec = TrialSpec(
        protocol=protocol,
        inputs=tuple(i % 2 for i in range(n)),
        max_faulty=t,
        params=tuple(sorted(params.items())),
        seed=0,
        session=session,
        setup_seed=n * 31 + t,
    )
    res = run_trial(spec)
    return res.metrics


def test_proxcensus_message_complexity_is_r_n_squared(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()  # benchmark() re-runs this callable
        for family, protocol, t_of in (
            ("one_third (Cor. 1)", "prox_one_third", lambda n: (n - 1) // 3),
            ("linear_half (Lem. 3)", "prox_linear_half", lambda n: (n - 1) // 2),
            (
                "quadratic_half (Lem. 7)",
                "prox_quadratic_half",
                lambda n: (n - 1) // 2,
            ),
        ):
            base_rounds = 3
            for n in (4, 8):
                m = _measure(
                    protocol, {"rounds": base_rounds}, n, t_of(n),
                    f"cm-{family}-{n}",
                )
                rows.append(
                    [family, n, base_rounds, m.honest_messages, m.honest_signatures]
                )
            # message growth with n: ~ (8/4)^2 = 4x (honest-only counts).
            small = _measure(protocol, {"rounds": 3}, 4, t_of(4), f"cs-{family}")
            large = _measure(protocol, {"rounds": 3}, 8, t_of(8), f"cl-{family}")
            ratio = large.honest_messages / small.honest_messages
            assert 2.5 <= ratio <= 5.5, (family, ratio)
            # message growth with r is linear-ish: r=6 <= 2.6x of r=3.
            deep = _measure(protocol, {"rounds": 6}, 4, t_of(4), f"cd-{family}")
            assert deep.honest_messages <= 2.6 * small.honest_messages
        return True

    assert benchmark(sweep)
    report_sink.append(
        "\nTAB-COMM (a)  Proxcensus cost at r=3 (honest messages / signatures)\n"
        + format_table(["family", "n", "rounds", "messages", "signatures"], rows)
    )


def test_one_third_proxcensus_is_signature_free(benchmark, report_sink):
    metrics = benchmark(
        lambda: _measure("prox_one_third", {"rounds": 4}, 4, 1, "cm0")
    )
    assert metrics.total_signatures == 0
    report_sink.append(
        "TAB-COMM (b)  Prox_{2^r+1} uses 0 signatures (perfect security, Cor. 1)"
    )


def test_ba_cost_is_kappa_n_squared(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()  # benchmark() re-runs this callable
        for name, protocol, n, t in (
            ("ours t<n/3", "ba_one_third", 4, 1),
            ("ours t<n/2", "ba_one_half", 5, 2),
        ):
            for kappa in (4, 8):
                m = _measure(protocol, {"kappa": kappa}, n, t, f"cb-{name}-{kappa}")
                rows.append([name, kappa, n, m.honest_messages, m.honest_signatures])
            small = _measure(protocol, {"kappa": 4}, n, t, f"cb2-{name}")
            large = _measure(protocol, {"kappa": 8}, n, t, f"cb3-{name}")
            # linear in kappa: doubling kappa at most ~doubles messages.
            assert large.honest_messages <= 2.4 * small.honest_messages
        return True

    assert benchmark(sweep)
    report_sink.append(
        "TAB-COMM (c)  BA cost (honest messages / signatures), O(kappa n^2)\n"
        + format_table(["protocol", "kappa", "n", "messages", "signatures"], rows)
    )


def test_pki_mode_costs_factor_n_more_signatures(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()  # benchmark() re-runs this callable
        ratios = []
        for n in (5, 9, 13):
            t = (n - 1) // 2
            threshold = _measure(
                "micali_vaikuntanathan", {"kappa": 3}, n, t, f"ct{n}"
            )
            pki = _measure("mv_pki", {"kappa": 3}, n, t, f"cp{n}")
            ratio = pki.honest_signatures / threshold.honest_signatures
            ratios.append(ratio)
            rows.append(
                [
                    n,
                    threshold.honest_signatures,
                    pki.honest_signatures,
                    f"{ratio:.2f}",
                ]
            )
        # The ratio grows with n — the asymptotic factor-n gap of §3.5.
        assert ratios[0] < ratios[1] < ratios[2]
        return True

    assert benchmark(sweep)
    report_sink.append(
        "TAB-COMM (d)  MV threshold-signature mode vs PKI mode "
        "(signatures; §3.5 factor-n gap)\n"
        + format_table(["n", "threshold sigs", "PKI sigs", "ratio"], rows)
    )
