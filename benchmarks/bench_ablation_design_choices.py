"""ABL — ablations of the paper's two design choices.

1. **Why one single iteration for t < n/3?**  Sweep the chunk size m of
   ``ba_one_third_chunked`` (j = ⌈κ/m⌉ iterations of ``Prox_{2^m+1}``):
   rounds are ``j(m+1)``, so error 2^-κ costs ``≈ κ(m+1)/m`` rounds —
   strictly decreasing in m.  m = 1 is fixed-round Feldman–Micali; m = κ
   is the paper's protocol; every intermediate point is measured.

2. **Why s = 5 (r = 3) for t < n/2?**  Paper footnote 6: "other choices of
   number of slots will not lead to efficiency improvements".  Sweep
   ``prox_rounds`` of ``ba_one_half_generalized`` for both the linear and
   the quadratic Proxcensus family and measure rounds to 2^-κ: r = 3
   (linear) is the unique maximizer of bits-per-round.

All sweeps drive the experiment engine (``ba_one_third_chunked`` and
``ba_one_half_generalized`` are registry protocols), so the design-space
points fan out across ``REPRO_BENCH_WORKERS``.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.ablation import (
    bits_per_round_one_half,
    bits_per_round_one_third,
    rounds_one_half_generalized,
    rounds_one_third_chunked,
)

from .conftest import engine_spec, run_plan

KAPPA = 12

CHUNKS = (1, 2, 3, 4, 6, 12)
HALF_SWEEP = (
    ("linear", (2, 3, 4, 5)),
    ("quadratic", (4, 5, 6)),
)


def test_single_iteration_dominates_chunked(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        results = run_plan(
            "ablation-one-third-chunked",
            [
                engine_spec(
                    "ba_one_third_chunked", [1, 0, 1, 0], 1,
                    params={"kappa": KAPPA, "chunk": chunk},
                    session=f"ab13-{chunk}",
                )
                for chunk in CHUNKS
            ],
        )
        measured = {}
        for chunk, res in zip(CHUNKS, results):
            assert res.honest_agree()
            expected = rounds_one_third_chunked(KAPPA, chunk)
            assert res.metrics.rounds == expected, (chunk, res.metrics.rounds)
            measured[chunk] = res.metrics.rounds
            rows.append(
                [
                    chunk,
                    KAPPA // chunk if KAPPA % chunk == 0 else -(-KAPPA // chunk),
                    res.metrics.rounds,
                    f"{bits_per_round_one_third(chunk):.3f}",
                ]
            )
        # Monotone: bigger chunks, fewer rounds; endpoints are FM and ours.
        chunks = sorted(measured)
        for small, large in zip(chunks, chunks[1:]):
            assert measured[large] < measured[small]
        assert measured[1] == 2 * KAPPA          # Feldman-Micali
        assert measured[KAPPA] == KAPPA + 1      # the paper's protocol
        return True

    assert benchmark(sweep)
    report_sink.append(
        f"\nABL (1)  t<n/3 iteration granularity, kappa={KAPPA} "
        "(chunk=1 is FM, chunk=kappa is the paper)\n"
        + format_table(["chunk m", "iterations", "rounds", "bits/round"], rows)
    )


def test_prox5_is_the_optimal_slot_count(benchmark, report_sink):
    rows = []
    points = [
        (family, prox_rounds)
        for family, prox_rounds_list in HALF_SWEEP
        for prox_rounds in prox_rounds_list
    ]

    def sweep():
        rows.clear()
        results = run_plan(
            "ablation-one-half-family",
            [
                engine_spec(
                    "ba_one_half_generalized", [1, 0, 1, 0, 1], 2,
                    params={
                        "kappa": KAPPA,
                        "prox_rounds": prox_rounds,
                        "family": family,
                    },
                    session=f"ab12-{family}-{prox_rounds}",
                )
                for family, prox_rounds in points
            ],
        )
        measured = {}
        for (family, prox_rounds), res in zip(points, results):
            assert res.honest_agree()
            expected = rounds_one_half_generalized(KAPPA, prox_rounds, family)
            assert res.metrics.rounds == expected
            measured[(family, prox_rounds)] = res.metrics.rounds
            rows.append(
                [
                    family,
                    prox_rounds,
                    res.metrics.rounds,
                    f"{bits_per_round_one_half(prox_rounds, family):.3f}",
                ]
            )
        # Footnote 6: the paper's (linear, r=3) minimizes total rounds.
        best = min(measured, key=lambda key: measured[key])
        assert best == ("linear", 3), (best, measured)
        return True

    assert benchmark(sweep)
    report_sink.append(
        f"\nABL (2)  t<n/2 slot-count choice, kappa={KAPPA} "
        "(footnote 6: Prox_5 = linear r=3 is optimal)\n"
        + format_table(["family", "prox rounds", "BA rounds", "bits/round"], rows)
    )
