"""BACKENDS — protocol cost under ideal vs real cryptography.

The paper analyses its protocols against idealized signatures (§2.2) and
the reproduction defaults to the matching idealized backend.  This
benchmark runs the same BA over real Shoup threshold RSA + RSA-FDH and
reports the wall-time split between one-time key dealing and the protocol
itself — evidence that the substitution (DESIGN.md) changes performance,
not behaviour: rounds, message counts and outcomes are identical.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.report import format_table
from repro.core.ba import ba_one_half_program, rounds_one_half
from repro.crypto.keys import CryptoSuite
from repro.network.simulator import SyncSimulator

KAPPA = 4
N, T = 5, 2
INPUTS = [1, 0, 1, 0, 1]


def run_with(crypto, session):
    simulator = SyncSimulator(
        num_parties=N, max_faulty=T, crypto=crypto, seed=3, session=session
    )
    started = time.perf_counter()
    result = simulator.run(
        lambda ctx, bit: ba_one_half_program(ctx, bit, KAPPA), INPUTS
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_backends_agree_on_everything_but_speed(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        outcomes = {}
        for backend in ("ideal", "real"):
            started = time.perf_counter()
            if backend == "ideal":
                crypto = CryptoSuite.ideal(N, T, random.Random(41))
            else:
                crypto = CryptoSuite.real(N, T, random.Random(41), bits=128)
            keygen = time.perf_counter() - started
            result, elapsed = run_with(crypto, f"bk-{backend}")
            assert result.honest_agree()
            assert result.metrics.rounds == rounds_one_half(KAPPA)
            outcomes[backend] = (
                result.outputs,
                result.metrics.rounds,
                result.metrics.honest_messages,
            )
            rows.append(
                [
                    backend,
                    f"{keygen * 1e3:.1f}ms",
                    f"{elapsed * 1e3:.1f}ms",
                    result.metrics.rounds,
                    result.metrics.honest_messages,
                ]
            )
        # Identical protocol-level behaviour (outputs may differ: the coin
        # values are functions of the key material — but rounds/messages
        # must match exactly).
        assert outcomes["ideal"][1:] == outcomes["real"][1:]
        return True

    assert benchmark(sweep)
    report_sink.append(
        f"\nBACKENDS  BA t<n/2 (kappa={KAPPA}, n={N}) over both crypto "
        "backends\n"
        + format_table(
            ["backend", "key dealing", "protocol", "rounds", "messages"], rows
        )
    )
