"""BACKENDS — protocol cost under ideal vs real cryptography.

The paper analyses its protocols against idealized signatures (§2.2) and
the reproduction defaults to the matching idealized backend.  This
benchmark runs the same BA over real Shoup threshold RSA + RSA-FDH and
reports the wall-time split between one-time key dealing and the protocol
itself — evidence that the substitution (DESIGN.md) changes performance,
not behaviour: rounds, message counts and outcomes are identical.  Both
executions drive the experiment engine (``backend="real"`` selects the
real crypto suite per spec).
"""

from __future__ import annotations

import random
import time

from repro.analysis.report import format_table
from repro.core.ba import rounds_one_half
from repro.crypto.keys import CryptoSuite

from .conftest import engine_spec, run_plan

KAPPA = 4
N, T = 5, 2
INPUTS = [1, 0, 1, 0, 1]

#: The legacy harness dealt keys from ``random.Random(41)``; the engine
#: deals from ``Random(setup_seed + 0x5E7)``, so this setup seed makes the
#: engine trial see bit-identical key material.
SETUP_SEED = 41 - 0x5E7
RSA_BITS = 128


def run_backend(backend):
    started = time.perf_counter()
    (result,) = run_plan(
        f"crypto-backend-{backend}",
        [
            engine_spec(
                "ba_one_half", INPUTS, T,
                params={"kappa": KAPPA},
                seed=3, session=f"bk-{backend}",
                setup_seed=SETUP_SEED, rsa_bits=RSA_BITS, backend=backend,
            )
        ],
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_backends_agree_on_everything_but_speed(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        outcomes = {}
        for backend in ("ideal", "real"):
            started = time.perf_counter()
            if backend == "ideal":
                CryptoSuite.ideal(N, T, random.Random(41))
            else:
                CryptoSuite.real(N, T, random.Random(41), bits=RSA_BITS)
            keygen = time.perf_counter() - started
            result, elapsed = run_backend(backend)
            assert result.honest_agree()
            assert result.metrics.rounds == rounds_one_half(KAPPA)
            outcomes[backend] = (
                result.outputs,
                result.metrics.rounds,
                result.metrics.honest_messages,
            )
            rows.append(
                [
                    backend,
                    f"{keygen * 1e3:.1f}ms",
                    f"{elapsed * 1e3:.1f}ms",
                    result.metrics.rounds,
                    result.metrics.honest_messages,
                ]
            )
        # Identical protocol-level behaviour (outputs may differ: the coin
        # values are functions of the key material — but rounds/messages
        # must match exactly).
        assert outcomes["ideal"][1:] == outcomes["real"][1:]
        return True

    assert benchmark(sweep)
    report_sink.append(
        f"\nBACKENDS  BA t<n/2 (kappa={KAPPA}, n={N}) over both crypto "
        "backends\n"
        + format_table(
            ["backend", "key dealing", "protocol", "rounds", "messages"], rows
        )
    )
