"""TAB1 — the paper's Table 1: slot conditions of the 3-round Prox_5.

Regenerates the condition matrix from the implementation
(:func:`repro.proxcensus.linear_half.grade_conditions`) and validates it
two ways: against the deadlines the paper's Table 1 encodes, and against
*executed traces* — protocol runs whose outputs must sit in the slot the
conditions predict.
"""

from __future__ import annotations

from repro.analysis.tables import render_table1, table1_prox5_conditions

from .conftest import engine_spec, run_plan

PAPER_TABLE1 = {
    # (value, grade) -> (Σ_v by, no Σ_other by, Ω_v by); r = 3.
    (0, 2): (1, 3, 2),
    (0, 1): (2, 2, 3),
    (1, 1): (2, 2, 3),
    (1, 2): (1, 3, 2),
}


def test_table1_conditions_match_paper(benchmark, report_sink):
    table = table1_prox5_conditions(3)
    for slot, (sigma_by, no_other_by, omega_by) in PAPER_TABLE1.items():
        assert table[slot] == {
            "sigma_by": sigma_by,
            "no_other_by": no_other_by,
            "omega_by": omega_by,
        }, slot
    report_sink.append("\nTAB1  Prox_5 slot conditions (regenerated)\n" + render_table1(3))
    benchmark(lambda: table1_prox5_conditions(3))


def test_executed_traces_land_on_predicted_slots(benchmark, report_sink):
    def trace():
        pre, attacked = run_plan(
            "table1-traces",
            [
                engine_spec(
                    "prox_linear_half", [1] * 5, 2,
                    params={"rounds": 3}, session="t1a",
                ),
                # The straddle attack: exactly the (v,1) / (⊥,0)
                # adjacency of Table 1's middle columns.
                engine_spec(
                    "prox_linear_half", [0, 0, 1, 1, 1], 2,
                    params={"rounds": 3},
                    adversary="bare_straddle12",
                    adversary_params={"victims": (3, 4)},
                    session="t1b",
                ),
            ],
        )
        # Pre-agreement on 1: everybody must hit the (1, 2) slot.
        assert all(tuple(o) == (1, 2) for o in pre.outputs.values())
        grades = sorted(o.grade for o in attacked.honest_outputs.values())
        assert grades == [0, 0, 1]
        return attacked

    benchmark(trace)
    report_sink.append(
        "TAB1  executed traces: pre-agreement -> (v,2); straddle attack -> "
        "{(v,1), (⊥,0)} as per the table's middle columns"
    )
