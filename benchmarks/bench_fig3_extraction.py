"""FIG3 — the paper's Fig. 3: the extraction function as a cut.

Regenerates the outcome matrix for ``Prox_10`` (the figure's example) and
asserts the three facts the figure conveys: the cut is monotone over slot
positions, extremal slots are coin-independent (validity), and each
adjacent slot pair is split by exactly one of the ``s - 1`` coin values
(Theorem 1's ``1/(s-1)``).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import fig3_extraction_matrix, render_fig3
from repro.core.extraction import extract, splitting_coin
from repro.proxcensus.base import slot_label

SLOTS = 10


def test_fig3_matrix(benchmark, report_sink):
    matrix = benchmark(lambda: fig3_extraction_matrix(SLOTS))
    # Monotone step per coin column; extremal rows constant.
    assert matrix[0] == [0] * (SLOTS - 1)
    assert matrix[-1] == [1] * (SLOTS - 1)
    for coin in range(1, SLOTS):
        column = [row[coin - 1] for row in matrix]
        assert column == sorted(column)
    report_sink.append("\nFIG3  extraction cut for Prox_10\n" + render_fig3(SLOTS))


def test_each_boundary_has_exactly_one_splitting_coin(benchmark, report_sink):
    def count_splits():
        total = 0
        for slots in range(2, 34):
            for left in range(slots - 1):
                lv, lg = slot_label(left, slots)
                rv, rg = slot_label(left + 1, slots)
                lv, lg = (0, 0) if lv is None else (lv, lg)
                rv, rg = (0, 0) if rv is None else (rv, rg)
                splitters = [
                    c
                    for c in range(1, slots)
                    if extract(lv, lg, c, slots) != extract(rv, rg, c, slots)
                ]
                assert splitters == [splitting_coin(left, slots)]
                total += 1
        return total

    boundaries = benchmark(count_splits)
    report_sink.append(
        f"FIG3  checked {boundaries} adjacent slot pairs across s=2..33: "
        "exactly one splitting coin each -> failure 1/(s-1)"
    )
