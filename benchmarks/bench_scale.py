"""SCALE — simulator practicality: runtime vs n and vs κ.

Not a paper artifact, but the reproduction's enabling claim: a pure-Python
simulation of these protocols is *fast*, not just feasible.  Two sweeps:

* κ-sweep at n = 4 (t < n/3): the single-iteration protocol at κ = 64 is
  a Proxcensus with ``2^64 + 1`` slots and a ``2^64``-valued coin — grades
  are exact big integers and the expansion's output determination visits
  only observed grade bands, so cost stays linear in κ.
* n-sweep at κ = 8: message count is Θ(κ n²), so wall-time grows
  quadratically in n; n = 31 (t = 10) completes comfortably.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.core.ba import ba_one_third_program

from .conftest import run


def _run_once(n, t, kappa, session):
    inputs = [i % 2 for i in range(n)]
    started = time.perf_counter()
    res = run(
        lambda c, b: ba_one_third_program(c, b, kappa), inputs, t, session=session
    )
    elapsed = time.perf_counter() - started
    assert res.honest_agree()
    return elapsed, res.metrics


def test_kappa_scaling(benchmark, report_sink):
    rows = []
    for kappa in (8, 16, 32, 64):
        elapsed, metrics = _run_once(4, 1, kappa, f"sk{kappa}")
        rows.append(
            [kappa, metrics.rounds, metrics.honest_messages, f"{elapsed * 1e3:.1f}ms"]
        )
        assert elapsed < 2.0, f"kappa={kappa} took {elapsed:.1f}s"
    report_sink.append(
        "\nSCALE (a)  t<n/3 BA vs kappa at n=4 (s = 2^kappa + 1 slots!)\n"
        + format_table(["kappa", "rounds", "messages", "wall time"], rows)
    )
    benchmark(lambda: _run_once(4, 1, 64, "skb"))


def test_n_scaling(benchmark, report_sink):
    rows = []
    timings = {}
    for n in (4, 10, 16, 31):
        t = (n - 1) // 3
        elapsed, metrics = _run_once(n, t, 8, f"sn{n}")
        timings[n] = elapsed
        rows.append(
            [n, t, metrics.honest_messages, f"{elapsed * 1e3:.1f}ms"]
        )
        assert elapsed < 10.0, f"n={n} took {elapsed:.1f}s"
    report_sink.append(
        "SCALE (b)  t<n/3 BA vs n at kappa=8 (messages = Θ(kappa n²))\n"
        + format_table(["n", "t", "messages", "wall time"], rows)
    )
    benchmark(lambda: _run_once(10, 3, 8, "snb"))
