"""SCALE — simulator practicality: runtime vs n and vs κ.

Not a paper artifact, but the reproduction's enabling claim: a pure-Python
simulation of these protocols is *fast*, not just feasible.  Two sweeps
(both executed through the experiment engine's single-trial path):

* κ-sweep at n = 4 (t < n/3): the single-iteration protocol at κ = 64 is
  a Proxcensus with ``2^64 + 1`` slots and a ``2^64``-valued coin — grades
  are exact big integers and the expansion's output determination visits
  only observed grade bands, so cost stays linear in κ.
* n-sweep at κ = 8: message count is Θ(κ n²), so wall-time grows
  quadratically in n; n = 31 (t = 10) completes comfortably.

Plus the hot-path ledger: SCALE (c) times the same workload on the
pre-optimization metrics/crypto path (reference signature walk per
message, tag memoization off) vs the current one, recording the measured
speedup from the ``count_signatures``/verify caching of this engine's
introduction.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.crypto.ideal import set_tag_memoization
from repro.engine import TrialSpec, run_trial


def _spec(n, t, kappa, session, collect_signatures=True):
    return TrialSpec(
        protocol="ba_one_third",
        inputs=tuple(i % 2 for i in range(n)),
        max_faulty=t,
        params=(("kappa", kappa),),
        seed=0,
        session=session,
        setup_seed=n * 31 + t,
    )


def _run_once(n, t, kappa, session, legacy_metrics=False):
    started = time.perf_counter()
    res = run_trial(_spec(n, t, kappa, session), legacy_metrics=legacy_metrics)
    elapsed = time.perf_counter() - started
    assert res.honest_agree()
    return elapsed, res.metrics


def test_kappa_scaling(benchmark, report_sink):
    rows = []
    for kappa in (8, 16, 32, 64):
        elapsed, metrics = _run_once(4, 1, kappa, f"sk{kappa}")
        rows.append(
            [kappa, metrics.rounds, metrics.honest_messages, f"{elapsed * 1e3:.1f}ms"]
        )
        assert elapsed < 2.0, f"kappa={kappa} took {elapsed:.1f}s"
    report_sink.append(
        "\nSCALE (a)  t<n/3 BA vs kappa at n=4 (s = 2^kappa + 1 slots!)\n"
        + format_table(["kappa", "rounds", "messages", "wall time"], rows)
    )
    benchmark(lambda: _run_once(4, 1, 64, "skb"))


def test_n_scaling(benchmark, report_sink):
    rows = []
    timings = {}
    for n in (4, 10, 16, 31):
        t = (n - 1) // 3
        elapsed, metrics = _run_once(n, t, 8, f"sn{n}")
        timings[n] = elapsed
        rows.append(
            [n, t, metrics.honest_messages, f"{elapsed * 1e3:.1f}ms"]
        )
        assert elapsed < 10.0, f"n={n} took {elapsed:.1f}s"
    report_sink.append(
        "SCALE (b)  t<n/3 BA vs n at kappa=8 (messages = Θ(kappa n²))\n"
        + format_table(["n", "t", "messages", "wall time"], rows)
    )
    benchmark(lambda: _run_once(10, 3, 8, "snb"))


def test_hot_path_caching_speedup(benchmark, report_sink):
    """The count_signatures/verify caching must beat the legacy path.

    Times repeated n=10 runs on the pre-optimization path (reference
    per-message signature walk, tag memoization disabled) vs the current
    cached path — same seeds, same executions, identical metrics — and
    records the measured ratio.  The assertion is deliberately loose
    (> 1.05x) to stay robust on noisy CI machines; locally the ratio is
    ~2x (see BENCH_engine.json for the error-sweep figure).
    """
    repeats = 12

    def timed(legacy):
        started = time.perf_counter()
        for i in range(repeats):
            run_trial(_spec(10, 3, 8, f"hc{i}"), legacy_metrics=legacy)
        return time.perf_counter() - started

    timed(legacy=False)  # warm suite cache / allocator
    cached_elapsed = timed(legacy=False)
    previous = set_tag_memoization(False)
    try:
        legacy_elapsed = timed(legacy=True)
    finally:
        set_tag_memoization(previous)

    # Same executions, same tallies — caching must not change results.
    fresh = run_trial(_spec(10, 3, 8, "hceq"))
    previous = set_tag_memoization(False)
    try:
        reference = run_trial(_spec(10, 3, 8, "hceq"), legacy_metrics=True)
    finally:
        set_tag_memoization(previous)
    assert fresh == reference

    ratio = legacy_elapsed / cached_elapsed
    assert ratio > 1.05, (legacy_elapsed, cached_elapsed)
    report_sink.append(
        "SCALE (c)  hot-path caching (n=10, kappa=8, "
        f"{repeats} runs): legacy {legacy_elapsed * 1e3:.0f}ms -> "
        f"cached {cached_elapsed * 1e3:.0f}ms ({ratio:.2f}x)"
    )
    benchmark(lambda: run_trial(_spec(10, 3, 8, "hcb")))
