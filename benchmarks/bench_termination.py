"""TERM — termination flavours (paper §1, 'Termination flavors').

Paper: probabilistic-termination BA is faster in expectation but "cannot
achieve simultaneous termination" (Dwork–Moses; Moses–Tuttle), which is
why fixed-round protocols — the paper's subject — are preferred as
building blocks.  Both facts are measured here:

* the Las-Vegas FM loop decides in expected O(1) iterations — far fewer
  rounds than the fixed-round budget for the same confidence; and
* a grade-splitting adversary makes its honest parties *halt in different
  rounds*, while every fixed-round protocol in the repository finishes all
  honest parties in the same round, every time.
"""

from __future__ import annotations

import pytest

from repro.adversary.termination import GradeSplitAdversary
from repro.analysis.report import format_table
from repro.core.ba import ba_one_third_program
from repro.core.probabilistic import fm_probabilistic_program

from .conftest import run

TRIALS = 40


def test_expected_iterations_are_constant(benchmark, report_sink):
    def measure():
        iterations = []
        rounds = []
        for seed in range(TRIALS):
            res = run(
                lambda c, b: fm_probabilistic_program(c, b),
                [0, 1, 0, 1], 1, seed=seed, session=f"te{seed}",
            )
            assert res.honest_agree()
            iterations.extend(
                o.decided_iteration for o in res.honest_outputs.values()
            )
            rounds.append(max(res.finish_rounds.values()))
        return sum(iterations) / len(iterations), max(rounds)

    mean_iterations, worst_rounds = benchmark(measure)
    assert mean_iterations <= 4
    report_sink.append(
        f"\nTERM (a)  Las-Vegas FM: mean decision iteration "
        f"{mean_iterations:.2f} over {TRIALS} split-input runs "
        f"(worst halt round {worst_rounds}); expected O(1) as claimed"
    )


def test_termination_spread_vs_fixed_round(benchmark, report_sink):
    def measure():
        # Fixed-round: everyone halts together, always.
        fixed_spreads = set()
        for seed in range(10):
            res = run(
                lambda c, b: ba_one_third_program(c, b, kappa=6),
                [0, 1, 0, 1], 1, seed=seed, session=f"tf{seed}",
            )
            finish = [res.finish_rounds[p] for p in res.honest_parties]
            fixed_spreads.add(max(finish) - min(finish))
        # Las-Vegas + grade-split adversary: one-iteration halting spread.
        adversary = GradeSplitAdversary(victims=[3], target=0, boost_value=0)
        res = run(
            lambda c, b: fm_probabilistic_program(c, b),
            [0, 0, 1, 0], 1, adversary=adversary, session="tspread",
        )
        finish = [res.finish_rounds[p] for p in res.honest_parties]
        return fixed_spreads, max(finish) - min(finish), res.honest_agree()

    fixed_spreads, lv_spread, agreed = benchmark(measure)
    assert fixed_spreads == {0}
    assert lv_spread == 3  # one full iteration (2 prox + 1 coin rounds)
    assert agreed
    report_sink.append(
        "TERM (b)  halting-round spread across honest parties\n"
        + format_table(
            ["protocol", "spread (rounds)"],
            [
                ["fixed-round (ours, FM, MV)", "0 in every run"],
                ["Las-Vegas FM under grade-split attack", lv_spread],
            ],
        )
        + "\n(non-simultaneous termination, exactly the §1 motivation for "
        "fixed-round protocols)"
    )
