"""TERM — termination flavours (paper §1, 'Termination flavors').

Paper: probabilistic-termination BA is faster in expectation but "cannot
achieve simultaneous termination" (Dwork–Moses; Moses–Tuttle), which is
why fixed-round protocols — the paper's subject — are preferred as
building blocks.  Both facts are measured here:

* the Las-Vegas FM loop decides in expected O(1) iterations — far fewer
  rounds than the fixed-round budget for the same confidence; and
* a grade-splitting adversary makes its honest parties *halt in different
  rounds*, while every fixed-round protocol in the repository finishes all
  honest parties in the same round, every time.

Execution goes through the experiment engine (hand-built
:class:`~repro.engine.plan.TrialSpec`s with the legacy seeds/sessions, so
every measured number is bit-identical to the old serial loop) — set
``REPRO_BENCH_WORKERS`` to fan the 40-seed sweep across processes.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table

from .conftest import engine_spec, run_plan

TRIALS = 40


def test_expected_iterations_are_constant(benchmark, report_sink):
    def measure():
        results = run_plan(
            "term-lv",
            [
                engine_spec(
                    "fm_probabilistic", [0, 1, 0, 1], 1,
                    seed=seed, session=f"te{seed}",
                )
                for seed in range(TRIALS)
            ],
        )
        iterations = []
        rounds = []
        for res in results:
            assert res.honest_agree()
            iterations.extend(
                o.decided_iteration for o in res.honest_outputs.values()
            )
            rounds.append(max(res.finish_rounds.values()))
        return sum(iterations) / len(iterations), max(rounds)

    mean_iterations, worst_rounds = benchmark(measure)
    assert mean_iterations <= 4
    report_sink.append(
        f"\nTERM (a)  Las-Vegas FM: mean decision iteration "
        f"{mean_iterations:.2f} over {TRIALS} split-input runs "
        f"(worst halt round {worst_rounds}); expected O(1) as claimed"
    )


def test_termination_spread_vs_fixed_round(benchmark, report_sink):
    def measure():
        # Fixed-round: everyone halts together, always.  One plan runs
        # the ten seeds plus the grade-split attack trial.
        specs = [
            engine_spec(
                "ba_one_third", [0, 1, 0, 1], 1,
                params={"kappa": 6}, seed=seed, session=f"tf{seed}",
            )
            for seed in range(10)
        ]
        # Las-Vegas + grade-split adversary: one-iteration halting spread.
        specs.append(
            engine_spec(
                "fm_probabilistic", [0, 0, 1, 0], 1,
                adversary="grade_split",
                adversary_params={
                    "victims": (3,), "target": 0, "boost_value": 0,
                },
                session="tspread",
            )
        )
        results = run_plan("term-spread", specs)
        fixed_spreads = set()
        for res in results[:10]:
            finish = [res.finish_rounds[p] for p in res.honest_parties]
            fixed_spreads.add(max(finish) - min(finish))
        res = results[10]
        finish = [res.finish_rounds[p] for p in res.honest_parties]
        return fixed_spreads, max(finish) - min(finish), res.honest_agree()

    fixed_spreads, lv_spread, agreed = benchmark(measure)
    assert fixed_spreads == {0}
    assert lv_spread == 3  # one full iteration (2 prox + 1 coin rounds)
    assert agreed
    report_sink.append(
        "TERM (b)  halting-round spread across honest parties\n"
        + format_table(
            ["protocol", "spread (rounds)"],
            [
                ["fixed-round (ours, FM, MV)", "0 in every run"],
                ["Las-Vegas FM under grade-split attack", lv_spread],
            ],
        )
        + "\n(non-simultaneous termination, exactly the §1 motivation for "
        "fixed-round protocols)"
    )
