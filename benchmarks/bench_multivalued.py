"""TAB-MV — the multivalued extension costs (§3.5 / Turpin–Coan [21]).

Paper: "All protocols can be extended to arbitrary finite domains with an
additional cost of 2 (resp. 3) rounds when t < n/3 (resp. t < n/2)."

Measured here for both lifts: the classic Turpin–Coan reduction (t < n/3)
and the Proxcensus-based lift (both regimes), on top of both binary
protocols — the overhead must be exactly +2 / +3 rounds, and the lifted
protocol must agree on domain values, not just bits.

Runs through the parallel experiment engine: the four executions are
declared as :class:`TrialSpec`s and dispatched in one batch, so
``REPRO_BENCH_WORKERS`` fans them out across processes.  Seeds, sessions
and key material match the historical serial harness bit for bit (see
``legacy_setup_seed`` in ``conftest.py``).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.ba import rounds_one_half, rounds_one_third

from .conftest import engine_spec, run_plan

KAPPA = 8
DOMAIN = ["blk_A", "blk_B", "blk_C", "blk_A", "blk_B", "blk_A", "blk_C"]


def test_multivalued_overhead_is_two_or_three_rounds(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        binary13 = rounds_one_third(KAPPA)
        binary12 = rounds_one_half(KAPPA)
        specs = [
            # t < n/3 (n = 7, t = 2): classic Turpin-Coan and the prox lift.
            engine_spec(
                "turpin_coan_classic", DOMAIN, 2,
                params={"kappa": KAPPA}, session="mv-tc",
            ),
            engine_spec(
                "multivalued_ba", DOMAIN, 2,
                params={"kappa": KAPPA, "regime": "one_third"},
                session="mv-l3",
            ),
            # t < n/2 (n = 7, t = 3): the prox lift.
            engine_spec(
                "multivalued_ba", DOMAIN, 3,
                params={"kappa": KAPPA, "regime": "one_half"},
                session="mv-l2",
            ),
        ]
        classic, lift13, lift12 = run_plan("bench-multivalued", specs)

        for res, binary, overhead, label, regime in (
            (classic, binary13, 2, "turpin-coan classic", "n/3"),
            (lift13, binary13, 2, "proxcensus lift", "n/3"),
            (lift12, binary12, 3, "proxcensus lift", "n/2"),
        ):
            assert res.honest_agree()
            assert res.metrics.rounds == binary + overhead
            rows.append(
                [label, regime, binary, res.metrics.rounds, f"+{overhead}"]
            )
        return True

    assert benchmark(sweep)
    report_sink.append(
        f"\nTAB-MV  multivalued BA over a 3-value domain (kappa={KAPPA}, n=7)\n"
        + format_table(
            ["lift", "regime", "binary rounds", "multivalued rounds", "overhead"],
            rows,
        )
    )


def test_multivalued_validity_with_unanimous_domain_value(benchmark):
    def check():
        (res,) = run_plan(
            "bench-multivalued-validity",
            [
                engine_spec(
                    "multivalued_ba", ["tx"] * 7, 2,
                    params={"kappa": 4, "regime": "one_third"},
                    session="mv-v",
                )
            ],
        )
        assert all(v == "tx" for v in res.outputs.values())
        return True

    assert benchmark(check)
