"""TAB-MV — the multivalued extension costs (§3.5 / Turpin–Coan [21]).

Paper: "All protocols can be extended to arbitrary finite domains with an
additional cost of 2 (resp. 3) rounds when t < n/3 (resp. t < n/2)."

Measured here for both lifts: the classic Turpin–Coan reduction (t < n/3)
and the Proxcensus-based lift (both regimes), on top of both binary
protocols — the overhead must be exactly +2 / +3 rounds, and the lifted
protocol must agree on domain values, not just bits.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.ba import (
    ba_one_half_program,
    ba_one_third_program,
    rounds_one_half,
    rounds_one_third,
)
from repro.core.turpin_coan import (
    multivalued_ba_program,
    turpin_coan_classic_program,
)

from .conftest import run

KAPPA = 8
DOMAIN = ["blk_A", "blk_B", "blk_C", "blk_A", "blk_B", "blk_A", "blk_C"]


def test_multivalued_overhead_is_two_or_three_rounds(benchmark, report_sink):
    rows = []

    def sweep():
        rows.clear()
        bba13 = lambda c, b: ba_one_third_program(c, b, KAPPA)
        bba12 = lambda c, b: ba_one_half_program(c, b, KAPPA)

        # t < n/3 (n = 7, t = 2): classic Turpin-Coan and the prox lift.
        binary13 = rounds_one_third(KAPPA)
        res = run(
            lambda c, v: turpin_coan_classic_program(c, v, bba13, default="∅"),
            DOMAIN, 2, session="mv-tc",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == binary13 + 2
        rows.append(["turpin-coan classic", "n/3", binary13, res.metrics.rounds, "+2"])

        res = run(
            lambda c, v: multivalued_ba_program(
                c, v, bba13, regime="one_third", default="∅"
            ),
            DOMAIN, 2, session="mv-l3",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == binary13 + 2
        rows.append(["proxcensus lift", "n/3", binary13, res.metrics.rounds, "+2"])

        # t < n/2 (n = 7, t = 3): the prox lift.
        binary12 = rounds_one_half(KAPPA)
        res = run(
            lambda c, v: multivalued_ba_program(
                c, v, bba12, regime="one_half", default="∅"
            ),
            DOMAIN, 3, session="mv-l2",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == binary12 + 3
        rows.append(["proxcensus lift", "n/2", binary12, res.metrics.rounds, "+3"])
        return True

    assert benchmark(sweep)
    report_sink.append(
        f"\nTAB-MV  multivalued BA over a 3-value domain (kappa={KAPPA}, n=7)\n"
        + format_table(
            ["lift", "regime", "binary rounds", "multivalued rounds", "overhead"],
            rows,
        )
    )


def test_multivalued_validity_with_unanimous_domain_value(benchmark):
    def check():
        res = run(
            lambda c, v: multivalued_ba_program(
                c, v,
                lambda cc, b: ba_one_third_program(cc, b, 4),
                regime="one_third", default="∅",
            ),
            ["tx"] * 7, 2, session="mv-v",
        )
        assert all(v == "tx" for v in res.outputs.values())
        return True

    assert benchmark(check)
