# Convenience targets; everything is plain pytest underneath.

.PHONY: install test test-fast bench examples experiments clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

# Regenerate the captured outputs referenced by EXPERIMENTS.md.
experiments:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
