# Convenience targets; everything is plain pytest underneath.

.PHONY: install test test-fast check check-fix-dry bench bench-quick chaos-quick examples experiments clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

# Static-analysis gate: determinism (DET1xx call sites + DET2xx RNG
# dataflow), layering (LAY), serialization (SER), API coherence (API),
# vector-model contracts (VEC), obs schema vocabularies (OBS) and stale
# suppressions (SUP) over src/repro, stdlib-only.  Exit 1 on findings;
# the JSON and SARIF reports are the CI artifacts, and the (empty)
# committed baseline keeps `--baseline` wiring honest.  See
# docs/static-analysis.md for the rule catalogue and suppression syntax.
check:
	PYTHONPATH=src python -m repro check --baseline check-baseline.json \
		--json check-report.json --sarif check-report.sarif

# Preview what `repro check --fix` would rewrite (DET104 sorted()
# wrapping, DET106 default_rng migration, stale-noqa deletion) as a
# unified diff, without touching the tree.
check-fix-dry:
	PYTHONPATH=src python -m repro check --diff

bench:
	pytest benchmarks/ --benchmark-only -s

# Fast engine sanity sweep: serial-vs-parallel AND vector-vs-object
# bit-identity, timings, and the adaptive leg (early-stopping verdicts
# checked against the fixed run; nonzero exit on mismatch).  Engine
# telemetry streams to bench-telemetry/telemetry.jsonl and the spans are
# cross-checked against wall time (nonzero exit on mismatch; see
# docs/observability.md).  REPRO_BENCH_WORKERS overrides the worker
# count (default 2; clamped to the CPUs present).  The `--figures` leg
# times one representative vector-modeled plan per migrated benchmark
# and exits nonzero if any of them reports a fallback or diverges from
# the object path.  The second line is
# the real-backend smoke: one tiny threshold-RSA sweep (small modulus)
# exercising pre-dealt key broadcast end to end; the third is the
# fault-tolerance smoke (6 trials/cell — far below the 120 that rewrite
# BENCH_faults.json, so the committed curves are safe); the fourth runs
# the whole benchmark suite on the vector backend, so a model regression
# that silently demotes a figure to the object simulator fails fast.
# `check` runs first:
# benchmark numbers from a tree that violates the determinism rules are
# not comparable run to run, so don't produce them.  The first bench
# also captures the repro-metrics/1 artifact and per-chunk profiles;
# the final step fuses everything into bench-report.md via
# `repro report --check`, which exits 2 if any artifact fails its
# schema gate or the telemetry spans are inconsistent.
bench-quick: check
	PYTHONPATH=src python -m repro bench --kappas 1,2 --trials 40 \
		--workers $${REPRO_BENCH_WORKERS:-2} --adaptive --vector --figures \
		--telemetry bench-telemetry --metrics bench-metrics.json \
		--profile bench-profile --json bench-quick.json
	PYTHONPATH=src python -m repro bench --backend real --rsa-bits 64 \
		--kappas 1 --trials 3 --protocol one_third \
		--workers $${REPRO_BENCH_WORKERS:-2}
	REPRO_BENCH_FAULT_TRIALS=$${REPRO_BENCH_FAULT_TRIALS:-6} PYTHONPATH=src \
		pytest benchmarks/bench_fault_tolerance.py --benchmark-disable -q
	REPRO_BENCH_BACKEND=vector REPRO_BENCH_FAULT_TRIALS=6 PYTHONPATH=src \
		pytest benchmarks/ --benchmark-disable -q
	PYTHONPATH=src python -m repro report --metrics bench-metrics.json \
		--telemetry bench-telemetry --bench bench-quick.json \
		--profile bench-profile --check --out bench-report.md

# Bounded chaos pass: hypothesis-drawn Byzantine schedules and network
# fault plans at a few examples per property (the full depth runs in
# `make test`).  REPRO_CHAOS_EXAMPLES overrides the bound.
chaos-quick:
	REPRO_CHAOS_EXAMPLES=$${REPRO_CHAOS_EXAMPLES:-10} PYTHONPATH=src \
		pytest tests/chaos/ -q

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

# Regenerate the captured outputs referenced by EXPERIMENTS.md.
experiments:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info bench-telemetry \
		bench-profile
	rm -f bench-metrics.json bench-quick.json bench-report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
