#!/usr/bin/env python
"""CI perf-regression gate: diff two ``BENCH_engine.json`` artifacts.

Usage::

    python scripts/bench_diff.py BASELINE CANDIDATE [--threshold 0.25]

Compares per-core trial rates (serial object path, parallel per-core,
vector backend) and exits 3 when the candidate is more than the
threshold slower on any metric both artifacts recorded — the same check
``repro bench --compare`` runs inline after a measurement.  Exit codes:
0 clean, 2 bad input, 3 regression.
"""

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.analysis.benchdiff import (  # noqa: E402
    DEFAULT_THRESHOLD,
    diff_bench_files,
    format_bench_report,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_engine.json")
    parser.add_argument("candidate", help="freshly measured BENCH_engine.json")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD, metavar="FRAC",
        help="rate-loss fraction that fails the gate (default 0.25)",
    )
    args = parser.parse_args(argv)
    try:
        report = diff_bench_files(args.baseline, args.candidate, args.threshold)
    except (OSError, ValueError) as error:
        print(f"bench_diff: {error}", file=sys.stderr)
        return 2
    print(format_bench_report(report))
    return 0 if report["ok"] else 3


if __name__ == "__main__":
    sys.exit(main())
