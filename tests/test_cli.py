"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestRun:
    def test_basic_run_agrees(self, capsys):
        code = main(
            ["run", "--protocol", "one_third", "--kappa", "4",
             "--inputs", "1,0,1,0", "--t", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement  : True" in out
        assert "rounds     : 5" in out

    def test_run_with_straddle_alias(self, capsys):
        code = main(
            ["run", "--protocol", "one_half", "--kappa", "4",
             "--inputs", "1,0,1,0,1", "--t", "2", "--adversary", "straddle"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # worst-case attack may win at kappa=4 rarely
        assert "corrupted  : [3, 4]" in out

    def test_run_with_trace(self, capsys):
        main(
            ["run", "--protocol", "one_third", "--kappa", "2",
             "--inputs", "1,1,1,1", "--t", "1", "--trace"]
        )
        out = capsys.readouterr().out
        assert "transcript:" in out and "── round 1" in out

    def test_dolev_strong(self, capsys):
        code = main(
            ["run", "--protocol", "dolev_strong",
             "--inputs", "1,1,1,0", "--t", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rounds     : 2" in out

    def test_crash_and_malformed_adversaries(self, capsys):
        for adversary in ("crash", "malformed", "two_face"):
            code = main(
                ["run", "--protocol", "one_third", "--kappa", "4",
                 "--inputs", "1,1,1,1", "--t", "1", "--adversary", adversary]
            )
            assert code == 0, capsys.readouterr().out


class TestTrace:
    """`repro run --trace-jsonl` streams a file `repro trace` replays."""

    def _stream(self, tmp_path, capsys, extra=()):
        path = str(tmp_path / "run.trace.jsonl")
        code = main(
            ["run", "--protocol", "one_third", "--kappa", "4",
             "--inputs", "1,0,1,0", "--t", "1", "--adversary", "crash",
             "--trace-jsonl", path, *extra]
        )
        assert code == 0
        return path, capsys.readouterr().out

    def test_replay_matches_live_transcript_byte_for_byte(
        self, tmp_path, capsys
    ):
        path, live_out = self._stream(tmp_path, capsys, extra=["--trace"])
        live = live_out.split("transcript:\n", 1)[1]
        live = live.split("\nwrote trace:", 1)[0]
        assert main(["trace", path]) == 0
        replayed = capsys.readouterr().out
        # Skip the meta line + blank separator; the timeline must match
        # the live `--trace` rendering exactly.
        body = replayed.split("\n\n", 1)[1]
        assert body.strip("\n") == live.strip("\n")

    def test_stats_cross_check(self, tmp_path, capsys):
        path, out = self._stream(tmp_path, capsys)
        assert "wrote trace:" in out
        assert main(["trace", path, "--stats"]) == 0
        replayed = capsys.readouterr().out
        assert "per-round tallies" in replayed
        # Headers and counters use the pinned repro-metrics/1 vocabulary.
        assert "messages_honest" in replayed
        assert "signatures_corrupt" in replayed
        assert "sig_verify_ops" in replayed

    def test_filters(self, tmp_path, capsys):
        path, _ = self._stream(tmp_path, capsys)
        assert main(["trace", path, "--round", "1", "--corrupt-only"]) == 0
        out = capsys.readouterr().out
        assert "── round 1" in out and "── round 2" not in out
        assert main(["trace", path, "--party", "3"]) == 0
        out = capsys.readouterr().out
        assert "P3" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro trace:" in capsys.readouterr().err

    def test_schema_mismatch_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "wrong.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"t": "trace", "schema": "repro-trace/99"}\n')
            handle.write('{"t": "end", "events": 0, "corruptions": 0}\n')
        assert main(["trace", path, "--stats"]) == 2
        assert "schema" in capsys.readouterr().err

    def test_truncated_file_exits_2(self, tmp_path, capsys):
        full, _ = self._stream(tmp_path, capsys)
        clipped = str(tmp_path / "clipped.jsonl")
        with open(full, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        with open(clipped, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        assert main(["trace", clipped]) == 2
        assert "truncated" in capsys.readouterr().err

    def test_diff_identical_traces_exits_0(self, tmp_path, capsys):
        path, _ = self._stream(tmp_path, capsys)
        twin = str(tmp_path / "twin.trace.jsonl")
        with open(path, encoding="utf-8") as handle:
            contents = handle.read()
        with open(twin, "w", encoding="utf-8") as handle:
            handle.write(contents)
        assert main(["trace", path, "--diff", twin]) == 0
        assert "traces identical" in capsys.readouterr().out

    def test_diff_perturbed_trace_exits_1_with_divergence(
        self, tmp_path, capsys
    ):
        """The regression pin: a single flipped payload is caught and
        located at its round, with both conflicting lines rendered."""
        import json

        path, _ = self._stream(tmp_path, capsys)
        perturbed = str(tmp_path / "perturbed.trace.jsonl")
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        flipped = None
        with open(perturbed, "w", encoding="utf-8") as handle:
            for line in lines:
                record = json.loads(line)
                if flipped is None and record.get("t") == "msg":
                    record["p"] = record["p"] + "-tampered"
                    flipped = record["r"]
                    line = json.dumps(record)
                handle.write(line + "\n")
        assert flipped is not None
        assert main(["trace", path, "--diff", perturbed]) == 1
        out = capsys.readouterr().out
        assert f"diverge at round {flipped}" in out
        assert "-tampered" in out

    def test_diff_against_different_run_reports_meta(self, tmp_path, capsys):
        path, _ = self._stream(tmp_path, capsys)
        other = str(tmp_path / "other.trace.jsonl")
        assert main(
            ["run", "--protocol", "one_third", "--kappa", "4",
             "--inputs", "1,0,1,0", "--t", "1", "--adversary", "two_face",
             "--trace-jsonl", other]
        ) == 0
        capsys.readouterr()
        assert main(["trace", path, "--diff", other]) == 1
        out = capsys.readouterr().out
        assert "diverge at header" in out

    def test_diff_unreadable_other_exits_2(self, tmp_path, capsys):
        path, _ = self._stream(tmp_path, capsys)
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", path, "--diff", missing]) == 2
        assert "repro trace:" in capsys.readouterr().err

    def test_round_out_of_range_exits_2(self, tmp_path, capsys):
        path, _ = self._stream(tmp_path, capsys)
        for bad in ("0", "99"):
            assert main(["trace", path, "--round", bad]) == 2
            err = capsys.readouterr().err
            assert "out of range" in err and "usage:" in err

    def test_party_out_of_range_exits_2(self, tmp_path, capsys):
        path, _ = self._stream(tmp_path, capsys)
        for bad in ("-1", "17"):
            assert main(["trace", path, "--party", bad]) == 2
            err = capsys.readouterr().err
            assert "out of range" in err and "usage:" in err
        # In-range values still work after the validation pass.
        assert main(["trace", path, "--party", "0"]) == 0


class TestRunFaults:
    """`repro run --faults` injects a registered scenario and reports it."""

    BASE = ["run", "--protocol", "one_third", "--kappa", "4",
            "--inputs", "1,1,1,1", "--t", "1"]

    def test_lossy_scenario_reports_counts(self, capsys):
        code = main(
            self.BASE + ["--faults", "lossy",
                         "--fault-params", '{"rate": 0.3}', "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # heavy loss may break agreement; both report
        assert "faults     : lossy (lost=" in out

    def test_unknown_scenario_exits_2_and_lists_registered(self, capsys):
        assert main(self.BASE + ["--faults", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bad fault scenario" in err
        assert "lossy" in err and "crash_recover" in err

    def test_bad_fault_params_json_exits_2(self, capsys):
        assert main(
            self.BASE + ["--faults", "lossy", "--fault-params", "{rate:"]
        ) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_fault_params_value_exits_2(self, capsys):
        assert main(
            self.BASE + ["--faults", "lossy", "--fault-params", '{"rate": 2}']
        ) == 2
        assert "bad fault scenario" in capsys.readouterr().err

    def test_faulted_trace_jsonl_stats_report_faults(self, tmp_path, capsys):
        path = str(tmp_path / "faulty.trace.jsonl")
        code = main(
            self.BASE + ["--faults", "lossy",
                         "--fault-params", '{"rate": 0.4}',
                         "--seed", "3", "--trace-jsonl", path]
        )
        assert code in (0, 1)
        capsys.readouterr()
        assert main(["trace", path, "--stats"]) == 0
        assert "fault_hits" in capsys.readouterr().out


class TestCompare:
    def test_table_printed(self, capsys):
        assert main(["compare", "--kappas", "4,8"]) == 0
        out = capsys.readouterr().out
        assert "ours t<n/3" in out
        assert " 5" in out and " 9" in out  # kappa+1 column


class TestTables:
    @pytest.mark.parametrize("which,needle", [
        ("table1", "Σ0"),
        ("table2", "Ω6"),
        ("fig3", "c=9"),
    ])
    def test_each_table(self, which, needle, capsys):
        assert main(["tables", "--which", which]) == 0
        assert needle in capsys.readouterr().out

    def test_all(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "table2" in out and "fig3" in out


class TestErrorSweep:
    def test_sweep_prints_rates(self, capsys):
        assert main(
            ["error-sweep", "--protocol", "one_third",
             "--kappas", "1", "--trials", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "bound 2^-k" in out


class TestBench:
    def test_serial_matches_parallel_and_reports(self, capsys):
        code = main(
            ["bench", "--protocol", "one_third", "--kappas", "1",
             "--trials", "8", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine serial" in out
        if (os.cpu_count() or 1) >= 2:
            assert "serial == parallel" in out and "OK" in out
        else:
            # Worker counts are clamped to the CPUs present; on a
            # single-CPU box the parallel leg is skipped, and the CLI
            # must say so rather than report a fake speedup.
            assert "clamped to 1" in out
            assert "serial path only" in out

    def test_json_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        code = main(
            ["bench", "--protocol", "one_half", "--kappas", "1",
             "--trials", "6", "--workers", "2", "--json", str(path)]
        )
        assert code == 0
        import json

        payload = json.loads(path.read_text())
        effective = min(2, os.cpu_count() or 1)
        assert payload["workers"] == effective
        assert payload["workers_requested"] == 2
        assert payload["workers_clamped"] == (effective != 2)
        assert payload["trials_per_config"] == 6
        if effective > 1:
            assert payload["identical_serial_parallel"] is True
        else:
            assert payload["identical_serial_parallel"] is None
            assert payload["parallel_seconds"] is None
        assert payload["transport"] == "compact"
        assert payload["payload_bytes_full"] > payload["payload_bytes_compact"] > 0
        assert payload["rates"][0]["protocol"] == "ba_one_half"

    def test_telemetry_artifact_written_and_consistent(
        self, tmp_path, capsys
    ):
        tele_dir = str(tmp_path / "tele")
        json_path = tmp_path / "bench.json"
        code = main(
            ["bench", "--protocol", "one_third", "--kappas", "1",
             "--trials", "8", "--workers", "2",
             "--telemetry", tele_dir, "--json", str(json_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry" in out
        assert "telemetry spans consistent" in out and "OK" in out
        tele_path = os.path.join(tele_dir, "telemetry.jsonl")
        assert os.path.exists(tele_path)

        from repro.obs import summarize_telemetry

        summary = summarize_telemetry(tele_path)
        assert summary["consistent"] is True
        assert summary["records"] > 0

        import json

        payload = json.loads(json_path.read_text())
        assert payload["telemetry"]["path"] == tele_path
        assert payload["telemetry"]["consistent"] is True

    def test_adaptive_telemetry_records_allocations(self, tmp_path, capsys):
        tele_dir = str(tmp_path / "tele")
        code = main(
            ["bench", "--protocol", "one_third", "--kappas", "1,2",
             "--trials", "8", "--workers", "1", "--adaptive",
             "--batch", "4", "--telemetry", tele_dir]
        )
        assert code == 0, capsys.readouterr().out

        from repro.obs import summarize_telemetry

        summary = summarize_telemetry(
            os.path.join(tele_dir, "telemetry.jsonl")
        )
        assert summary["consistent"] is True
        assert summary["adaptive_rounds"] >= 1

    def test_compare_baseline_reports_speedup(self, capsys):
        code = main(
            ["bench", "--protocol", "one_third", "--kappas", "1",
             "--trials", "6", "--workers", "1", "--compare-baseline"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pre-engine baseline" in out
        assert "best vs baseline" in out

    def test_metrics_and_profile_artifacts_written(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        profile_dir = tmp_path / "prof"
        code = main(
            ["bench", "--protocol", "one_third", "--kappas", "1",
             "--trials", "6", "--workers", "1",
             "--metrics", str(metrics_path), "--profile", str(profile_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics artifact" in out and "profiled leg" in out

        import json

        from repro.obs import validate_metrics_payload

        payload = json.loads(metrics_path.read_text())
        assert validate_metrics_payload(payload) == []
        dumps = [
            name for name in os.listdir(profile_dir)
            if name.endswith(".pstats")
        ]
        assert dumps


class TestReport:
    FIXTURES = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "obs", "fixtures"
    )

    def test_no_inputs_is_a_usage_error(self, capsys):
        assert main(["report"]) == 2
        err = capsys.readouterr().err
        assert "nothing to report" in err
        assert "--metrics" in err

    def test_renders_fixture_inputs_and_checks_clean(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        html_path = tmp_path / "report.html"
        code = main(
            ["report",
             "--metrics", os.path.join(self.FIXTURES, "metrics.json"),
             "--telemetry", self.FIXTURES,
             "--bench", os.path.join(self.FIXTURES, "BENCH_sample.json"),
             "--check", "--out", str(out_path), "--html", str(html_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "report inputs: OK" in out
        golden = os.path.join(self.FIXTURES, "report.md")
        with open(golden, encoding="utf-8") as handle:
            assert out_path.read_text() == handle.read()
        assert html_path.read_text().startswith("<!doctype html>")

    def test_stdout_rendering_without_out(self, capsys):
        code = main(
            ["report",
             "--metrics", os.path.join(self.FIXTURES, "metrics.json")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# repro run report")
        assert "## Protocol metrics" in out

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        code = main(
            ["report", "--metrics", str(tmp_path / "missing.json")]
        )
        assert code == 2
        assert "repro report:" in capsys.readouterr().err

    def test_check_rejects_foreign_bench_schema(self, tmp_path, capsys):
        import json

        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": "repro-telemetry/1"}))
        code = main(["report", "--bench", str(bad), "--check"])
        assert code == 2
        assert "repro-bench" in capsys.readouterr().err


class TestLedger:
    def test_identical_logs_and_exit_zero(self, capsys):
        code = main(
            ["ledger", "--queues", "a+b;a;a+b;a", "--slots", "2",
             "--kappa", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "forked   : False" in out
        assert out.count("'a'") >= 4  # committed at every replica

    def test_local_proposer_policy(self, capsys):
        code = main(
            ["ledger", "--queues", "x;x;x;x", "--slots", "1",
             "--proposer", "local", "--kappa", "4"]
        )
        assert code == 0
        assert "'x'" in capsys.readouterr().out


class TestCheck:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_select_and_json(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        assert main(["check", "--select", "LAY", "--json", str(artifact)]) == 0
        import json

        payload = json.loads(artifact.read_text())
        assert payload["rules"] == ["LAY201", "LAY202"]
        assert payload["ok"] is True

    def test_unknown_selector_exits_2(self, capsys):
        assert main(["check", "--select", "NOPE"]) == 2
        assert "unknown rule selector" in capsys.readouterr().err

    def test_list_rules_catalogue(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET101", "LAY201", "SER301", "API401"):
            assert rule_id in out


class TestParser:
    def test_bad_int_list_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--inputs", "1,x,0"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestErgonomics:
    """The CLI ergonomics contract (see `main`'s docstring)."""

    SUBCOMMANDS = (
        "run", "trace", "compare", "tables", "error-sweep", "bench",
        "report", "check", "ledger",
    )

    def test_help_lists_every_subcommand_with_a_summary(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in self.SUBCOMMANDS:
            assert name in out, f"--help must list {name!r}"
        # One-line summaries ride along, not just the bare names.
        assert "execute one protocol" in out
        assert "static analysis" in out

    def test_bare_invocation_prints_overview_and_exits_2(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        for name in self.SUBCOMMANDS:
            assert name in err

    def test_unknown_subcommand_exits_2_and_names_the_available_set(
        self, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'frobnicate'" in err
        for name in ("run", "bench", "check"):
            assert name in err
