"""Tests for the replicated log (sequential BA composition)."""

import pytest

from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.applications.ledger import NO_OP, replicated_log_program, rounds_per_slot

from ..conftest import run

KAPPA = 6


def log_program(num_slots, regime="one_third", kappa=KAPPA):
    return lambda ctx, cmds: replicated_log_program(
        ctx, cmds, num_slots=num_slots, kappa=kappa, regime=regime
    )


class TestHonestRuns:
    def test_identical_logs_across_replicas(self):
        queues = [["a", "b"], ["a", "c"], ["a", "b"], ["a", "c"]]
        res = run(log_program(3), queues, 1, session="lg1")
        logs = list(res.outputs.values())
        assert all(log == logs[0] for log in logs)
        assert len(logs[0]) == 3

    def test_unanimous_proposals_commit_in_order(self):
        queues = [["tx1", "tx2", "tx3"]] * 4
        res = run(log_program(3), queues, 1, session="lg2")
        assert res.outputs[0] == ["tx1", "tx2", "tx3"]

    def test_committed_command_is_not_ordered_twice(self):
        queues = [["a", "a", "b"]] * 4  # duplicate client submission
        res = run(log_program(3), queues, 1, session="lg3")
        log = res.outputs[0]
        assert log[0] == "a"
        assert log.count("a") <= 2  # the duplicate may commit once more
        # identical everywhere regardless
        assert all(res.outputs[i] == log for i in range(4))

    def test_round_cost_is_slots_times_per_slot(self):
        res = run(log_program(2), [["x"]] * 4, 1, session="lg4")
        assert res.metrics.rounds == 2 * rounds_per_slot(KAPPA, "one_third")

    def test_slots_finish_in_lockstep(self):
        """The composability property: all replicas finish the whole log in
        the same round — no re-synchronization gadget needed between
        slots (the paper's §1 argument for fixed-round building blocks)."""
        res = run(log_program(3), [["x"], ["y"], ["x"], ["y"]], 1, session="lg5")
        assert len(set(res.finish_rounds.values())) == 1

    def test_one_half_regime(self):
        queues = [["m"]] * 5
        res = run(log_program(2, regime="one_half"), queues, 2, session="lg6")
        assert res.outputs[0][0] == "m"
        assert res.metrics.rounds == 2 * rounds_per_slot(KAPPA, "one_half")


class TestRotatingProposer:
    def test_distinct_commands_all_commit(self):
        """With honest rotating leaders, every replica's command lands."""
        queues = [["cmd_a"], ["cmd_b"], ["cmd_c"], ["cmd_d"]]
        res = run(
            log_program := (lambda ctx, cmds: replicated_log_program(
                ctx, cmds, num_slots=4, kappa=KAPPA,
                regime="one_third", proposer="rotating",
            )),
            queues, 1, session="lr1",
        )
        log = res.outputs[0]
        assert log == ["cmd_a", "cmd_b", "cmd_c", "cmd_d"]
        assert all(res.outputs[i] == log for i in range(4))

    def test_round_cost_includes_proxcast(self):
        res = run(
            lambda ctx, cmds: replicated_log_program(
                ctx, cmds, num_slots=2, kappa=KAPPA,
                regime="one_third", proposer="rotating",
            ),
            [["x"]] * 4, 1, session="lr2",
        )
        assert res.metrics.rounds == 2 * rounds_per_slot(
            KAPPA, "one_third", "rotating"
        )

    def test_crashed_leader_costs_a_noop_not_a_fork(self):
        queues = [["a"], ["b"], ["c"], ["d"]]
        res = run(
            lambda ctx, cmds: replicated_log_program(
                ctx, cmds, num_slots=2, kappa=KAPPA,
                regime="one_third", proposer="rotating",
            ),
            queues, 1,
            adversary=CrashAdversary(victims=[0], crash_round=1),
            session="lr3",
        )
        honest_logs = list(res.honest_outputs.values())
        assert all(log == honest_logs[0] for log in honest_logs)
        assert honest_logs[0][0] == NO_OP     # slot 0's leader was dead
        assert honest_logs[0][1] == "b"       # slot 1's leader delivered

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run(
                lambda ctx, cmds: replicated_log_program(
                    ctx, cmds, num_slots=1, proposer="anarchic"
                ),
                [["x"]] * 4, 1, session="lr4",
            )


class TestAdversarialRuns:
    def test_crash_replicas_do_not_fork_the_log(self):
        queues = [["a"], ["a"], ["a"], ["b"], ["b"]]
        res = run(
            log_program(2), queues, 1,
            adversary=CrashAdversary(victims=[4], crash_round=3), session="lg7",
        )
        honest_logs = list(res.honest_outputs.values())
        assert all(log == honest_logs[0] for log in honest_logs)

    @pytest.mark.parametrize("seed", range(3))
    def test_equivocating_replica_cannot_fork(self, seed):
        factory = log_program(2)
        queues = [["a"], ["a"], ["b"], ["b"]]
        res = run(
            factory, queues, 1,
            adversary=TwoFaceAdversary(
                victims=[3], factory=factory,
                low_input=["a"], high_input=["b"],
            ),
            seed=seed, session=f"lg8-{seed}",
        )
        honest_logs = list(res.honest_outputs.values())
        assert all(log == honest_logs[0] for log in honest_logs)

    def test_no_proposals_commit_no_ops(self):
        res = run(log_program(2), [[]] * 4, 1, session="lg9")
        assert res.outputs[0] == [NO_OP, NO_OP]


class TestValidation:
    def test_regime_resilience_enforced(self):
        with pytest.raises(ValueError):
            run(log_program(1), [["x"]] * 4, 2, session="lgx")  # t !< n/3
        with pytest.raises(ValueError):
            run(log_program(1, regime="one_half"), [["x"]] * 4, 2, session="lgy")

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            run(log_program(0), [["x"]] * 4, 1, session="lgz")

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            run(log_program(1, regime="bogus"), [["x"]] * 4, 1, session="lgw")
