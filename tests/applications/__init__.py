"""Test package."""
