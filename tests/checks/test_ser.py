"""SER rules: pickle/deep-freeze safety at the process boundary."""

from .conftest import check, rule_ids


class TestSER301ParamPicklability:
    def test_hit_lambda_in_trialspec_params(self, tree):
        root = tree({"engine/bad.py": """
            def build(TrialSpec):
                return TrialSpec(
                    protocol="x",
                    inputs=(0, 1),
                    max_faulty=0,
                    params={"coin": lambda: 1},
                )
        """})
        report = check(root)
        assert rule_ids(report) == ["SER301"]
        assert "lambda" in report.findings[0].message

    def test_hit_generator_in_monte_carlo_adversary_params(self, tree):
        root = tree({"benchjobs.py": """
            def build(TrialPlan, pids):
                return TrialPlan.monte_carlo(
                    name="s",
                    protocol="x",
                    inputs=(0,),
                    max_faulty=0,
                    trials=10,
                    adversary_params={"victims": (p for p in pids)},
                )
        """})
        assert rule_ids(check(root)) == ["SER301"]

    def test_pass_plain_data_params(self, tree):
        root = tree({"engine/ok.py": """
            def build(TrialSpec, kappa):
                return TrialSpec(
                    protocol="x",
                    inputs=(0, 1),
                    max_faulty=0,
                    params={"kappa": kappa, "victims": (3, 4)},
                )
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"engine/waived.py": """
            def build(spec_cls):
                return spec_cls(
                    params={"f": lambda: 1},  # repro: noqa[SER301] fixture
                )
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestSER302PoolBoundary:
    def test_hit_lambda_submitted_to_pool(self, tree):
        root = tree({"engine/bad.py": """
            def fan_out(pool, items):
                return [pool.submit(lambda: item) for item in items]
        """})
        report = check(root)
        assert rule_ids(report) == ["SER302"]

    def test_hit_lambda_in_executor_map(self, tree):
        root = tree({"engine/bad2.py": """
            def fan_out(executor, items):
                return executor.map(lambda x: x + 1, items)
        """})
        assert rule_ids(check(root)) == ["SER302"]

    def test_pass_module_level_function(self, tree):
        root = tree({"engine/ok.py": """
            def _run(chunk):
                return chunk

            def fan_out(pool, chunks):
                return [pool.submit(_run, chunk) for chunk in chunks]
        """})
        assert check(root).ok

    def test_pass_non_pool_receiver(self, tree):
        # `.submit` on something that is not a pool/executor is not ours.
        root = tree({"webform.py": """
            def push(form):
                return form.submit(lambda: 1)
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"engine/waived.py": """
            def fan_out(pool):
                return pool.submit(lambda: 1)  # repro: noqa[SER302] fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1
