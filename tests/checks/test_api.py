"""API rules: registry and adversary-hook contract coherence."""

from .conftest import check, rule_ids


class TestAPI401HookSignatures:
    def test_hit_decide_with_extra_required_arg(self, tree):
        root = tree({"adversary/bad.py": """
            class EagerAdversary(Adversary):
                def decide(self, view, hint):
                    return None
        """})
        report = check(root)
        assert rule_ids(report) == ["API401"]
        assert "EagerAdversary.decide" in report.findings[0].message

    def test_hit_observe_missing_arg(self, tree):
        root = tree({"adversary/bad2.py": """
            class DeafAdversary(Adversary):
                def observe(self, round_index):
                    return None
        """})
        assert rule_ids(check(root)) == ["API401"]

    def test_pass_compatible_overrides_and_helpers(self, tree):
        root = tree({"adversary/ok.py": """
            class FineAdversary(Adversary):
                def decide(self, view, fuzz=0):
                    return self._helper(view, fuzz)

                def initial_corruptions(self):
                    return set()

                def _helper(self, view, fuzz):
                    return None
        """})
        assert check(root).ok

    def test_pass_non_adversary_class(self, tree):
        root = tree({"core/ok.py": """
            class Decider:
                def decide(self, a, b, c):
                    return a
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"adversary/waived.py": """
            class OddAdversary(Adversary):
                def decide(self, view, hint):  # repro: noqa[API401] fixture
                    return None
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestAPI402Registrations:
    def test_hit_non_literal_name(self, tree):
        root = tree({"engine/bad.py": """
            NAME = "mystery"
            register_protocol(NAME, lambda: None)
        """})
        report = check(root)
        assert rule_ids(report) == ["API402"]
        assert "string literal" in report.findings[0].message

    def test_hit_duplicate_across_files(self, tree):
        root = tree({
            "engine/a.py": 'register_protocol("ba", lambda: None)\n',
            "engine/b.py": 'register_protocol("ba", lambda: None)\n',
        })
        report = check(root)
        assert rule_ids(report) == ["API402"]
        finding = report.findings[0]
        assert finding.path == "engine/b.py"
        assert "engine/a.py:1" in finding.message

    def test_pass_distinct_literals(self, tree):
        root = tree({"engine/ok.py": """
            register_protocol("ba_one_third", lambda kappa: None)
            register_protocol("ba_one_half", lambda kappa: None)
            register_adversary("crash", lambda factory, victims: None)
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({
            "engine/a.py": 'register_protocol("ba", lambda: None)\n',
            "engine/b.py":
                'register_protocol("ba", lambda: None)  # repro: noqa[API402] fixture\n',
        })
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestAPI403BuilderFactoryParam:
    def test_hit_builder_without_factory(self, tree):
        root = tree({"engine/bad.py": """
            register_adversary("crash", lambda victims: Crash(victims))
        """})
        report = check(root)
        assert rule_ids(report) == ["API403"]

    def test_pass_factory_first(self, tree):
        root = tree({"engine/ok.py": """
            register_adversary("crash", lambda factory, victims: Crash(victims))
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"engine/waived.py": """
            register_adversary("crash", lambda victims: Crash(victims))  # repro: noqa[API403] fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestAPI404FamilyKeys:
    def test_hit_key_name_mismatch(self, tree):
        root = tree({"proxcensus/bad.py": """
            FAMILIES = {
                "one_third": ProxFamily(name="one_half", resilience="n/3"),
            }
        """})
        report = check(root)
        assert rule_ids(report) == ["API404"]
        assert "'one_third'" in report.findings[0].message

    def test_pass_coherent_keys(self, tree):
        root = tree({"proxcensus/ok.py": """
            FAMILIES = {
                "one_third": ProxFamily(name="one_third", resilience="n/3"),
                "proxcast": ProxFamily(name="proxcast", resilience="n"),
            }
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"proxcensus/waived.py": """
            FAMILIES = {
                "one_third": ProxFamily(name="legacy"),  # repro: noqa[API404] fixture
            }
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1
